//! `csl-synth` — CEGIS contract synthesis: infer the strongest sound
//! leakage contract per design.
//!
//! The paper verifies a design against a *given* contract; this crate
//! inverts the question. The space of contracts is the lattice of
//! [`ObsSet`]s — subsets of the observation-atom grammar
//! ([`csl_contracts::ObsAtom`]), ordered by inclusion. Fewer atoms =
//! stronger contract (less the software must promise, more programs the
//! guarantee covers), and soundness is monotone upward: if a design is
//! sound under `A ⊆ B` it is sound under `B`, because equality of the
//! `B`-records implies equality of the `A`-records. The *strongest sound*
//! contract is therefore a well-defined minimal point, and the
//! [`Synthesizer`] finds it by counterexample-guided inductive synthesis:
//!
//! 1. **Grow.** Start from the most precise candidate — observe nothing
//!    (`ObsSet::EMPTY`). Verify the design against the candidate with the
//!    full engine stack. An attack verdict means the candidate is
//!    refuted: replay the counterexample (see [`cex`]), diff the two
//!    retirement streams atom by atom, and add the cheapest separating
//!    atom. The candidate grows strictly, so no refuted candidate is
//!    ever re-proposed. No separating atom means the leak is invisible
//!    to every contract in the grammar — a transient leak — and the
//!    design has **no sound contract** on this lattice.
//! 2. **Descend.** A certified proof means the candidate is sound; now
//!    confirm it is *minimal*: try dropping each atom in turn, and
//!    require every drop to re-attack. A drop that proves instead
//!    becomes the new (smaller) candidate and the descent restarts; a
//!    drop already refuted during the grow phase is reused without
//!    solving.
//!
//! Every query goes through [`csl_core::api::Query::run_cached`] when a
//! cache directory is configured, so repeated lattice walks (CI gates,
//! re-runs, neighbouring designs sharing sub-queries) are served from
//! disk — with verify-on-load auditing each served verdict. The descent
//! can also fan its independent drop-queries out over the
//! [`csl_core::api::Matrix`] worker pool (and from there over a
//! `csl-serve` shard fleet, whose cells accept any `obs:`-named
//! contract).

pub mod cex;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use csl_contracts::{Contract, ObsAtom, ObsSet};
use csl_core::api::{Query, Report, ReportCache, Verifier};
use csl_core::{DesignKind, Scheme};
use csl_mc::Verdict;

pub use cex::{cheapest_new_atom, commit_streams, separating_atoms, CommitEvent};

/// Which half of the CEGIS loop a step belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthPhase {
    /// Weakening walk upward from the empty observation set.
    Grow,
    /// Minimality confirmation: single-atom drops from a sound candidate.
    Descent,
}

/// One verification query the synthesizer issued, with everything needed
/// to audit it after the fact: the candidate, the full [`Report`]
/// (verdict, certificate, witness), and what the driver concluded.
#[derive(Clone, Debug)]
pub struct SynthStep {
    pub phase: SynthPhase,
    /// The observation set this step verified the design against.
    pub candidate: ObsSet,
    /// The full verification report (evidence included).
    pub report: Report,
    /// The atom the counterexample analysis added (grow-phase attacks
    /// only).
    pub separating: Option<ObsAtom>,
    /// The report was served from the result cache (verify-on-load
    /// audited) rather than solved.
    pub from_cache: bool,
}

impl SynthStep {
    /// Short verdict text ("CEX", "PROOF", ...).
    pub fn cell(&self) -> &'static str {
        self.report.verdict.cell()
    }
}

/// How the synthesis ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthOutcome {
    /// The final candidate carries a certified proof.
    Sound,
    /// A counterexample had no separating atom: the leak is transient
    /// (invisible to every retirement-stream contract) and no contract
    /// on this lattice makes the design sound.
    NoSoundContract,
    /// A grow-phase query timed out or returned unknown; the final
    /// candidate is the last one proposed, with no soundness claim.
    Inconclusive,
}

/// The synthesis verdict for one design: the contract, the evidence
/// trail, and the reuse accounting.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    pub design: DesignKind,
    pub outcome: SynthOutcome,
    /// The final observation set (the strongest sound contract when
    /// `outcome` is [`SynthOutcome::Sound`]).
    pub contract: ObsSet,
    /// Every query issued, in order: the refutation path followed by the
    /// descent checks.
    pub steps: Vec<SynthStep>,
    /// Atoms whose single-atom drop is refuted — provably necessary
    /// members of the contract.
    pub necessary: Vec<ObsAtom>,
    /// Every single-atom drop re-attacked (the sound candidate is a
    /// confirmed local minimum of the lattice).
    pub minimal_confirmed: bool,
    /// Queries answered by solving.
    pub solved: usize,
    /// Queries served from the result cache.
    pub cache_hits: usize,
    /// Descent drops answered from the grow phase's refutation set
    /// without issuing a query at all.
    pub reused: usize,
    pub elapsed: Duration,
}

impl SynthesisResult {
    /// The synthesized contract as a [`Contract`] (canonicalized to a
    /// named variant when it coincides with one).
    pub fn synthesized(&self) -> Contract {
        Contract::from_obs(self.contract)
    }

    /// The grow-phase trail: each refuted candidate with the atom its
    /// counterexample forced in.
    pub fn refutation_path(&self) -> Vec<(ObsSet, ObsAtom)> {
        self.steps
            .iter()
            .filter(|s| s.phase == SynthPhase::Grow)
            .filter_map(|s| Some((s.candidate, s.separating?)))
            .collect()
    }

    /// One-paragraph human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {:?} -> {} ({} solved, {} cached, {} reused, {:.1}s)",
            self.design.name(),
            self.outcome,
            self.synthesized().name(),
            self.solved,
            self.cache_hits,
            self.reused,
            self.elapsed.as_secs_f64()
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "  [{}] obs:{:<40} {:6}{}{}",
                match s.phase {
                    SynthPhase::Grow => "grow",
                    SynthPhase::Descent => "drop",
                },
                s.candidate.encode(),
                s.cell(),
                match s.separating {
                    Some(a) => format!("  +{}", a.name()),
                    None => String::new(),
                },
                if s.from_cache { "  (cache)" } else { "" }
            );
        }
        out
    }
}

/// The CEGIS driver. Configure the underlying verification session (the
/// budget, engine mode, and scheme every lattice query runs under), then
/// [`Synthesizer::synthesize`] per design.
#[derive(Clone, Debug)]
pub struct Synthesizer {
    base: Verifier,
    scheme: Scheme,
    cache_dir: Option<PathBuf>,
    parallel_descent: bool,
}

impl Default for Synthesizer {
    fn default() -> Synthesizer {
        Synthesizer {
            base: Verifier::new(),
            scheme: Scheme::Shadow,
            cache_dir: None,
            parallel_descent: false,
        }
    }
}

impl Synthesizer {
    /// A fresh driver: Contract Shadow Logic scheme, default budget, no
    /// cache, sequential descent.
    pub fn new() -> Synthesizer {
        Synthesizer::default()
    }

    /// Replaces the base verification session (budget, mode, depth,
    /// certification, ... — design/contract/scheme are overridden per
    /// query).
    pub fn verifier(mut self, base: Verifier) -> Synthesizer {
        self.base = base;
        self
    }

    /// The verification scheme every lattice query runs (default:
    /// Contract Shadow Logic — the only scheme of the four that is both
    /// sound and complete-enough on the OoO designs).
    pub fn scheme(mut self, scheme: Scheme) -> Synthesizer {
        self.scheme = scheme;
        self
    }

    /// Routes every query through a persistent [`ReportCache`] rooted at
    /// `dir` (verify-on-load audited; see `Query::run_cached`).
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Synthesizer {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Drops a previously configured cache.
    pub fn no_cache(mut self) -> Synthesizer {
        self.cache_dir = None;
        self
    }

    /// Fans each descent round's independent drop-queries out over the
    /// [`csl_core::api::Matrix`] worker pool instead of solving them one
    /// by one (default off: sequential is deterministic in its step
    /// order and cheaper for the common 2–3-atom contracts).
    pub fn parallel_descent(mut self, on: bool) -> Synthesizer {
        self.parallel_descent = on;
        self
    }

    /// The fully-resolved query one lattice point runs.
    pub fn query_for(&self, design: DesignKind, set: ObsSet) -> Query {
        self.base
            .clone()
            .design(design)
            .contract(Contract::from_obs(set))
            .scheme(self.scheme)
            .query()
            .expect("design and contract are always set")
    }

    fn run_one(&self, cache: Option<&ReportCache>, design: DesignKind, set: ObsSet) -> Report {
        let query = self.query_for(design, set);
        match cache {
            Some(c) => query.run_cached(c),
            None => query.run(),
        }
    }

    /// Runs the CEGIS loop for one design to a [`SynthesisResult`].
    pub fn synthesize(&self, design: DesignKind) -> SynthesisResult {
        let start = Instant::now();
        let cache = self.cache_dir.as_ref().map(ReportCache::new);
        let isa = self
            .query_for(design, ObsSet::EMPTY)
            .config()
            .cpu_config()
            .isa;

        let mut candidate = ObsSet::EMPTY;
        let mut refuted: Vec<ObsSet> = Vec::new();
        let mut steps: Vec<SynthStep> = Vec::new();
        let mut reused = 0usize;

        // -- Grow: weaken until the design proves -------------------------
        let outcome = loop {
            let report = self.run_one(cache.as_ref(), design, candidate);
            let from_cache = served(&report);
            match &report.verdict {
                Verdict::Proof(_) => {
                    steps.push(SynthStep {
                        phase: SynthPhase::Grow,
                        candidate,
                        report,
                        separating: None,
                        from_cache,
                    });
                    break SynthOutcome::Sound;
                }
                Verdict::Attack(trace) => {
                    let aig = self.query_for(design, candidate).raw_instance().aig;
                    let [s1, s2] = commit_streams(&aig, trace);
                    let seps = separating_atoms(&isa, &s1, &s2);
                    let atom = cheapest_new_atom(&isa, &seps, candidate);
                    steps.push(SynthStep {
                        phase: SynthPhase::Grow,
                        candidate,
                        report,
                        separating: atom,
                        from_cache,
                    });
                    match atom {
                        None => break SynthOutcome::NoSoundContract,
                        Some(a) => {
                            refuted.push(candidate);
                            candidate = candidate.with(a);
                            debug_assert!(
                                !refuted.contains(&candidate),
                                "strict growth can never revisit a refuted candidate"
                            );
                        }
                    }
                }
                _ => {
                    steps.push(SynthStep {
                        phase: SynthPhase::Grow,
                        candidate,
                        report,
                        separating: None,
                        from_cache,
                    });
                    break SynthOutcome::Inconclusive;
                }
            }
        };

        // -- Descend: confirm minimality of a sound candidate -------------
        let mut minimal_confirmed = outcome == SynthOutcome::Sound;
        if outcome == SynthOutcome::Sound {
            'descent: loop {
                let drops: Vec<ObsAtom> = candidate.atoms().collect();
                let mut pending: Vec<(ObsAtom, ObsSet)> = Vec::new();
                for atom in drops {
                    let dropped = candidate.without(atom);
                    if refuted.contains(&dropped) {
                        // The grow phase already attacked this exact set;
                        // the drop is refuted without a query.
                        reused += 1;
                    } else {
                        pending.push((atom, dropped));
                    }
                }
                let reports: Vec<Report> = if self.parallel_descent && pending.len() > 1 {
                    self.descent_round_parallel(design, &pending)
                } else {
                    pending
                        .iter()
                        .map(|&(_, set)| self.run_one(cache.as_ref(), design, set))
                        .collect()
                };
                for ((_, dropped), report) in pending.into_iter().zip(reports) {
                    let from_cache = served(&report);
                    let is_attack = report.verdict.is_attack();
                    let is_proof = report.verdict.is_proof();
                    steps.push(SynthStep {
                        phase: SynthPhase::Descent,
                        candidate: dropped,
                        report,
                        separating: None,
                        from_cache,
                    });
                    if is_attack {
                        refuted.push(dropped);
                    } else if is_proof {
                        // The candidate was not minimal after all: adopt
                        // the smaller sound set and restart the descent
                        // from it.
                        candidate = dropped;
                        continue 'descent;
                    } else {
                        minimal_confirmed = false;
                    }
                }
                break;
            }
        }

        let necessary: Vec<ObsAtom> = candidate
            .atoms()
            .filter(|&a| refuted.contains(&candidate.without(a)))
            .collect();
        let cache_hits = steps.iter().filter(|s| s.from_cache).count();
        SynthesisResult {
            design,
            outcome,
            contract: candidate,
            solved: steps.len() - cache_hits,
            cache_hits,
            reused,
            steps,
            necessary,
            minimal_confirmed,
            elapsed: start.elapsed(),
        }
    }

    /// One descent round on the matrix worker pool: the drop-queries are
    /// independent cells of a `scheme × design × contracts` campaign (the
    /// same shape a `csl-serve` fleet consumes, with each cell named
    /// `obs:<atoms>`). Reports come back in `pending` order.
    fn descent_round_parallel(
        &self,
        design: DesignKind,
        pending: &[(ObsAtom, ObsSet)],
    ) -> Vec<Report> {
        let contracts: Vec<Contract> = pending
            .iter()
            .map(|&(_, set)| Contract::from_obs(set))
            .collect();
        let mut m = self
            .base
            .clone()
            .into_matrix(&[self.scheme], &[design], &contracts);
        if let Some(dir) = &self.cache_dir {
            m = m.cache(dir);
        }
        m.run_all().reports
    }
}

fn served(report: &Report) -> bool {
    report
        .notes
        .iter()
        .any(|n| n.starts_with("served from cache"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let s = Synthesizer::new();
        assert_eq!(s.scheme, Scheme::Shadow);
        assert!(s.cache_dir.is_none());
        let q = s.query_for(DesignKind::SingleCycle, ObsSet::EMPTY);
        assert_eq!(q.contract(), Contract::Custom(ObsSet::EMPTY));
        assert_eq!(q.scheme(), Scheme::Shadow);
    }

    #[test]
    fn result_accessors() {
        let r = SynthesisResult {
            design: DesignKind::SingleCycle,
            outcome: SynthOutcome::Sound,
            contract: Contract::sandboxing_set(),
            steps: Vec::new(),
            necessary: vec![ObsAtom::LoadData],
            minimal_confirmed: true,
            solved: 3,
            cache_hits: 1,
            reused: 1,
            elapsed: Duration::from_secs(1),
        };
        assert_eq!(r.synthesized(), Contract::Sandboxing);
        assert!(r.refutation_path().is_empty());
        assert!(r.render().contains("sandboxing"));
    }
}

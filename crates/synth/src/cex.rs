//! Counterexample analysis: from a shadow-instance attack trace to the
//! observation atom that separates the two retirement streams.
//!
//! A shadow counterexample demonstrates *"the candidate contract's
//! observations agreed, yet the microarchitectural traces diverged"*. The
//! CEGIS driver needs to know **what** differed between the two
//! executions that the candidate failed to capture, so it replays the
//! trace on the concrete simulator (over the raw netlist, whose probes
//! survive preparation), collects each machine's retired-instruction
//! stream, projects both streams through every observation atom, and
//! reports the atoms whose projections disagree. By the shadow
//! construction the streams already agree on every atom *in* the
//! candidate (popped record pairs are assumed equal and the bad state
//! requires both FIFOs drained), so any separating atom is a genuine
//! refinement direction — and if none exists, the leak is invisible to
//! every contract in the grammar (a transient leak in the paper's sense)
//! and no sound contract exists on this lattice.

use csl_contracts::{ObsAtom, ObsSet};
use csl_hdl::Aig;
use csl_isa::IsaConfig;
use csl_mc::{Sim, SimState, Trace};

/// One retired instruction's observable facts, read back from the commit
/// probes of one machine copy during trace replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitEvent {
    /// Cycle the instruction retired in (diagnostic; not an observation).
    pub cycle: usize,
    /// Retiring PC (diagnostic; not an observation).
    pub pc: u64,
    /// Writeback value (the load data for loads).
    pub value: u64,
    /// Non-faulting load retired.
    pub is_load: bool,
    /// Memory word address touched (zero for non-loads).
    pub mem_word: u64,
    /// Branch retired.
    pub is_branch: bool,
    /// Branch outcome.
    pub taken: bool,
    /// Exception code (0 none, 1 misaligned, 2 illegal).
    pub exception: u64,
    /// Multiply retired.
    pub is_mul: bool,
    /// Multiplier operands.
    pub mul_a: u64,
    pub mul_b: u64,
}

/// Per-slot probe bit vectors for one machine copy, resolved once before
/// the replay loop.
struct SlotProbes {
    valid: Vec<csl_hdl::Bit>,
    pc: Vec<csl_hdl::Bit>,
    value: Vec<csl_hdl::Bit>,
    is_load: Vec<csl_hdl::Bit>,
    mem_word: Vec<csl_hdl::Bit>,
    is_branch: Vec<csl_hdl::Bit>,
    taken: Vec<csl_hdl::Bit>,
    exception: Vec<csl_hdl::Bit>,
    is_mul: Vec<csl_hdl::Bit>,
    mul_a: Vec<csl_hdl::Bit>,
    mul_b: Vec<csl_hdl::Bit>,
}

fn slot_probes(aig: &Aig, machine: &str) -> Vec<SlotProbes> {
    let find = |name: &str| -> Option<Vec<csl_hdl::Bit>> {
        aig.probes()
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.bits.clone())
    };
    let mut slots = Vec::new();
    for i in 0.. {
        let pre = format!("{machine}.c{i}.");
        let Some(valid) = find(&format!("{pre}valid")) else {
            break;
        };
        let get = |field: &str| {
            find(&format!("{pre}{field}"))
                .unwrap_or_else(|| panic!("commit probe `{pre}{field}` missing from the netlist"))
        };
        slots.push(SlotProbes {
            valid,
            pc: get("pc"),
            value: get("value"),
            is_load: get("is_load"),
            mem_word: get("mem_word"),
            is_branch: get("is_branch"),
            taken: get("taken"),
            exception: get("exception"),
            is_mul: get("is_mul"),
            mul_a: get("mul_a"),
            mul_b: get("mul_b"),
        });
    }
    slots
}

/// Replays an attack trace on the raw netlist and collects both machine
/// copies' retirement streams (`cpu1`, `cpu2`), oldest instruction first.
///
/// # Panics
/// Panics if the netlist carries no commit probes for the two machine
/// scopes — i.e. when handed an instance that is not a two-copy harness.
pub fn commit_streams(aig: &Aig, trace: &Trace) -> [Vec<CommitEvent>; 2] {
    let probes = [slot_probes(aig, "cpu1"), slot_probes(aig, "cpu2")];
    assert!(
        !probes[0].is_empty() && !probes[1].is_empty(),
        "no cpu1/cpu2 commit probes: not a two-copy verification instance"
    );
    let mut streams: [Vec<CommitEvent>; 2] = [Vec::new(), Vec::new()];
    let mut sim = Sim::new(aig);
    let mut state = SimState::reset(aig);
    for &(i, v) in &trace.initial_latches {
        state.set_latch(i as usize, v);
    }
    for cycle in 0..trace.depth() {
        let r = sim.step(&state, |i, _| trace.input(cycle, i as u32).unwrap_or(false));
        for (m, slots) in probes.iter().enumerate() {
            for s in slots {
                if r.values.word(&s.valid) != 0 {
                    streams[m].push(CommitEvent {
                        cycle,
                        pc: r.values.word(&s.pc),
                        value: r.values.word(&s.value),
                        is_load: r.values.word(&s.is_load) != 0,
                        mem_word: r.values.word(&s.mem_word),
                        is_branch: r.values.word(&s.is_branch) != 0,
                        taken: r.values.word(&s.taken) != 0,
                        exception: r.values.word(&s.exception),
                        is_mul: r.values.word(&s.is_mul) != 0,
                        mul_a: r.values.word(&s.mul_a),
                        mul_b: r.values.word(&s.mul_b),
                    });
                }
            }
        }
        state = r.next;
    }
    streams
}

/// One retirement event projected through one observation atom — the
/// values the contract record would expose. Mirrors
/// `csl_contracts::field_value` on the RTL side: gating bits first, data
/// masked to zero when the gate is off.
fn project(atom: ObsAtom, cfg: &IsaConfig, e: &CommitEvent) -> Vec<u64> {
    match atom {
        ObsAtom::LoadData => vec![e.is_load as u64, if e.is_load { e.value } else { 0 }],
        ObsAtom::MemWord => vec![e.is_load as u64, e.mem_word],
        ObsAtom::Exception => vec![e.exception],
        ObsAtom::BranchTaken => vec![e.is_branch as u64, e.taken as u64],
        ObsAtom::MulOperands => {
            if cfg.enable_mul {
                vec![e.is_mul as u64, e.mul_a, e.mul_b]
            } else {
                Vec::new()
            }
        }
        // MiniISA has no stores: the atom is degenerate (constant false)
        // and can never separate two executions.
        ObsAtom::MemIsStore => vec![0],
        ObsAtom::LoadAddr => vec![e.is_load as u64, e.mem_word],
    }
}

/// The atoms whose projections distinguish the two retirement streams.
///
/// Streams from a genuine shadow counterexample have equal length (the
/// bad state requires both record FIFOs empty and the pipelines drained);
/// a length mismatch is tolerated by comparing the common prefix, so a
/// scheme with weaker alignment guarantees still gets a useful answer.
pub fn separating_atoms(cfg: &IsaConfig, s1: &[CommitEvent], s2: &[CommitEvent]) -> Vec<ObsAtom> {
    ObsAtom::ALL
        .into_iter()
        .filter(|&atom| {
            s1.iter()
                .zip(s2)
                .any(|(a, b)| project(atom, cfg, a) != project(atom, cfg, b))
        })
        .collect()
}

/// Picks the refinement atom: among the separating atoms not already in
/// the candidate, the one whose record fields are cheapest (fewest bits
/// under `cfg`), ties broken by canonical atom order. Weakening the
/// contract as little as possible per step keeps the walk near the
/// strongest sound point of the lattice.
pub fn cheapest_new_atom(
    cfg: &IsaConfig,
    separating: &[ObsAtom],
    candidate: ObsSet,
) -> Option<ObsAtom> {
    separating
        .iter()
        .copied()
        .filter(|&a| !candidate.contains(a))
        .min_by_key(|&a| a.bits(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(value: u64, mem_word: u64, taken: bool) -> CommitEvent {
        CommitEvent {
            cycle: 0,
            pc: 0,
            value,
            is_load: true,
            mem_word,
            is_branch: true,
            taken,
            exception: 0,
            is_mul: false,
            mul_a: 0,
            mul_b: 0,
        }
    }

    #[test]
    fn separating_atoms_see_only_real_differences() {
        let cfg = IsaConfig::default();
        let a = vec![event(1, 2, false)];
        let b = vec![event(9, 2, false)];
        let seps = separating_atoms(&cfg, &a, &b);
        assert_eq!(seps, vec![ObsAtom::LoadData]);
        let b = vec![event(1, 3, true)];
        let seps = separating_atoms(&cfg, &a, &b);
        assert!(seps.contains(&ObsAtom::MemWord));
        assert!(seps.contains(&ObsAtom::LoadAddr));
        assert!(seps.contains(&ObsAtom::BranchTaken));
        assert!(!seps.contains(&ObsAtom::LoadData));
        assert!(!seps.contains(&ObsAtom::Exception));
        assert!(!seps.contains(&ObsAtom::MemIsStore));
    }

    #[test]
    fn mul_operands_only_separate_under_the_extension() {
        let cfg = IsaConfig::default();
        let mut a = event(1, 1, false);
        a.is_mul = true;
        a.mul_a = 3;
        let mut b = a.clone();
        b.mul_a = 5;
        assert!(separating_atoms(&cfg, &[a.clone()], &[b.clone()]).is_empty());
        let cfg = IsaConfig {
            enable_mul: true,
            ..IsaConfig::default()
        };
        assert_eq!(
            separating_atoms(&cfg, &[a], &[b]),
            vec![ObsAtom::MulOperands]
        );
    }

    #[test]
    fn cheapest_atom_prefers_fewest_bits_then_canonical_order() {
        let cfg = IsaConfig::default();
        // mem_word (1 + dmem_bits) is cheaper than load_data (1 + xlen)
        // at the default sizes, and beats the equally-priced load_addr on
        // canonical order.
        let seps = vec![ObsAtom::LoadData, ObsAtom::MemWord, ObsAtom::LoadAddr];
        assert_eq!(
            cheapest_new_atom(&cfg, &seps, ObsSet::EMPTY),
            Some(ObsAtom::MemWord)
        );
        // Already-held atoms are never re-proposed.
        assert_eq!(
            cheapest_new_atom(
                &cfg,
                &seps,
                ObsSet::of(&[ObsAtom::MemWord, ObsAtom::LoadAddr])
            ),
            Some(ObsAtom::LoadData)
        );
        assert_eq!(cheapest_new_atom(&cfg, &[], ObsSet::EMPTY), None);
    }
}

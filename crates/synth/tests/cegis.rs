//! CEGIS soundness on a small design: the synthesized contract carries a
//! certified proof that independently re-checks, and dropping any single
//! atom from it re-attacks — i.e. the result is sound *and* a confirmed
//! local minimum of the observation lattice.

use std::time::Duration;

use csl_certify::{check_certificate, check_witness, Witness};
use csl_contracts::Contract;
use csl_core::api::{Budget, Verifier};
use csl_core::DesignKind;
use csl_mc::Verdict;
use csl_synth::{SynthOutcome, SynthPhase, Synthesizer};

fn synthesizer() -> Synthesizer {
    Synthesizer::new().verifier(
        Verifier::new()
            .budget(Budget::wall(Duration::from_secs(60)))
            .bmc_depth(10),
    )
}

#[test]
fn single_cycle_synthesis_is_sound_and_minimal() {
    let synth = synthesizer();
    let result = synth.synthesize(DesignKind::SingleCycle);
    println!("{}", result.render());

    assert_eq!(result.outcome, SynthOutcome::Sound, "{}", result.render());
    assert!(
        !result.contract.is_empty(),
        "differing secrets leak through the memory bus, so the empty \
         contract cannot be sound"
    );
    // The strongest sound contract is at or below the paper's
    // constant-time point of the lattice.
    assert!(
        result.contract.is_subset(Contract::constant_time_set()),
        "synthesized {} is not <= constant-time",
        result.contract.encode()
    );

    // Soundness: the final grow step is a proof whose certificate
    // re-checks against an independently rebuilt instance.
    let proof = result
        .steps
        .iter()
        .rfind(|s| s.phase == SynthPhase::Grow)
        .expect("a sound run ends its grow phase with a proof step");
    assert!(proof.report.verdict.is_proof());
    let cert = proof
        .report
        .certificate
        .as_ref()
        .expect("certification is on by default");
    let task = synth
        .query_for(DesignKind::SingleCycle, result.contract)
        .raw_instance();
    check_certificate(&task, cert).expect("the synthesized contract's proof certificate re-checks");

    // Minimality: every single-atom drop was refuted — either by a
    // descent attack whose witness replays, or by reuse of a grow-phase
    // refutation.
    assert!(result.minimal_confirmed, "{}", result.render());
    let atoms: Vec<_> = result.contract.atoms().collect();
    assert_eq!(
        result.necessary, atoms,
        "every atom of a confirmed-minimal contract is necessary"
    );
    for step in result
        .steps
        .iter()
        .filter(|s| s.phase == SynthPhase::Descent)
    {
        let Verdict::Attack(trace) = &step.report.verdict else {
            panic!("descent step on {} must attack", step.candidate.encode());
        };
        let task = synth
            .query_for(DesignKind::SingleCycle, step.candidate)
            .raw_instance();
        check_witness(&task.aig, &Witness::new((**trace).clone()))
            .expect("descent attack witness replays");
    }

    // Reuse accounting: grow-phase refutations feed the descent, so at
    // least one drop never issued a query, and the step/solve counters
    // reconcile.
    assert!(result.reused >= 1, "{}", result.render());
    assert_eq!(result.solved + result.cache_hits, result.steps.len());

    // The refutation path grows strictly: each step adds exactly the
    // separating atom to the previous candidate.
    let path = result.refutation_path();
    assert!(!path.is_empty());
    for window in path.windows(2) {
        let (set, atom) = window[0];
        assert_eq!(set.with(atom), window[1].0);
    }
}

#[test]
fn repeated_synthesis_is_served_from_cache() {
    let dir = std::env::temp_dir().join(format!("csl-synth-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let synth = synthesizer().cache(&dir);
    let first = synth.synthesize(DesignKind::SingleCycle);
    assert_eq!(first.outcome, SynthOutcome::Sound);
    let second = synth.synthesize(DesignKind::SingleCycle);
    assert_eq!(second.outcome, SynthOutcome::Sound);
    assert_eq!(second.contract, first.contract);
    assert_eq!(
        second.cache_hits,
        second.steps.len(),
        "a repeated walk re-solves nothing:\n{}",
        second.render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

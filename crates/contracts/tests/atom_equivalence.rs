//! The atom-driven contract machinery must be bit-identical to the
//! legacy enum-arm paths it replaced: for both named contracts, the
//! [`RecordLayout`] and the [`isa_record`] projection are compared
//! against verbatim replicas of the pre-refactor implementations across
//! random programs and random `IsaConfig`s. (The RTL-side half of the
//! same property lives in `csl-core/tests/record_agreement.rs`, which
//! checks the atom-driven extraction against the interpreter on the
//! simulated machine.)

use csl_contracts::{exception_code, isa_record, Contract, RecordLayout};
use csl_isa::{interp, progen, ArchState, Inst, IsaConfig, StepInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Verbatim replica of the pre-atom `RecordLayout::for_contract`.
fn legacy_layout(contract: Contract, cfg: &IsaConfig) -> Vec<(&'static str, usize)> {
    let mut fields: Vec<(&'static str, usize)> = Vec::new();
    match contract {
        Contract::Sandboxing => {
            fields.push(("is_load", 1));
            fields.push(("load_data", cfg.xlen));
            fields.push(("exception", 2));
        }
        Contract::ConstantTime => {
            fields.push(("is_mem", 1));
            fields.push(("mem_word", cfg.dmem_bits()));
            fields.push(("exception", 2));
            fields.push(("is_branch", 1));
            fields.push(("br_taken", 1));
            if cfg.enable_mul {
                fields.push(("is_mul", 1));
                fields.push(("mul_a", cfg.xlen));
                fields.push(("mul_b", cfg.xlen));
            }
        }
        Contract::Custom(_) => panic!("legacy path had no custom contracts"),
    }
    fields
}

/// Verbatim replica of the pre-atom `isa_record`.
fn legacy_isa_record(contract: Contract, cfg: &IsaConfig, info: &StepInfo) -> Vec<u32> {
    let faulted = info.exception.is_some();
    match contract {
        Contract::Sandboxing => {
            let is_load = info.inst.is_load() && !faulted;
            let data = if is_load {
                info.writeback.map(|(_, v)| v).unwrap_or(0)
            } else {
                0
            };
            vec![is_load as u32, data, exception_code(info.exception)]
        }
        Contract::ConstantTime => {
            let is_mem = info.mem_word.is_some();
            let word = info.mem_word.unwrap_or(0);
            let is_br = info.inst.is_branch();
            let taken = info.branch_taken.unwrap_or(false);
            let mut v = vec![
                is_mem as u32,
                word,
                exception_code(info.exception),
                is_br as u32,
                taken as u32,
            ];
            if cfg.enable_mul {
                let is_mul = matches!(info.inst, Inst::Mul { .. });
                let (a, b) = info.mul_operands.unwrap_or((0, 0));
                v.extend([is_mul as u32, a, b]);
            }
            v
        }
        Contract::Custom(_) => panic!("legacy path had no custom contracts"),
    }
}

/// A random *valid* `IsaConfig`: `xlen >= 4` keeps register indices
/// inside a data word and the byte-addressed exception memory reachable
/// for every size drawn here.
fn random_config(rng: &mut StdRng) -> IsaConfig {
    IsaConfig {
        xlen: rng.gen_range(4..=8),
        nregs: [4usize, 8][rng.gen_range(0..2usize)],
        imem_size: [4usize, 8, 16][rng.gen_range(0..3usize)],
        dmem_size: [2usize, 4, 8][rng.gen_range(0..3usize)],
        exceptions: rng.gen_bool(0.5),
        enable_mul: rng.gen_bool(0.5),
    }
}

#[test]
fn atom_layouts_match_legacy_across_random_configs() {
    let mut rng = StdRng::seed_from_u64(0xA70A);
    for _ in 0..200 {
        let cfg = random_config(&mut rng);
        for contract in Contract::ALL {
            let atoms = RecordLayout::for_contract(contract, &cfg);
            assert_eq!(
                atoms.fields(),
                legacy_layout(contract, &cfg).as_slice(),
                "{contract:?} layout diverged for {cfg:?}"
            );
        }
    }
}

#[test]
fn atom_records_match_legacy_across_random_programs() {
    let mut rng = StdRng::seed_from_u64(0xA70B);
    for trial in 0..60 {
        let cfg = random_config(&mut rng);
        // The default mix never draws MUL; weight it in so the
        // mul-operand record fields see real values.
        let mix = progen::OpMix {
            mul: 3,
            ..progen::OpMix::default()
        };
        let imem = progen::random_program(&cfg, &mix, &mut rng);
        let dmem = progen::random_dmem(&cfg, &mut rng);
        let mut arch = ArchState::reset(&cfg);
        let steps = interp::run(&cfg, &mut arch, &imem, &dmem, 32);
        for info in &steps {
            for contract in Contract::ALL {
                assert_eq!(
                    isa_record(contract, &cfg, info).values,
                    legacy_isa_record(contract, &cfg, info),
                    "trial {trial}: {contract:?} record diverged for {info:?} under {cfg:?}"
                );
            }
        }
    }
}

//! `csl-contracts` — software-hardware contracts for secure speculation.
//!
//! A contract (paper §2.2, Eq. 1) has two halves:
//!
//! * the **software constraint** — an indistinguishability condition on
//!   ISA-level observation traces (`O_ISA`) of the two executions, and
//! * the **hardware guarantee** — indistinguishability of
//!   microarchitectural observation traces (`O_uarch`).
//!
//! This crate defines the *grammar* of ISA observations — [`ObsAtom`]s,
//! combined into [`ObsSet`]s ordered by inclusion — the
//! per-committed-instruction record a set induces ([`RecordLayout`]), and
//! the projection of interpreter [`StepInfo`]s onto those records (the
//! ISA-side half; the RTL-side extraction lives in the shadow logic of
//! `csl-core`). The paper's two hand-written contracts
//! ([`Contract::Sandboxing`] and [`Contract::ConstantTime`]) are named
//! points in that lattice; [`Contract::Custom`] carries any other set —
//! the search space of the `csl-synth` CEGIS loop.
//!
//! The lattice order is observation-set inclusion: *fewer* atoms means
//! the software constraint is easier to satisfy, so the hardware promise
//! covers more programs — a **stronger** (more precise) contract. A
//! design sound under a set is sound under every superset
//! (superset-record equality implies subset-record equality), which is
//! what makes the synthesis walk monotone.
//!
//! `O_uarch` is fixed across contracts, matching §2.2: the address
//! sequence on the memory bus plus the commit time of every committed
//! instruction.

use csl_isa::{Exception, Inst, IsaConfig, StepInfo};

/// One primitive ISA-level observation a contract may expose per
/// committed instruction. Atoms are the terminals of the contract
/// grammar; a contract's software constraint is "the [`ObsSet`] of atoms
/// agrees between the two executions, instruction by instruction".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObsAtom {
    /// The data written back by every committed (non-faulting) load.
    LoadData,
    /// The word address of every committed memory access.
    MemWord,
    /// The exception event stream (code per committed instruction).
    Exception,
    /// Branch direction of every committed branch.
    BranchTaken,
    /// Multiplier operands of every committed multiply (only material
    /// with the MUL extension; contributes no record bits without it).
    MulOperands,
    /// Whether the committed access is a store. MiniISA has no stores,
    /// so this atom is degenerate (constant false) — it exists so the
    /// grammar covers the access-kind observation real ISAs need.
    MemIsStore,
    /// The word address of every committed load specifically (subsumed
    /// by [`ObsAtom::MemWord`] on MiniISA, where loads are the only
    /// memory accesses; distinct on ISAs with stores).
    LoadAddr,
}

impl ObsAtom {
    /// Every atom, in the canonical record order. The first five, in
    /// this order, reproduce the legacy enum-arm layouts bit for bit
    /// (pinned by `layout_is_stable` below and the
    /// `atom_equivalence` test suite).
    pub const ALL: [ObsAtom; 7] = [
        ObsAtom::LoadData,
        ObsAtom::MemWord,
        ObsAtom::Exception,
        ObsAtom::BranchTaken,
        ObsAtom::MulOperands,
        ObsAtom::MemIsStore,
        ObsAtom::LoadAddr,
    ];

    /// Stable wire name (used inside [`Contract::name`] encodings).
    pub fn name(self) -> &'static str {
        match self {
            ObsAtom::LoadData => "load_data",
            ObsAtom::MemWord => "mem_word",
            ObsAtom::Exception => "exception",
            ObsAtom::BranchTaken => "branch_taken",
            ObsAtom::MulOperands => "mul_operands",
            ObsAtom::MemIsStore => "mem_is_store",
            ObsAtom::LoadAddr => "load_addr",
        }
    }

    /// Inverse of [`ObsAtom::name`].
    pub fn from_name(name: &str) -> Option<ObsAtom> {
        ObsAtom::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Position in the canonical order (the [`ObsSet`] bit index).
    fn index(self) -> usize {
        ObsAtom::ALL
            .iter()
            .position(|&a| a == self)
            .expect("every atom is in ALL")
    }

    /// The record fields this atom contributes, in order. Field names
    /// are the dispatch keys of the RTL-side extraction
    /// (`csl_core::record::extract_record`); the same name may appear
    /// under several atoms (it denotes the same signal).
    pub fn fields(self, cfg: &IsaConfig) -> Vec<(&'static str, usize)> {
        match self {
            ObsAtom::LoadData => vec![("is_load", 1), ("load_data", cfg.xlen)],
            ObsAtom::MemWord => vec![("is_mem", 1), ("mem_word", cfg.dmem_bits())],
            ObsAtom::Exception => vec![("exception", 2)],
            ObsAtom::BranchTaken => vec![("is_branch", 1), ("br_taken", 1)],
            ObsAtom::MulOperands => {
                if cfg.enable_mul {
                    vec![("is_mul", 1), ("mul_a", cfg.xlen), ("mul_b", cfg.xlen)]
                } else {
                    Vec::new()
                }
            }
            ObsAtom::MemIsStore => vec![("mem_is_store", 1)],
            ObsAtom::LoadAddr => vec![("is_load", 1), ("load_addr", cfg.dmem_bits())],
        }
    }

    /// Total record bits this atom contributes under `cfg` — the
    /// "weakening cost" the synthesis loop minimises when several atoms
    /// separate a counterexample.
    pub fn bits(self, cfg: &IsaConfig) -> usize {
        self.fields(cfg).iter().map(|&(_, w)| w).sum()
    }
}

/// A set of [`ObsAtom`]s — one point of the contract lattice, ordered by
/// inclusion. Backed by a bitmask over [`ObsAtom::ALL`], so it is `Copy`
/// and cheap to key on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObsSet(u16);

impl ObsSet {
    /// The bottom of the lattice: observe nothing. The strongest
    /// contract expressible — and the CEGIS loop's starting candidate.
    pub const EMPTY: ObsSet = ObsSet(0);

    /// Every atom — the top of the lattice (weakest contract).
    pub fn full() -> ObsSet {
        ObsAtom::ALL.iter().fold(ObsSet::EMPTY, |s, &a| s.with(a))
    }

    /// Builds a set from atoms.
    pub fn of(atoms: &[ObsAtom]) -> ObsSet {
        atoms.iter().fold(ObsSet::EMPTY, |s, &a| s.with(a))
    }

    /// This set plus `atom`.
    pub fn with(self, atom: ObsAtom) -> ObsSet {
        ObsSet(self.0 | (1 << atom.index()))
    }

    /// This set minus `atom`.
    pub fn without(self, atom: ObsAtom) -> ObsSet {
        ObsSet(self.0 & !(1 << atom.index()))
    }

    /// Membership test.
    pub fn contains(self, atom: ObsAtom) -> bool {
        self.0 & (1 << atom.index()) != 0
    }

    /// Inclusion — the lattice partial order. `a.is_subset(b)` means `a`
    /// is the stronger (more precise) contract.
    pub fn is_subset(self, other: ObsSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of atoms in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff no atom is observed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Member atoms in canonical record order.
    pub fn atoms(self) -> impl Iterator<Item = ObsAtom> {
        ObsAtom::ALL.into_iter().filter(move |a| self.contains(*a))
    }

    /// Stable encoding: `none` for the empty set, else `+`-joined atom
    /// names in canonical order (`load_data+exception`).
    pub fn encode(self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        self.atoms()
            .map(ObsAtom::name)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Inverse of [`ObsSet::encode`]. Lenient about atom order and
    /// duplicates; rejects unknown atom names.
    pub fn decode(text: &str) -> Option<ObsSet> {
        if text == "none" {
            return Some(ObsSet::EMPTY);
        }
        let mut set = ObsSet::EMPTY;
        for part in text.split('+') {
            set = set.with(ObsAtom::from_name(part)?);
        }
        Some(set)
    }
}

/// The software-hardware contract being verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Contract {
    /// The sandboxing contract: executing the program sequentially never
    /// makes the two executions' *committed load data* differ — i.e. the
    /// program does not load secrets into registers. `O_ISA` is the data
    /// written by every committed load (plus the exception event stream,
    /// which is implied equal and included for robustness).
    Sandboxing,
    /// The constant-time contract: committed memory addresses, branch
    /// conditions, and multiplier operands are secret-independent.
    ConstantTime,
    /// An arbitrary observation set — the synthesis search space.
    /// Construct through [`Contract::from_obs`], which folds the two
    /// named points back onto their variants so reports, cache keys and
    /// equality stay canonical.
    Custom(ObsSet),
}

impl Contract {
    /// The hand-written contracts of the paper, for sweeps. (Synthesis
    /// sweeps walk the full [`ObsSet`] lattice instead.)
    pub const ALL: [Contract; 2] = [Contract::Sandboxing, Contract::ConstantTime];

    /// The observation set behind [`Contract::Sandboxing`].
    pub fn sandboxing_set() -> ObsSet {
        ObsSet::of(&[ObsAtom::LoadData, ObsAtom::Exception])
    }

    /// The observation set behind [`Contract::ConstantTime`].
    pub fn constant_time_set() -> ObsSet {
        ObsSet::of(&[
            ObsAtom::MemWord,
            ObsAtom::Exception,
            ObsAtom::BranchTaken,
            ObsAtom::MulOperands,
        ])
    }

    /// The contract's observation set.
    pub fn obs_set(self) -> ObsSet {
        match self {
            Contract::Sandboxing => Contract::sandboxing_set(),
            Contract::ConstantTime => Contract::constant_time_set(),
            Contract::Custom(set) => set,
        }
    }

    /// Canonicalising constructor: a set equal to a named contract's
    /// becomes that named variant, so `from_obs(set).name()` round-trips
    /// stably through reports and cache keys.
    pub fn from_obs(set: ObsSet) -> Contract {
        if set == Contract::sandboxing_set() {
            Contract::Sandboxing
        } else if set == Contract::constant_time_set() {
            Contract::ConstantTime
        } else {
            Contract::Custom(set)
        }
    }

    /// Short table label. Named contracts keep their historical names
    /// (old artifacts must keep parsing); custom sets encode as
    /// `obs:<atom>+<atom>` / `obs:none`.
    pub fn name(self) -> String {
        match self {
            Contract::Sandboxing => "sandboxing".to_string(),
            Contract::ConstantTime => "constant-time".to_string(),
            Contract::Custom(set) => format!("obs:{}", set.encode()),
        }
    }

    /// Inverse of [`Contract::name`] (used when reading persisted
    /// reports): the two historical names, or a lenient `obs:` set
    /// encoding (canonicalised through [`Contract::from_obs`], so
    /// `obs:load_data+exception` parses to [`Contract::Sandboxing`]).
    pub fn from_name(name: &str) -> Option<Contract> {
        match name {
            "sandboxing" => Some(Contract::Sandboxing),
            "constant-time" => Some(Contract::ConstantTime),
            other => Some(Contract::from_obs(ObsSet::decode(
                other.strip_prefix("obs:")?,
            )?)),
        }
    }
}

/// Layout of one `O_ISA` record: named field widths, in order. Both the
/// ISA-side projection and the RTL-side shadow extraction must agree on
/// this layout; keeping it in one place is what makes the shadow logic
/// reusable across designs (§5.1). The layout is atom-driven — fields of
/// the set's atoms in canonical order — with the two named contracts
/// reproducing their historical layouts exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLayout {
    fields: Vec<(&'static str, usize)>,
}

impl RecordLayout {
    /// The layout induced by `contract` for `cfg`.
    pub fn for_contract(contract: Contract, cfg: &IsaConfig) -> RecordLayout {
        RecordLayout::for_set(contract.obs_set(), cfg)
    }

    /// The layout induced by an observation set: each member atom's
    /// fields, atoms in canonical order. A set with no material fields
    /// (empty, or only atoms degenerate under `cfg`) gets a single
    /// 1-bit constant `pad` field so downstream consumers (record
    /// FIFOs, packers) never see a zero-width record; its records
    /// compare trivially equal, which is exactly the "observe nothing"
    /// semantics.
    pub fn for_set(set: ObsSet, cfg: &IsaConfig) -> RecordLayout {
        let mut fields: Vec<(&'static str, usize)> = Vec::new();
        for atom in set.atoms() {
            fields.extend(atom.fields(cfg));
        }
        if fields.is_empty() {
            fields.push(("pad", 1));
        }
        RecordLayout { fields }
    }

    /// Field names and widths, in order.
    pub fn fields(&self) -> &[(&'static str, usize)] {
        &self.fields
    }

    /// Total record width in bits.
    pub fn total_bits(&self) -> usize {
        self.fields.iter().map(|(_, w)| w).sum()
    }

    /// True iff a packed record fits one `u64` word (the cross-check
    /// packer's limit; the RTL path has no width limit).
    pub fn fits_u64(&self) -> bool {
        self.total_bits() <= 64
    }
}

/// Encoding of an exception into the record's 2-bit field.
pub fn exception_code(e: Option<Exception>) -> u32 {
    match e {
        None => 0,
        Some(Exception::Misaligned) => 1,
        Some(Exception::Illegal) => 2,
    }
}

/// One `O_ISA` record: field values matching a [`RecordLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsaRecord {
    pub values: Vec<u32>,
}

/// The ISA-side value of one named record field for a retired
/// instruction — the single source of truth the atom-driven
/// [`isa_record`] reads, mirroring the RTL-side signal the shadow logic
/// taps for the same name.
fn field_value(name: &str, info: &StepInfo) -> u32 {
    let faulted = info.exception.is_some();
    let is_load = info.inst.is_load() && !faulted;
    match name {
        "is_load" => is_load as u32,
        "load_data" => {
            if is_load {
                info.writeback.map(|(_, v)| v).unwrap_or(0)
            } else {
                0
            }
        }
        "is_mem" => info.mem_word.is_some() as u32,
        "mem_word" | "load_addr" => info.mem_word.unwrap_or(0),
        "exception" => exception_code(info.exception),
        "is_branch" => info.inst.is_branch() as u32,
        "br_taken" => info.branch_taken.unwrap_or(false) as u32,
        "is_mul" => matches!(info.inst, Inst::Mul { .. }) as u32,
        "mul_a" => info.mul_operands.unwrap_or((0, 0)).0,
        "mul_b" => info.mul_operands.unwrap_or((0, 0)).1,
        // MiniISA has no stores; the atom is grammar completeness only.
        "mem_is_store" => 0,
        "pad" => 0,
        other => panic!("unknown record field {other}"),
    }
}

/// Projects a retired instruction onto the contract's `O_ISA` record.
/// Every committed instruction produces a record (fields not applicable
/// to its opcode are zero), so two record streams are comparable
/// position-by-position.
pub fn isa_record(contract: Contract, cfg: &IsaConfig, info: &StepInfo) -> IsaRecord {
    let layout = RecordLayout::for_contract(contract, cfg);
    IsaRecord {
        values: layout
            .fields()
            .iter()
            .map(|&(name, _)| field_value(name, info))
            .collect(),
    }
}

/// Checks the software constraint over two retirement streams: true iff
/// the `O_ISA` traces are equal (the hypothesis of Eq. 1).
pub fn traces_indistinguishable(
    contract: Contract,
    cfg: &IsaConfig,
    a: &[StepInfo],
    b: &[StepInfo],
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| isa_record(contract, cfg, x) == isa_record(contract, cfg, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_isa::{assemble, interp, ArchState};

    fn run(cfg: &IsaConfig, src: &str, dmem: &[u32], n: usize) -> Vec<StepInfo> {
        let imem = assemble(cfg, src).unwrap();
        let mut st = ArchState::reset(cfg);
        interp::run(cfg, &mut st, &imem, dmem, n)
    }

    #[test]
    fn layout_widths() {
        let cfg = IsaConfig::default();
        let sb = RecordLayout::for_contract(Contract::Sandboxing, &cfg);
        assert_eq!(sb.total_bits(), 1 + 4 + 2);
        let ct = RecordLayout::for_contract(Contract::ConstantTime, &cfg);
        assert_eq!(ct.total_bits(), 1 + 2 + 2 + 1 + 1);
        let ct_mul = RecordLayout::for_contract(
            Contract::ConstantTime,
            &IsaConfig {
                enable_mul: true,
                ..cfg
            },
        );
        assert_eq!(ct_mul.total_bits(), 7 + 1 + 4 + 4);
    }

    /// The atom-driven layouts must keep the exact historical field
    /// order: the shadow logic, the cross-check packer and persisted
    /// artifacts all depend on it.
    #[test]
    fn layout_is_stable() {
        let cfg = IsaConfig::default();
        let sb = RecordLayout::for_contract(Contract::Sandboxing, &cfg);
        assert_eq!(
            sb.fields(),
            &[("is_load", 1), ("load_data", 4), ("exception", 2)]
        );
        let ct = RecordLayout::for_contract(Contract::ConstantTime, &cfg);
        assert_eq!(
            ct.fields(),
            &[
                ("is_mem", 1),
                ("mem_word", 2),
                ("exception", 2),
                ("is_branch", 1),
                ("br_taken", 1),
            ]
        );
    }

    #[test]
    fn empty_set_pads_to_one_bit() {
        let cfg = IsaConfig::default();
        let layout = RecordLayout::for_set(ObsSet::EMPTY, &cfg);
        assert_eq!(layout.fields(), &[("pad", 1)]);
        // MulOperands without the extension is degenerate too.
        let layout = RecordLayout::for_set(ObsSet::of(&[ObsAtom::MulOperands]), &cfg);
        assert_eq!(layout.fields(), &[("pad", 1)]);
    }

    #[test]
    fn obs_set_lattice_basics() {
        let sb = Contract::sandboxing_set();
        let ct = Contract::constant_time_set();
        assert_eq!(sb.len(), 2);
        assert!(sb.contains(ObsAtom::LoadData) && sb.contains(ObsAtom::Exception));
        assert!(!sb.is_subset(ct) && !ct.is_subset(sb));
        assert!(ObsSet::EMPTY.is_subset(sb));
        assert!(sb.is_subset(ObsSet::full()));
        assert_eq!(sb.without(ObsAtom::LoadData).with(ObsAtom::LoadData), sb);
        let atoms: Vec<ObsAtom> = ct.atoms().collect();
        assert_eq!(
            atoms,
            vec![
                ObsAtom::MemWord,
                ObsAtom::Exception,
                ObsAtom::BranchTaken,
                ObsAtom::MulOperands
            ]
        );
    }

    #[test]
    fn obs_set_encoding_round_trips() {
        for set in [
            ObsSet::EMPTY,
            ObsSet::full(),
            Contract::sandboxing_set(),
            ObsSet::of(&[ObsAtom::MemWord, ObsAtom::LoadAddr]),
        ] {
            assert_eq!(ObsSet::decode(&set.encode()), Some(set), "{set:?}");
        }
        assert_eq!(ObsSet::decode("none"), Some(ObsSet::EMPTY));
        assert_eq!(ObsSet::decode("bogus"), None);
        assert_eq!(ObsSet::decode(""), None);
    }

    #[test]
    fn contract_names() {
        assert_eq!(Contract::Sandboxing.name(), "sandboxing");
        assert_eq!(Contract::ConstantTime.name(), "constant-time");
        let custom = Contract::Custom(ObsSet::of(&[ObsAtom::MemWord, ObsAtom::BranchTaken]));
        assert_eq!(custom.name(), "obs:mem_word+branch_taken");
        assert_eq!(Contract::Custom(ObsSet::EMPTY).name(), "obs:none");
    }

    #[test]
    fn contract_from_name_is_lenient_and_canonical() {
        // Historical artifacts.
        assert_eq!(
            Contract::from_name("sandboxing"),
            Some(Contract::Sandboxing)
        );
        assert_eq!(
            Contract::from_name("constant-time"),
            Some(Contract::ConstantTime)
        );
        // Obs encodings round-trip.
        let custom = Contract::Custom(ObsSet::of(&[ObsAtom::MemWord]));
        assert_eq!(Contract::from_name(&custom.name()), Some(custom));
        assert_eq!(
            Contract::from_name("obs:none"),
            Some(Contract::Custom(ObsSet::EMPTY))
        );
        // A named contract's set spelled as an obs encoding canonicalises
        // back to the named variant (stable cache keys and labels).
        assert_eq!(
            Contract::from_name("obs:load_data+exception"),
            Some(Contract::Sandboxing)
        );
        assert_eq!(
            Contract::from_name("obs:mem_word+exception+branch_taken+mul_operands"),
            Some(Contract::ConstantTime)
        );
        assert_eq!(Contract::from_name("obs:bogus"), None);
        assert_eq!(Contract::from_name("unknown"), None);
    }

    #[test]
    fn sandboxing_distinguishes_secret_loads() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 2\nLD r2, (r1)"; // loads dmem[2] = secret region
        let a = run(&cfg, src, &[0, 0, 5, 0], 2);
        let b = run(&cfg, src, &[0, 0, 9, 0], 2);
        assert!(!traces_indistinguishable(
            Contract::Sandboxing,
            &cfg,
            &a,
            &b
        ));
        // Under constant-time the *address* is public, so the traces are
        // indistinguishable even though the data differs.
        assert!(traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
        // The empty set observes nothing: always indistinguishable.
        assert!(traces_indistinguishable(
            Contract::Custom(ObsSet::EMPTY),
            &cfg,
            &a,
            &b
        ));
        // The full set observes everything the named contracts do.
        assert!(!traces_indistinguishable(
            Contract::Custom(ObsSet::full()),
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn constant_time_distinguishes_secret_addresses() {
        let cfg = IsaConfig::default();
        // Load the secret, then use it as an address.
        let src = "LI r1, 2\nLD r2, (r1)\nLD r3, (r2)";
        let a = run(&cfg, src, &[0, 0, 0, 0], 3);
        let b = run(&cfg, src, &[0, 0, 1, 0], 3);
        assert!(!traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
        // The single-atom {mem_word} contract sees the same difference.
        assert!(!traces_indistinguishable(
            Contract::Custom(ObsSet::of(&[ObsAtom::MemWord])),
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn constant_time_distinguishes_secret_branches() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 2\nLD r2, (r1)\nBNZ r2, 0";
        let a = run(&cfg, src, &[0, 0, 0, 0], 3);
        let b = run(&cfg, src, &[0, 0, 1, 0], 3);
        assert!(!traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
        // Sandboxing *does* filter this program too (it loads the secret).
        assert!(!traces_indistinguishable(
            Contract::Sandboxing,
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn public_programs_are_indistinguishable() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 1\nLD r2, (r1)\nADD r3, r2, r2\nBNZ r3, 0";
        let a = run(&cfg, src, &[3, 4, 5, 6], 8);
        let b = run(&cfg, src, &[3, 4, 9, 1], 8);
        for c in Contract::ALL {
            assert!(traces_indistinguishable(c, &cfg, &a, &b), "{c:?}");
        }
        assert!(traces_indistinguishable(
            Contract::Custom(ObsSet::full()),
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn exception_events_recorded() {
        let cfg = IsaConfig {
            exceptions: true,
            ..IsaConfig::default()
        };
        let src = "LI r1, 5\nLD r2, (r1)"; // misaligned
        let a = run(&cfg, src, &[0; 4], 2);
        let rec = isa_record(Contract::Sandboxing, &cfg, &a[1]);
        assert_eq!(rec.values, vec![0, 0, 1]); // not a load-commit; exc=misaligned
        let rec_ct = isa_record(Contract::ConstantTime, &cfg, &a[1]);
        assert_eq!(rec_ct.values[2], 1);
        assert_eq!(rec_ct.values[0], 0, "faulting load is not a mem access");
    }

    #[test]
    fn atom_bits_rank_weakening_cost() {
        let cfg = IsaConfig::default();
        // mem_word (1+2) is a cheaper weakening than load_data (1+4);
        // the CEGIS loop's minimal-separating-atom choice relies on it.
        assert!(ObsAtom::MemWord.bits(&cfg) < ObsAtom::LoadData.bits(&cfg));
        assert_eq!(ObsAtom::Exception.bits(&cfg), 2);
        assert_eq!(ObsAtom::MulOperands.bits(&cfg), 0);
        let mul_cfg = IsaConfig {
            enable_mul: true,
            ..cfg
        };
        assert_eq!(ObsAtom::MulOperands.bits(&mul_cfg), 1 + 4 + 4);
    }
}

//! `csl-contracts` — software-hardware contracts for secure speculation.
//!
//! A contract (paper §2.2, Eq. 1) has two halves:
//!
//! * the **software constraint** — an indistinguishability condition on
//!   ISA-level observation traces (`O_ISA`) of the two executions, and
//! * the **hardware guarantee** — indistinguishability of
//!   microarchitectural observation traces (`O_uarch`).
//!
//! This crate defines the two contracts evaluated in the paper
//! ([`Contract::Sandboxing`] and [`Contract::ConstantTime`]), the
//! per-committed-instruction ISA observation record each induces, and the
//! projection of interpreter [`StepInfo`]s onto those records (the
//! ISA-side half; the RTL-side extraction lives in the shadow logic of
//! `csl-core`).
//!
//! `O_uarch` is fixed across contracts, matching §2.2: the address
//! sequence on the memory bus plus the commit time of every committed
//! instruction.

use csl_isa::{Exception, Inst, IsaConfig, StepInfo};

/// The software-hardware contract being verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Contract {
    /// The sandboxing contract: executing the program sequentially never
    /// makes the two executions' *committed load data* differ — i.e. the
    /// program does not load secrets into registers. `O_ISA` is the data
    /// written by every committed load (plus the exception event stream,
    /// which is implied equal and included for robustness).
    Sandboxing,
    /// The constant-time contract: committed memory addresses, branch
    /// conditions, and multiplier operands are secret-independent.
    ConstantTime,
}

impl Contract {
    /// All contracts, for sweeps.
    pub const ALL: [Contract; 2] = [Contract::Sandboxing, Contract::ConstantTime];

    /// Short table label.
    pub fn name(self) -> &'static str {
        match self {
            Contract::Sandboxing => "sandboxing",
            Contract::ConstantTime => "constant-time",
        }
    }

    /// Inverse of [`Contract::name`] (used when reading persisted
    /// reports).
    pub fn from_name(name: &str) -> Option<Contract> {
        Contract::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Layout of one `O_ISA` record: named field widths, in order. Both the
/// ISA-side projection and the RTL-side shadow extraction must agree on
/// this layout; keeping it in one place is what makes the shadow logic
/// reusable across designs (§5.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLayout {
    fields: Vec<(&'static str, usize)>,
}

impl RecordLayout {
    /// The layout induced by `contract` for `cfg`.
    pub fn for_contract(contract: Contract, cfg: &IsaConfig) -> RecordLayout {
        let mut fields: Vec<(&'static str, usize)> = Vec::new();
        match contract {
            Contract::Sandboxing => {
                fields.push(("is_load", 1));
                fields.push(("load_data", cfg.xlen));
                fields.push(("exception", 2));
            }
            Contract::ConstantTime => {
                fields.push(("is_mem", 1));
                fields.push(("mem_word", cfg.dmem_bits()));
                fields.push(("exception", 2));
                fields.push(("is_branch", 1));
                fields.push(("br_taken", 1));
                if cfg.enable_mul {
                    fields.push(("is_mul", 1));
                    fields.push(("mul_a", cfg.xlen));
                    fields.push(("mul_b", cfg.xlen));
                }
            }
        }
        RecordLayout { fields }
    }

    /// Field names and widths, in order.
    pub fn fields(&self) -> &[(&'static str, usize)] {
        &self.fields
    }

    /// Total record width in bits.
    pub fn total_bits(&self) -> usize {
        self.fields.iter().map(|(_, w)| w).sum()
    }
}

/// Encoding of an exception into the record's 2-bit field.
pub fn exception_code(e: Option<Exception>) -> u32 {
    match e {
        None => 0,
        Some(Exception::Misaligned) => 1,
        Some(Exception::Illegal) => 2,
    }
}

/// One `O_ISA` record: field values matching a [`RecordLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsaRecord {
    pub values: Vec<u32>,
}

/// Projects a retired instruction onto the contract's `O_ISA` record.
/// Every committed instruction produces a record (fields not applicable
/// to its opcode are zero), so two record streams are comparable
/// position-by-position.
pub fn isa_record(contract: Contract, cfg: &IsaConfig, info: &StepInfo) -> IsaRecord {
    let faulted = info.exception.is_some();
    let values = match contract {
        Contract::Sandboxing => {
            let is_load = info.inst.is_load() && !faulted;
            let data = if is_load {
                info.writeback.map(|(_, v)| v).unwrap_or(0)
            } else {
                0
            };
            vec![is_load as u32, data, exception_code(info.exception)]
        }
        Contract::ConstantTime => {
            let is_mem = info.mem_word.is_some();
            let word = info.mem_word.unwrap_or(0);
            let is_br = info.inst.is_branch();
            let taken = info.branch_taken.unwrap_or(false);
            let mut v = vec![
                is_mem as u32,
                word,
                exception_code(info.exception),
                is_br as u32,
                taken as u32,
            ];
            if cfg.enable_mul {
                let is_mul = matches!(info.inst, Inst::Mul { .. });
                let (a, b) = info.mul_operands.unwrap_or((0, 0));
                v.extend([is_mul as u32, a, b]);
            }
            v
        }
    };
    IsaRecord { values }
}

/// Checks the software constraint over two retirement streams: true iff
/// the `O_ISA` traces are equal (the hypothesis of Eq. 1).
pub fn traces_indistinguishable(
    contract: Contract,
    cfg: &IsaConfig,
    a: &[StepInfo],
    b: &[StepInfo],
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| isa_record(contract, cfg, x) == isa_record(contract, cfg, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_isa::{assemble, interp, ArchState};

    fn run(cfg: &IsaConfig, src: &str, dmem: &[u32], n: usize) -> Vec<StepInfo> {
        let imem = assemble(cfg, src).unwrap();
        let mut st = ArchState::reset(cfg);
        interp::run(cfg, &mut st, &imem, dmem, n)
    }

    #[test]
    fn layout_widths() {
        let cfg = IsaConfig::default();
        let sb = RecordLayout::for_contract(Contract::Sandboxing, &cfg);
        assert_eq!(sb.total_bits(), 1 + 4 + 2);
        let ct = RecordLayout::for_contract(Contract::ConstantTime, &cfg);
        assert_eq!(ct.total_bits(), 1 + 2 + 2 + 1 + 1);
        let ct_mul = RecordLayout::for_contract(
            Contract::ConstantTime,
            &IsaConfig {
                enable_mul: true,
                ..cfg
            },
        );
        assert_eq!(ct_mul.total_bits(), 7 + 1 + 4 + 4);
    }

    #[test]
    fn sandboxing_distinguishes_secret_loads() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 2\nLD r2, (r1)"; // loads dmem[2] = secret region
        let a = run(&cfg, src, &[0, 0, 5, 0], 2);
        let b = run(&cfg, src, &[0, 0, 9, 0], 2);
        assert!(!traces_indistinguishable(
            Contract::Sandboxing,
            &cfg,
            &a,
            &b
        ));
        // Under constant-time the *address* is public, so the traces are
        // indistinguishable even though the data differs.
        assert!(traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn constant_time_distinguishes_secret_addresses() {
        let cfg = IsaConfig::default();
        // Load the secret, then use it as an address.
        let src = "LI r1, 2\nLD r2, (r1)\nLD r3, (r2)";
        let a = run(&cfg, src, &[0, 0, 0, 0], 3);
        let b = run(&cfg, src, &[0, 0, 1, 0], 3);
        assert!(!traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn constant_time_distinguishes_secret_branches() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 2\nLD r2, (r1)\nBNZ r2, 0";
        let a = run(&cfg, src, &[0, 0, 0, 0], 3);
        let b = run(&cfg, src, &[0, 0, 1, 0], 3);
        assert!(!traces_indistinguishable(
            Contract::ConstantTime,
            &cfg,
            &a,
            &b
        ));
        // Sandboxing *does* filter this program too (it loads the secret).
        assert!(!traces_indistinguishable(
            Contract::Sandboxing,
            &cfg,
            &a,
            &b
        ));
    }

    #[test]
    fn public_programs_are_indistinguishable() {
        let cfg = IsaConfig::default();
        let src = "LI r1, 1\nLD r2, (r1)\nADD r3, r2, r2\nBNZ r3, 0";
        let a = run(&cfg, src, &[3, 4, 5, 6], 8);
        let b = run(&cfg, src, &[3, 4, 9, 1], 8);
        for c in Contract::ALL {
            assert!(traces_indistinguishable(c, &cfg, &a, &b), "{c:?}");
        }
    }

    #[test]
    fn exception_events_recorded() {
        let cfg = IsaConfig {
            exceptions: true,
            ..IsaConfig::default()
        };
        let src = "LI r1, 5\nLD r2, (r1)"; // misaligned
        let a = run(&cfg, src, &[0; 4], 2);
        let rec = isa_record(Contract::Sandboxing, &cfg, &a[1]);
        assert_eq!(rec.values, vec![0, 0, 1]); // not a load-commit; exc=misaligned
        let rec_ct = isa_record(Contract::ConstantTime, &cfg, &a[1]);
        assert_eq!(rec_ct.values[2], 1);
        assert_eq!(rec_ct.values[0], 0, "faulting load is not a mem access");
    }

    #[test]
    fn contract_names() {
        assert_eq!(Contract::Sandboxing.name(), "sandboxing");
        assert_eq!(Contract::ConstantTime.name(), "constant-time");
    }
}

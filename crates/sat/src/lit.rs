//! Variables and literals.
//!
//! A [`Var`] is a propositional variable; a [`Lit`] is a variable together
//! with a polarity. Literals use the MiniSat packed encoding
//! (`index = 2 * var + sign`), which keeps watch lists and assignment
//! vectors directly indexable.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign (`true` = negated).
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit((self.0 << 1) | negated as u32)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity.
///
/// ```
/// use csl_sat::{Lit, Var};
/// let v = Var::from_index(3);
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!(p.var(), v);
/// assert!(!p.is_negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is the negation of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Packed index (`2 * var + sign`), usable for direct array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

/// A three-valued assignment: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    True,
    False,
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Flips true/false and leaves `Undef` as is.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// `Some(bool)` if assigned.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        for i in 0..64 {
            let v = Var::from_index(i);
            assert_eq!(v.positive().var(), v);
            assert_eq!(v.negative().var(), v);
            assert!(v.negative().is_negative());
            assert!(!v.positive().is_negative());
            assert_eq!(v.positive().index() + 1, v.negative().index());
        }
    }

    #[test]
    fn negation_is_involutive() {
        let l = Var::from_index(7).positive();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
    }

    #[test]
    fn lit_sign_constructor() {
        let v = Var::from_index(5);
        assert_eq!(v.lit(false), v.positive());
        assert_eq!(v.lit(true), v.negative());
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::False.to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
    }
}

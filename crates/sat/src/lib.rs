//! `csl-sat` — a CDCL SAT solver.
//!
//! This crate is the decision-procedure substrate of the Contract Shadow
//! Logic reproduction: every bounded-model-checking, induction and PDR query
//! issued by `csl-mc` bottoms out here. It is a conventional
//! MiniSat-family solver:
//!
//! * two-watched-literal unit propagation with blocker literals,
//! * first-UIP conflict analysis with recursive clause minimisation,
//! * VSIDS variable ordering with phase saving,
//! * Luby restarts and LBD-aware learnt-clause database reduction,
//! * incremental solving under assumptions, with failed-assumption
//!   (unsat core) extraction — required by the PDR engine,
//! * cooperative cancellation through conflict and wall-clock budgets —
//!   required to reproduce the paper's "time out" verdicts.
//!
//! # Example
//!
//! ```
//! use csl_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause(&[a, b]);       // a | b
//! solver.add_clause(&[!a, b]);      // !a | b  => b must hold
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(b), Some(true));
//!
//! // Under the assumption !b the instance is unsatisfiable, and the core
//! // names the culprit assumption.
//! assert_eq!(solver.solve_with(&[!b]), SolveResult::Unsat);
//! assert_eq!(solver.unsat_core(), &[!b]);
//! ```

mod clause;
mod heap;
mod lit;
mod solver;

pub mod dimacs;

pub use clause::ClauseRef;
pub use lit::{LBool, Lit, Var};
pub use solver::{Budget, ExportHook, ExportPolicy, SolveResult, Solver, SolverStats};

//! DIMACS CNF import/export, mainly for debugging and cross-checking the
//! solver against external tools.

use std::fmt::Write as _;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// An error while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// A parsed CNF: variable count and clause list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    pub num_vars: usize,
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the CNF into a fresh solver.
    pub fn into_solver(self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

fn lit_from_dimacs(n: i64) -> Lit {
    let v = Var::from_index((n.unsigned_abs() - 1) as usize);
    v.lit(n < 0)
}

fn lit_to_dimacs(l: Lit) -> i64 {
    let n = (l.var().index() + 1) as i64;
    if l.is_negative() {
        -n
    } else {
        n
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
/// Returns [`ParseDimacsError`] on malformed headers, unterminated clauses,
/// or literals out of the declared variable range.
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::default();
    let mut declared: Option<(usize, usize)> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: format!("bad problem line {line:?}"),
                });
            }
            let nv = parts[2].parse::<usize>().map_err(|e| ParseDimacsError {
                line: lineno,
                message: e.to_string(),
            })?;
            let nc = parts[3].parse::<usize>().map_err(|e| ParseDimacsError {
                line: lineno,
                message: e.to_string(),
            })?;
            declared = Some((nv, nc));
            cnf.num_vars = nv;
            continue;
        }
        for tok in line.split_whitespace() {
            let n = tok.parse::<i64>().map_err(|e| ParseDimacsError {
                line: lineno,
                message: format!("bad literal {tok:?}: {e}"),
            })?;
            if n == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                if let Some((nv, _)) = declared {
                    if n.unsigned_abs() as usize > nv {
                        return Err(ParseDimacsError {
                            line: lineno,
                            message: format!("literal {n} exceeds declared {nv} variables"),
                        });
                    }
                }
                current.push(lit_from_dimacs(n));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause (missing 0)".into(),
        });
    }
    Ok(cnf)
}

/// Renders a CNF as DIMACS text.
pub fn render(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let _ = write!(out, "{} ", lit_to_dimacs(l));
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1).positive()), Some(true));
    }

    #[test]
    fn roundtrip() {
        let cnf = parse("p cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        let text = render(&cnf);
        let cnf2 = parse(&text).unwrap();
        assert_eq!(cnf, cnf2);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn rejects_unterminated() {
        let err = parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn multiline_clause() {
        let cnf = parse("p cnf 3 1\n1\n2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 3);
    }
}

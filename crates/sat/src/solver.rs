//! A CDCL SAT solver in the MiniSat lineage.
//!
//! Features: two-watched-literal propagation with blocker literals, 1UIP
//! conflict analysis with recursive clause minimisation, VSIDS branching
//! with phase saving, Luby restarts, LBD-aware learnt-clause reduction,
//! incremental solving under assumptions with final-conflict (unsat core)
//! extraction, and cooperative cancellation via conflict/wall-clock budgets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve_with`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; a subset of
    /// failed assumptions is available via [`Solver::unsat_core`].
    Unsat,
    /// The budget was exhausted before a verdict.
    Canceled,
}

/// Resource limits for a solve call. The solver checks the budget at every
/// conflict, so cancellation is approximate but cheap.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum number of conflicts (0 = unlimited).
    pub max_conflicts: u64,
    /// Absolute deadline (None = unlimited).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, shared between racing engines: when a
    /// sibling sets it, in-flight solves abort with `Canceled` at the next
    /// conflict or restart boundary.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A wall-clock-only budget.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }

    /// Attaches a shared stop flag (builder style).
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Budget {
        self.stop = Some(stop);
        self
    }

    /// True once cancellation has been requested through the stop flag.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// True when the wall clock has run out or a stop was requested. This is
    /// the check engines use in their outer loops, between solver calls.
    pub fn out_of_time(&self) -> bool {
        if self.stop_requested() {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Quality filter for the learnt-clause export hook: only short, low-LBD
/// ("glue") clauses are worth shipping to another solver — long or
/// high-LBD clauses cost propagation overhead at the importer for little
/// pruning power.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExportPolicy {
    /// Maximum exported clause length (literals).
    pub max_len: usize,
    /// Maximum literal-block distance at learning time.
    pub max_lbd: u32,
}

impl Default for ExportPolicy {
    fn default() -> ExportPolicy {
        ExportPolicy {
            max_len: 8,
            max_lbd: 4,
        }
    }
}

/// Callback invoked at conflict boundaries with each learnt clause that
/// passes the [`ExportPolicy`] filter (literals in solver numbering,
/// asserting literal first) and its LBD.
pub type ExportHook = Box<dyn FnMut(&[Lit], u32) + Send>;

/// Aggregate solver statistics, reset never (cumulative across calls).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub restarts: u64,
    pub learnt_literals: u64,
    pub minimized_literals: u64,
    /// Learnt clauses discarded by database reductions.
    pub reduced_clauses: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch scan can skip the clause.
    blocker: Lit,
}

/// The solver. See the crate-level docs for an end-to-end example.
///
/// ```
/// use csl_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a, b]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
pub struct Solver {
    db: ClauseDb,
    /// Original (problem) clauses, kept for `simplify`.
    original: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable for phase-saving.
    saved_phase: Vec<bool>,
    activity: Vec<f64>,
    reason: Vec<ClauseRef>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: VarHeap,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f64,
    cla_decay: f64,
    /// False once a top-level conflict has been derived; the instance is
    /// permanently unsatisfiable.
    ok: bool,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    analyze_toclear: Vec<Lit>,
    /// Failed-assumption set from the last Unsat answer.
    conflict: Vec<Lit>,
    /// Learnt-clause cap; grows geometrically.
    max_learnts: f64,
    budget: Budget,
    canceled: bool,
    /// Learnt-clause export: policy filter plus the callback. See
    /// [`Solver::set_export_hook`] for the soundness contract.
    export: Option<(ExportPolicy, ExportHook)>,
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            original: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            saved_phase: Vec::new(),
            activity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: VarHeap::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            cla_decay: 0.999,
            ok: true,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            conflict: Vec::new(),
            max_learnts: 0.0,
            budget: Budget::unlimited(),
            canceled: false,
            export: None,
            stats: SolverStats::default(),
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of stored clauses (live original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.db.len()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.saved_phase.push(false);
        self.activity.push(0.0);
        self.reason.push(ClauseRef::UNDEF);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Sets the budget applied to subsequent solve calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs a learnt-clause export hook, called at every conflict
    /// boundary with clauses passing `policy` (this is the publication
    /// point for cross-solver clause sharing).
    ///
    /// # Soundness contract
    ///
    /// Every learnt clause is a logical consequence of the clause database
    /// alone — CDCL conflict analysis never resolves on assumption
    /// literals, so `solve_with` assumptions cannot leak into exports. The
    /// guard the *caller* must honor: only install the hook on solvers
    /// whose clause database is monotonically implied by the instance
    /// being shared (no temporary/activation scaffolding clauses, as used
    /// by IC3-style frame encodings) — clauses derived from scaffolding
    /// are only valid alongside it. The hook is never invoked once the
    /// instance is known unsatisfiable at top level.
    pub fn set_export_hook(
        &mut self,
        policy: ExportPolicy,
        hook: impl FnMut(&[Lit], u32) + Send + 'static,
    ) {
        self.export = Some((policy, Box::new(hook)));
    }

    /// Removes the export hook installed by [`Solver::set_export_hook`].
    pub fn clear_export_hook(&mut self) {
        self.export = None;
    }

    fn export_learnt(&mut self, learnt: &[Lit], lbd: u32) {
        if let Some((policy, hook)) = &mut self.export {
            if self.ok && learnt.len() <= policy.max_len && lbd <= policy.max_lbd {
                hook(learnt, lbd);
            }
        }
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    /// Model value of `l` after a [`SolveResult::Sat`] answer, or the
    /// top-level forced value otherwise. `None` if unassigned.
    pub fn value(&self, l: Lit) -> Option<bool> {
        self.lit_value(l).to_option()
    }

    /// The subset of assumptions responsible for the last `Unsat` answer.
    /// Literals appear in their *failed* polarity (i.e. as passed in).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict
    }

    /// Whether the instance is already known unsatisfiable at top level.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause derived at top level).
    ///
    /// The clause may contain duplicate or tautological literals; they are
    /// normalised away. Must be called with an empty trail above level 0
    /// (i.e. between solve calls), which the solver guarantees internally.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology or satisfied-at-top-level check; drop false literals.
        let mut write = 0;
        for i in 0..c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains l and !l (sorted adjacency)
            }
            match self.lit_value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => {
                    c[write] = l;
                    write += 1;
                }
            }
        }
        c.truncate(write);
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], ClauseRef::UNDEF);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.add(c, false, 0);
                self.attach(cref);
                self.original.push(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let ls = self.db.lits(cref);
            (ls[0], ls[1])
        };
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(!l.is_negative());
        self.reason[v] = from;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            // Temporarily take the watch list to satisfy the borrow checker.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalise so the false literal (!p) is at position 1.
                let first = {
                    let lits = self.db.lits_mut(cref);
                    let false_lit = !p;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                    lits[0]
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.lits(cref).len();
                for k in 2..len {
                    let lk = self.db.lits(cref)[k];
                    if self.lit_value(lk) != LBool::False {
                        let lits = self.db.lits_mut(cref);
                        lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // Copy back the remaining watchers.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            self.saved_phase[v.index()] = !l.is_negative();
            self.reason[v.index()] = ClauseRef::UNDEF;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if self.db.bump_activity(cref, self.cla_inc) > 1e20 {
            self.db.rescale_activities(1e-20);
            self.cla_inc *= 1e-20;
        }
    }

    /// 1UIP conflict analysis. Returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder slot 0
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            debug_assert!(!confl.is_undef());
            if self.db.is_learnt(confl) {
                self.bump_clause(confl);
            }
            let start = if p.is_some() { 1 } else { 0 };
            let nlits = self.db.lits(confl).len();
            for k in start..nlits {
                let q = self.db.lits(confl)[k];
                let qv = q.var();
                if !self.seen[qv.index()] && self.level[qv.index()] > 0 {
                    self.bump_var(qv);
                    self.seen[qv.index()] = true;
                    if self.level[qv.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
        }
        learnt[0] = !p.unwrap();

        // Clause minimisation: drop literals implied by the rest.
        self.analyze_toclear = learnt.clone();
        self.stats.learnt_literals += learnt.len() as u64;
        let mut kept = vec![learnt[0]];
        for &l in &learnt[1..] {
            if self.reason[l.var().index()].is_undef() || !self.lit_redundant(l) {
                kept.push(l);
            }
        }
        self.stats.minimized_literals += (learnt.len() - kept.len()) as u64;
        let mut learnt = kept;
        for l in self.analyze_toclear.drain(..) {
            self.seen[l.var().index()] = false;
        }

        // Find backtrack level: second-highest decision level in the clause.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    /// Checks whether `l`'s negation is implied by the remaining learnt
    /// literals (recursive minimisation with an explicit stack).
    fn lit_redundant(&mut self, l: Lit) -> bool {
        let mut stack = vec![l];
        let mut pushed: Vec<Lit> = Vec::new();
        while let Some(top) = stack.pop() {
            let r = self.reason[top.var().index()];
            debug_assert!(!r.is_undef());
            let n = self.db.lits(r).len();
            for k in 1..n {
                let q = self.db.lits(r)[k];
                let qi = q.var().index();
                if !self.seen[qi] && self.level[qi] > 0 {
                    if self.reason[qi].is_undef() {
                        // Hit a decision: not redundant; undo speculative marks.
                        for pl in pushed {
                            self.seen[pl.var().index()] = false;
                        }
                        return false;
                    }
                    self.seen[qi] = true;
                    pushed.push(q);
                    stack.push(q);
                }
            }
        }
        // Keep speculative marks; they are cleared via analyze_toclear.
        self.analyze_toclear.extend(pushed);
        true
    }

    /// Computes the failed-assumption set when assumption `p` is falsified.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict.clear();
        self.conflict.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index();
            if self.seen[v] {
                let r = self.reason[v];
                if r.is_undef() {
                    debug_assert!(self.level[v] > 0);
                    // A decision above level 0 during assumption handling is
                    // an assumption literal; report it as the caller passed it.
                    self.conflict.push(l);
                } else {
                    let n = self.db.lits(r).len();
                    for k in 1..n {
                        let q = self.db.lits(r)[k];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
                self.seen[v] = false;
            }
        }
        self.seen[p.var().index()] = false;
    }

    fn lbd_of(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v.lit(!self.saved_phase[v.index()]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut learnts = self.db.learnt_refs();
        // Sort worst-first: high LBD then low activity.
        learnts.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap(),
            )
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        for cref in learnts {
            if removed >= target {
                break;
            }
            // Keep glue clauses and clauses that are currently a reason.
            if self.db.lbd(cref) <= 2 || self.is_reason(cref) {
                continue;
            }
            self.detach(cref);
            self.db.delete(cref);
            removed += 1;
        }
        self.stats.reduced_clauses += removed as u64;
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        let l0 = self.db.lits(cref)[0];
        self.lit_value(l0) == LBool::True && self.reason[l0.var().index()] == cref
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let ls = self.db.lits(cref);
            (ls[0], ls[1])
        };
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    /// Removes clauses satisfied at the top level. Call between solve calls
    /// to keep long-lived incremental instances lean.
    pub fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        let mut all: Vec<ClauseRef> = self.original.clone();
        all.extend(self.db.learnt_refs());
        for cref in all {
            if self.db.is_deleted(cref) {
                continue;
            }
            let satisfied = self
                .db
                .lits(cref)
                .iter()
                .any(|&l| self.lit_value(l) == LBool::True);
            if satisfied {
                self.detach(cref);
                self.db.delete(cref);
            }
        }
        self.original.retain(|&c| !self.db.is_deleted(c));
    }

    /// Literal slots freed by clause deletions and not yet compacted — a
    /// rough measure of how much garbage an instance is dragging along.
    /// Long-lived incremental sessions (warm-start pools) use it to decide
    /// when a parked solver is too stale to be worth keeping.
    pub fn wasted_literals(&self) -> usize {
        self.db.wasted()
    }

    fn budget_exhausted(&self) -> bool {
        if self.budget.max_conflicts != 0 && self.stats.conflicts >= self.budget.max_conflicts {
            return true;
        }
        if self.budget.stop_requested() {
            return true;
        }
        if let Some(d) = self.budget.deadline {
            // Checking time on every conflict is fine: Instant::now is cheap
            // relative to conflict analysis.
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Search until a verdict, a restart, or budget exhaustion.
    fn search(&mut self, conflicts_allowed: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.conflict.clear();
                    return Some(SolveResult::Unsat);
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                if learnt.len() == 1 {
                    self.export_learnt(&learnt, 1);
                    self.unchecked_enqueue(learnt[0], ClauseRef::UNDEF);
                } else {
                    let lbd = self.lbd_of(&learnt);
                    self.export_learnt(&learnt, lbd);
                    let asserting = learnt[0];
                    let cref = self.db.add(learnt, true, lbd);
                    self.attach(cref);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, cref);
                }
                self.var_inc /= self.var_decay;
                self.cla_inc /= self.cla_decay;
                if self.budget_exhausted() {
                    self.canceled = true;
                    return Some(SolveResult::Canceled);
                }
            } else {
                if conflicts_here >= conflicts_allowed {
                    // Restart.
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    return None;
                }
                if self.max_learnts > 0.0 && self.db.num_learnt() as f64 >= self.max_learnts {
                    self.reduce_db();
                }
                // Extend the trail with assumptions, one decision level each.
                let mut next = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(p);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(p) => {
                            self.stats.decisions += 1;
                            p
                        }
                        None => return Some(SolveResult::Sat),
                    },
                };
                self.new_decision_level();
                self.unchecked_enqueue(decision, ClauseRef::UNDEF);
            }
        }
    }

    /// Solves without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Unsat`, [`Solver::unsat_core`] holds a subset of `assumptions`
    /// sufficient for unsatisfiability. On `Sat`, the model is read with
    /// [`Solver::value`]. The solver remains usable after any result.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        self.conflict.clear();
        self.canceled = false;
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Entry check: without it, a query that resolves with zero conflicts
        // (pure propagation) would ignore an exhausted budget or a raised
        // stop flag entirely — the in-loop checks only run at conflicts and
        // restarts.
        if self.budget_exhausted() {
            self.canceled = true;
            return SolveResult::Canceled;
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.db.len() as f64 * 0.3).max(4000.0);
        }
        let mut luby_index = 0u32;
        let result = loop {
            let restart_base = 100u64;
            let conflicts_allowed = restart_base * luby(2, luby_index);
            luby_index += 1;
            match self.search(conflicts_allowed, assumptions) {
                Some(r) => break r,
                None => {
                    // Restart: occasionally allow the learnt DB to grow.
                    if luby_index.is_multiple_of(8) {
                        self.max_learnts *= 1.1;
                    }
                    if self.budget_exhausted() {
                        self.canceled = true;
                        break SolveResult::Canceled;
                    }
                }
            }
        };
        if result != SolveResult::Sat {
            self.cancel_until(0);
        }
        // On Sat the trail holds the model and is read via `value`; the next
        // solve or add_clause call cancels back to level 0 on entry.
        result
    }

    /// Prepares for a new solve call after a `Sat` answer (drops the model).
    /// Called automatically by `add_clause` paths that require level 0.
    pub fn reset_to_root(&mut self) {
        self.cancel_until(0);
    }
}

/// The Luby sequence scaled by powers of `y`: 1,1,2,1,1,2,4,...
fn luby(y: u64, mut x: u32) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size as u32;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, n: usize) -> Lit {
        while s.num_vars() <= n {
            s.new_var();
        }
        Var::from_index(n).positive()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        s.add_clause(&[a]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        assert!(s.add_clause(&[a]));
        assert!(!s.add_clause(&[!a]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Solver::new();
        let n = 50;
        for i in 0..n - 1 {
            let a = lit(&mut s, i);
            let b = lit(&mut s, i + 1);
            s.add_clause(&[!a, b]);
        }
        let first = lit(&mut s, 0);
        let last = lit(&mut s, n - 1);
        s.add_clause(&[first]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(last), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
        let mut s = Solver::new();
        let v = |s: &mut Solver, p: usize, h: usize| lit(s, p * 2 + h);
        for p in 0..3 {
            let a = v(&mut s, p, 0);
            let b = v(&mut s, p, 1);
            s.add_clause(&[a, b]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    let a = v(&mut s, p1, h);
                    let b = v(&mut s, p2, h);
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        let b = lit(&mut s, 1);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_with(&[a]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a));
        assert_eq!(s.solve_with(&[!a]), SolveResult::Sat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_is_minimal_here() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        let b = lit(&mut s, 1);
        let c = lit(&mut s, 2);
        s.add_clause(&[!a, !b]);
        // c is irrelevant to the conflict.
        assert_eq!(s.solve_with(&[c, a, b]), SolveResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&a) || core.contains(&b));
        assert!(!core.contains(&c));
    }

    #[test]
    fn incremental_add_after_sat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        let b = lit(&mut s, 1);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.reset_to_root();
        s.add_clause(&[!a]);
        s.add_clause(&[!b]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_cancels() {
        // A hard instance: pigeonhole 8 into 7, with a 10-conflict budget.
        let mut s = Solver::new();
        let np = 8;
        let nh = 7;
        let v = |s: &mut Solver, p: usize, h: usize| lit(s, p * nh + h);
        for p in 0..np {
            let cl: Vec<Lit> = (0..nh).map(|h| v(&mut s, p, h)).collect();
            s.add_clause(&cl);
        }
        for h in 0..nh {
            for p1 in 0..np {
                for p2 in (p1 + 1)..np {
                    let a = v(&mut s, p1, h);
                    let b = v(&mut s, p2, h);
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s.set_budget(Budget {
            max_conflicts: 10,
            ..Budget::unlimited()
        });
        assert_eq!(s.solve(), SolveResult::Canceled);
        // Lifting the budget lets it finish.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stop_flag_cancels_and_clears() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // Same pigeonhole instance, canceled by a pre-set stop flag.
        let mut s = Solver::new();
        let np = 8;
        let nh = 7;
        let v = |s: &mut Solver, p: usize, h: usize| lit(s, p * nh + h);
        for p in 0..np {
            let cl: Vec<Lit> = (0..nh).map(|h| v(&mut s, p, h)).collect();
            s.add_clause(&cl);
        }
        for h in 0..nh {
            for p1 in 0..np {
                for p2 in (p1 + 1)..np {
                    let a = v(&mut s, p1, h);
                    let b = v(&mut s, p2, h);
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(true));
        s.set_budget(Budget::unlimited().with_stop(stop.clone()));
        assert_eq!(s.solve(), SolveResult::Canceled);
        // Clearing the flag lets the same solver finish.
        stop.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn export_hook_ships_implied_clauses() {
        use std::sync::{Arc, Mutex};

        // Pigeonhole 5 into 4: unsatisfiable, guaranteed conflicts.
        let mut s = Solver::new();
        let np = 5;
        let nh = 4;
        let v = |s: &mut Solver, p: usize, h: usize| lit(s, p * nh + h);
        for p in 0..np {
            let cl: Vec<Lit> = (0..nh).map(|h| v(&mut s, p, h)).collect();
            s.add_clause(&cl);
        }
        let mut pairs: Vec<Vec<Lit>> = Vec::new();
        for h in 0..nh {
            for p1 in 0..np {
                for p2 in (p1 + 1)..np {
                    let a = v(&mut s, p1, h);
                    let b = v(&mut s, p2, h);
                    pairs.push(vec![!a, !b]);
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        let exported: Arc<Mutex<Vec<Vec<Lit>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = exported.clone();
        let policy = ExportPolicy {
            max_len: 4,
            max_lbd: 10,
        };
        s.set_export_hook(policy, move |lits, _lbd| {
            sink.lock().unwrap().push(lits.to_vec());
        });
        assert_eq!(s.solve(), SolveResult::Unsat);
        let exported = exported.lock().unwrap();
        assert!(!exported.is_empty(), "unsat search must learn something");
        // Every exported clause respects the policy and is implied by the
        // original formula: a fresh solver on the same clauses plus the
        // negation of the export must be unsatisfiable.
        for clause in exported.iter() {
            assert!(clause.len() <= policy.max_len);
            let mut fresh = Solver::new();
            for p in 0..np {
                let cl: Vec<Lit> = (0..nh).map(|h| v(&mut fresh, p, h)).collect();
                fresh.add_clause(&cl);
            }
            for pair in &pairs {
                // Re-create the vars in the same order for identical ids.
                fresh.add_clause(pair);
            }
            let negated: Vec<Lit> = clause.iter().map(|&l| !l).collect();
            assert_eq!(
                fresh.solve_with(&negated),
                SolveResult::Unsat,
                "exported clause {clause:?} not implied"
            );
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(|i| luby(2, i)).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        let b = lit(&mut s, 1);
        assert!(s.add_clause(&[a, a, b, b]));
        assert!(s.add_clause(&[a, !a])); // tautology: silently accepted
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simplify_keeps_equivalence() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0);
        let b = lit(&mut s, 1);
        let c = lit(&mut s, 2);
        s.add_clause(&[a, b]);
        s.add_clause(&[!b, c]);
        s.add_clause(&[a]); // forces a; first clause becomes satisfied
        s.simplify();
        assert_eq!(s.solve_with(&[b]), SolveResult::Sat);
        assert_eq!(s.value(c), Some(true));
    }
}

//! Max-heap over variables ordered by VSIDS activity.
//!
//! The heap supports `decrease`/`increase` by index (required when a
//! variable's activity is bumped while it sits in the heap), which a plain
//! `BinaryHeap` cannot do. Indices map variables to heap positions.

use crate::lit::Var;

/// Activity-ordered variable heap (a MiniSat `Heap<VarOrderLt>`).
#[derive(Default, Debug)]
pub struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `u32::MAX` if absent.
    position: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

#[allow(dead_code)] // utility surface kept whole; not every method has a caller yet
impl VarHeap {
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Grows the index table to cover `n` variables.
    pub fn grow(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, ABSENT);
        }
    }

    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.position[v.index()] != ABSENT
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `v` (must not already be present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        debug_assert!(!self.contains(v));
        let pos = self.heap.len() as u32;
        self.position[v.index()] = pos;
        self.heap.push(v.0);
        self.sift_up(pos as usize, activity);
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        let pos = self.position[v.index()];
        if pos != ABSENT {
            self.sift_up(pos as usize, activity);
        }
    }

    /// Removes and returns the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.position[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[parent] as usize] >= activity[item as usize] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.position[self.heap[i] as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = item;
        self.position[item as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let item = self.heap[i];
        let len = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            if activity[self.heap[child] as usize] <= activity[item as usize] {
                break;
            }
            self.heap[i] = self.heap[child];
            self.position[self.heap[i] as usize] = i as u32;
            i = child;
        }
        self.heap[i] = item;
        self.position[item as usize] = i as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.position[v as usize], i as u32);
            if i > 0 {
                let parent = self.heap[(i - 1) / 2];
                assert!(activity[parent as usize] >= activity[v as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0, 0.1];
        let mut h = VarHeap::new();
        h.grow(5);
        for i in 0..5 {
            h.insert(Var::from_index(i), &activity);
        }
        h.check_invariants(&activity);
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow(3);
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var::from_index(0), &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow(2);
        let v = Var::from_index(1);
        assert!(!h.contains(v));
        h.insert(v, &activity);
        assert!(h.contains(v));
        h.pop_max(&activity);
        assert!(!h.contains(v));
    }

    #[test]
    fn len_and_empty() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.grow(1);
        assert!(h.is_empty());
        h.insert(Var::from_index(0), &activity);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![1.0, 2.0, 0.5];
        let mut h = VarHeap::new();
        h.grow(3);
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        let top = h.pop_max(&activity).unwrap();
        h.insert(top, &activity);
        assert_eq!(h.len(), 3);
        h.check_invariants(&activity);
    }
}

//! Clause storage.
//!
//! Clauses live in a single arena ([`ClauseDb`]) and are addressed by
//! [`ClauseRef`] indices, which stay valid across garbage collection via a
//! relocation table. Each clause stores a small header (learnt flag, LBD,
//! activity) followed by its literals.

use crate::lit::Lit;

/// A reference to a clause inside the [`ClauseDb`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// Sentinel used for "no reason clause".
    pub const UNDEF: ClauseRef = ClauseRef(u32::MAX);

    #[inline]
    pub fn is_undef(self) -> bool {
        self == ClauseRef::UNDEF
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Literal-block distance at learning time (glue); lower is better.
    lbd: u32,
    activity: f64,
    deleted: bool,
}

/// Arena of clauses with O(1) access and mark-and-sweep garbage collection.
#[derive(Default, Debug)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live learnt clauses (deleted excluded).
    num_learnt: usize,
    /// Literal slots released by [`ClauseDb::delete`] and not yet
    /// compacted: lazy deletion leaves the `Clause` header in place, so
    /// this is the arena's garbage watermark (see [`ClauseDb::wasted`]),
    /// not a property of the live clause set.
    freed: usize,
}

impl ClauseDb {
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Adds a clause and returns its handle.
    ///
    /// # Panics
    /// Panics if `lits` has fewer than 2 literals: unit and empty clauses
    /// are handled at the solver level, never stored.
    pub fn add(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        assert!(lits.len() >= 2, "stored clauses must have >= 2 literals");
        if learnt {
            self.num_learnt += 1;
        }
        let idx = self.clauses.len() as u32;
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            deleted: false,
        });
        ClauseRef(idx)
    }

    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        &self.clauses[cref.0 as usize].lits
    }

    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut Vec<Lit> {
        &mut self.clauses[cref.0 as usize].lits
    }

    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.clauses[cref.0 as usize].learnt
    }

    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.clauses[cref.0 as usize].deleted
    }

    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.clauses[cref.0 as usize].lbd
    }

    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f64 {
        self.clauses[cref.0 as usize].activity
    }

    #[inline]
    pub fn bump_activity(&mut self, cref: ClauseRef, inc: f64) -> f64 {
        let c = &mut self.clauses[cref.0 as usize];
        c.activity += inc;
        c.activity
    }

    /// Rescales all learnt-clause activities by `factor`.
    pub fn rescale_activities(&mut self, factor: f64) {
        for c in &mut self.clauses {
            c.activity *= factor;
        }
    }

    /// Marks a clause as deleted. The memory is reclaimed lazily.
    pub fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        if !c.deleted {
            c.deleted = true;
            if c.learnt {
                self.num_learnt -= 1;
            }
            self.freed += c.lits.len();
            c.lits = Vec::new();
        }
    }

    /// Live learnt clause count.
    #[inline]
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// All live learnt clause handles, for reduction.
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    /// Amount of literal slots freed by deletions since the last compaction.
    #[inline]
    pub fn wasted(&self) -> usize {
        self.freed
    }

    /// Total clause slots (live + dead), a rough memory metric.
    #[inline]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(ids: &[i32]) -> Vec<Lit> {
        ids.iter()
            .map(|&i| {
                let v = Var::from_index(i.unsigned_abs() as usize);
                v.lit(i < 0)
            })
            .collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c = db.add(lits(&[1, -2, 3]), false, 0);
        assert_eq!(db.lits(c).len(), 3);
        assert!(!db.is_learnt(c));
        assert!(!db.is_deleted(c));
    }

    #[test]
    fn learnt_accounting() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2]), true, 2);
        let _b = db.add(lits(&[2, 3]), true, 3);
        assert_eq!(db.num_learnt(), 2);
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
        assert!(db.is_deleted(a));
        // Double delete is a no-op.
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn lbd_and_waste_tracking() {
        let mut db = ClauseDb::new();
        assert_eq!(db.len(), 0);
        let a = db.add(lits(&[1, 2, 3]), true, 5);
        assert_eq!(db.lbd(a), 5);
        assert_eq!(db.wasted(), 0);
        db.delete(a);
        assert_eq!(db.wasted(), 3);
        // Lazy deletion: the slot stays in the arena.
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2]), true, 2);
        db.bump_activity(a, 1.5);
        db.rescale_activities(0.5);
        assert!((db.activity(a) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 2 literals")]
    fn rejects_unit_clause() {
        let mut db = ClauseDb::new();
        db.add(lits(&[1]), false, 0);
    }
}

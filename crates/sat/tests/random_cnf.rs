//! Randomised differential testing of the CDCL solver against a
//! brute-force enumerator, including assumption handling and core checks.

use csl_sat::{Lit, SolveResult, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force satisfiability over `n <= 20` variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>], fixed: &[Lit]) -> bool {
    assert!(num_vars <= 20);
    'outer: for bits in 0u32..(1u32 << num_vars) {
        let val = |l: Lit| -> bool {
            let b = (bits >> l.var().index()) & 1 == 1;
            b != l.is_negative()
        };
        for &f in fixed {
            if !val(f) {
                continue 'outer;
            }
        }
        if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
            return true;
        }
    }
    false
}

fn random_instance(rng: &mut StdRng, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1..=3);
            (0..len)
                .map(|_| {
                    let v = Var::from_index(rng.gen_range(0..num_vars));
                    v.lit(rng.gen_bool(0.5))
                })
                .collect()
        })
        .collect()
}

fn check_model(clauses: &[Vec<Lit>], solver: &Solver) {
    for c in clauses {
        assert!(
            c.iter().any(|&l| solver.value(l) == Some(true)),
            "model does not satisfy clause {c:?}"
        );
    }
}

#[test]
fn random_3sat_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xC5_1CDC1);
    for round in 0..300 {
        let num_vars = rng.gen_range(3..=10);
        // Around the phase-transition density to get a mix of SAT/UNSAT.
        let num_clauses = rng.gen_range(1..=(num_vars * 5));
        let clauses = random_instance(&mut rng, num_vars, num_clauses);
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok &= s.add_clause(c);
        }
        let expected = brute_force_sat(num_vars, &clauses, &[]);
        if !ok {
            assert!(!expected, "round {round}: early unsat but brute force sat");
            continue;
        }
        match s.solve() {
            SolveResult::Sat => {
                assert!(expected, "round {round}: solver SAT, brute force UNSAT");
                check_model(&clauses, &s);
            }
            SolveResult::Unsat => {
                assert!(!expected, "round {round}: solver UNSAT, brute force SAT");
            }
            SolveResult::Canceled => panic!("no budget was set"),
        }
    }
}

#[test]
fn random_instances_with_assumptions() {
    let mut rng = StdRng::seed_from_u64(0xA55);
    for round in 0..200 {
        let num_vars = rng.gen_range(3..=9);
        let num_clauses = rng.gen_range(1..=(num_vars * 4));
        let clauses = random_instance(&mut rng, num_vars, num_clauses);
        let n_assumps = rng.gen_range(0..=3.min(num_vars));
        let mut assumptions: Vec<Lit> = Vec::new();
        let mut used = vec![false; num_vars];
        for _ in 0..n_assumps {
            let vi = rng.gen_range(0..num_vars);
            if used[vi] {
                continue;
            }
            used[vi] = true;
            assumptions.push(Var::from_index(vi).lit(rng.gen_bool(0.5)));
        }
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok &= s.add_clause(c);
        }
        let expected = brute_force_sat(num_vars, &clauses, &assumptions);
        if !ok {
            assert!(!brute_force_sat(num_vars, &clauses, &[]), "round {round}");
            continue;
        }
        match s.solve_with(&assumptions) {
            SolveResult::Sat => {
                assert!(expected, "round {round}: SAT but brute force disagrees");
                check_model(&clauses, &s);
                for &a in &assumptions {
                    assert_eq!(s.value(a), Some(true), "assumption {a:?} not honoured");
                }
            }
            SolveResult::Unsat => {
                assert!(!expected, "round {round}: UNSAT but brute force disagrees");
                // The core must be a subset of the assumptions, and assuming
                // only the core must still be unsatisfiable.
                let core = s.unsat_core().to_vec();
                for &l in &core {
                    assert!(assumptions.contains(&l), "core lit {l:?} not assumed");
                }
                assert!(
                    !brute_force_sat(num_vars, &clauses, &core),
                    "round {round}: unsat core is not actually sufficient"
                );
            }
            SolveResult::Canceled => panic!("no budget was set"),
        }
    }
}

#[test]
fn incremental_solving_is_consistent() {
    // Add clauses in stages, solving between stages; compare each stage
    // against a from-scratch solve.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let num_vars = 8;
        let all_clauses = random_instance(&mut rng, num_vars, 24);
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut added: Vec<Vec<Lit>> = Vec::new();
        let mut alive = true;
        for chunk in all_clauses.chunks(6) {
            for c in chunk {
                alive &= s.add_clause(c);
                added.push(c.clone());
            }
            let expected = brute_force_sat(num_vars, &added, &[]);
            if !alive {
                assert!(!expected);
                break;
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "incremental stage diverged");
        }
    }
}

//! The reference interpreter: MiniISA's architectural semantics.
//!
//! This is the "single-cycle machine" of the paper's baseline scheme
//! (§4.1) in executable form: it retires exactly one instruction per step
//! and is the ground truth both for the contract constraint check's ISA
//! observations and for co-simulating every processor generator
//! ("functional correctness" assumption, §5.4).

use crate::config::IsaConfig;
use crate::inst::{decode, Inst};

/// Architectural exception kinds (BigOoO / BOOM stand-in semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exception {
    /// Load byte-address has the half-word offset bit set (the paper's
    /// `lhu` misalignment attack source, §7.1.4).
    Misaligned,
    /// Load word index beyond the physical memory (the paper's illegal
    /// memory access attack source, §7.1.4).
    Illegal,
}

/// Architectural state: program counter and register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    pub pc: u32,
    pub regs: Vec<u32>,
}

impl ArchState {
    /// Reset state: `pc = 0`, all registers zero.
    pub fn reset(cfg: &IsaConfig) -> ArchState {
        ArchState {
            pc: 0,
            regs: vec![0; cfg.nregs],
        }
    }
}

/// Everything observable about one retired instruction — the raw material
/// from which each contract's `O_ISA` record is projected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// PC of the retired instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Exception raised (suppresses writeback and the memory access).
    pub exception: Option<Exception>,
    /// Register written and its value.
    pub writeback: Option<(u8, u32)>,
    /// Data-memory word index read (loads that do not fault).
    pub mem_word: Option<u32>,
    /// Branch outcome (branches only).
    pub branch_taken: Option<bool>,
    /// Multiplier operands (MUL only; constant-time contract observes them).
    pub mul_operands: Option<(u32, u32)>,
}

/// Resolves a load address to a word index, or faults.
///
/// With `cfg.exceptions` the register value is a byte address: bit 0 is a
/// half-word offset that must be zero, the remaining bits form the word
/// index which must be in range. Without exceptions the value wraps
/// modulo the memory size and never faults.
pub fn resolve_load(cfg: &IsaConfig, reg_value: u32) -> Result<u32, Exception> {
    if cfg.exceptions {
        if reg_value & 1 != 0 {
            return Err(Exception::Misaligned);
        }
        let word = reg_value >> 1;
        if word as usize >= cfg.dmem_size {
            return Err(Exception::Illegal);
        }
        Ok(word)
    } else {
        Ok(reg_value & ((cfg.dmem_size - 1) as u32))
    }
}

/// The word a faulting load *speculatively* touches in an insecure
/// implementation (wrap-around addressing) — used by the BigOoO generator
/// and by tests that predict leakage, never by architectural semantics.
pub fn transient_load_word(cfg: &IsaConfig, reg_value: u32) -> u32 {
    (reg_value >> 1) & ((cfg.dmem_size - 1) as u32)
}

/// Executes one instruction.
///
/// On an exception the instruction has no architectural effect except
/// redirecting the PC to the trap vector (address 0).
pub fn step(cfg: &IsaConfig, state: &mut ArchState, imem: &[u32], dmem: &[u32]) -> StepInfo {
    debug_assert_eq!(imem.len(), cfg.imem_size);
    debug_assert_eq!(dmem.len(), cfg.dmem_size);
    let pc = state.pc & ((cfg.imem_size - 1) as u32);
    let inst = decode(cfg, imem[pc as usize]);
    let xm = cfg.xmask();
    let mut info = StepInfo {
        pc,
        inst,
        exception: None,
        writeback: None,
        mem_word: None,
        branch_taken: None,
        mul_operands: None,
    };
    let mut next_pc = (pc + 1) & ((cfg.imem_size - 1) as u32);
    match inst {
        Inst::Li { rd, imm } => {
            let v = imm & xm;
            state.regs[rd as usize] = v;
            info.writeback = Some((rd, v));
        }
        Inst::Add { rd, rs1, rs2 } => {
            let v = (state.regs[rs1 as usize] + state.regs[rs2 as usize]) & xm;
            state.regs[rd as usize] = v;
            info.writeback = Some((rd, v));
        }
        Inst::Mul { rd, rs1, rs2 } => {
            let a = state.regs[rs1 as usize];
            let b = state.regs[rs2 as usize];
            let v = a.wrapping_mul(b) & xm;
            state.regs[rd as usize] = v;
            info.writeback = Some((rd, v));
            info.mul_operands = Some((a, b));
        }
        Inst::Ld { rd, rs1 } => match resolve_load(cfg, state.regs[rs1 as usize]) {
            Ok(word) => {
                let v = dmem[word as usize] & xm;
                state.regs[rd as usize] = v;
                info.writeback = Some((rd, v));
                info.mem_word = Some(word);
            }
            Err(e) => {
                info.exception = Some(e);
                next_pc = 0; // trap vector
            }
        },
        Inst::Bnz { rs1, target } => {
            let taken = state.regs[rs1 as usize] != 0;
            info.branch_taken = Some(taken);
            if taken {
                next_pc = target & ((cfg.imem_size - 1) as u32);
            }
        }
        Inst::Nop => {}
    }
    state.pc = next_pc;
    info
}

/// Convenience: runs `n` steps and collects the retirement stream.
pub fn run(
    cfg: &IsaConfig,
    state: &mut ArchState,
    imem: &[u32],
    dmem: &[u32],
    n: usize,
) -> Vec<StepInfo> {
    (0..n).map(|_| step(cfg, state, imem, dmem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::encode;

    fn cfg() -> IsaConfig {
        IsaConfig::default()
    }

    fn assemble(cfg: &IsaConfig, prog: &[Inst]) -> Vec<u32> {
        let mut imem = vec![encode(cfg, Inst::Nop); cfg.imem_size];
        for (i, &inst) in prog.iter().enumerate() {
            imem[i] = encode(cfg, inst);
        }
        imem
    }

    #[test]
    fn li_add_ld_sequence() {
        let c = cfg();
        let imem = assemble(
            &c,
            &[
                Inst::Li { rd: 1, imm: 3 },
                Inst::Li { rd: 2, imm: 2 },
                Inst::Add {
                    rd: 3,
                    rs1: 1,
                    rs2: 2,
                },
                Inst::Ld { rd: 0, rs1: 2 },
            ],
        );
        let dmem = vec![7, 8, 9, 10];
        let mut st = ArchState::reset(&c);
        let infos = run(&c, &mut st, &imem, &dmem, 4);
        assert_eq!(st.regs[1], 3);
        assert_eq!(st.regs[2], 2);
        assert_eq!(st.regs[3], 5);
        assert_eq!(st.regs[0], 9); // dmem[2]
        assert_eq!(infos[3].mem_word, Some(2));
        assert_eq!(infos[3].writeback, Some((0, 9)));
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let c = cfg();
        let imem = assemble(
            &c,
            &[
                Inst::Bnz { rs1: 0, target: 5 }, // r0 == 0: not taken
                Inst::Li { rd: 0, imm: 1 },
                Inst::Bnz { rs1: 0, target: 6 }, // r0 == 1: taken
            ],
        );
        let dmem = vec![0; 4];
        let mut st = ArchState::reset(&c);
        let i0 = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i0.branch_taken, Some(false));
        assert_eq!(st.pc, 1);
        let _ = step(&c, &mut st, &imem, &dmem);
        let i2 = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i2.branch_taken, Some(true));
        assert_eq!(st.pc, 6);
    }

    #[test]
    fn pc_wraps_around_imem() {
        let c = cfg();
        let imem = assemble(&c, &[]);
        let dmem = vec![0; 4];
        let mut st = ArchState::reset(&c);
        st.pc = (c.imem_size - 1) as u32;
        step(&c, &mut st, &imem, &dmem);
        assert_eq!(st.pc, 0);
    }

    #[test]
    fn misaligned_load_faults_without_effects() {
        let c = IsaConfig {
            exceptions: true,
            ..cfg()
        };
        let imem = assemble(
            &c,
            &[Inst::Li { rd: 1, imm: 5 }, Inst::Ld { rd: 2, rs1: 1 }],
        );
        let dmem = vec![1, 2, 3, 4];
        let mut st = ArchState::reset(&c);
        step(&c, &mut st, &imem, &dmem);
        let i = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i.exception, Some(Exception::Misaligned));
        assert_eq!(i.writeback, None);
        assert_eq!(i.mem_word, None);
        assert_eq!(st.regs[2], 0, "faulting load must not write");
        assert_eq!(st.pc, 0, "trap vector");
    }

    #[test]
    fn illegal_load_faults() {
        let c = IsaConfig {
            exceptions: true,
            ..cfg()
        };
        // r1 = 12 -> byte addr 12, word 6 >= dmem_size 4 -> illegal.
        let imem = assemble(
            &c,
            &[Inst::Li { rd: 1, imm: 12 }, Inst::Ld { rd: 2, rs1: 1 }],
        );
        let dmem = vec![1, 2, 3, 4];
        let mut st = ArchState::reset(&c);
        step(&c, &mut st, &imem, &dmem);
        let i = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i.exception, Some(Exception::Illegal));
        // The transiently-touched word wraps into the secret region.
        assert_eq!(transient_load_word(&c, 12), 2);
    }

    #[test]
    fn aligned_legal_load_with_exceptions_enabled() {
        let c = IsaConfig {
            exceptions: true,
            ..cfg()
        };
        // r1 = 4 -> word 2 (secret region, but architecturally legal).
        let imem = assemble(
            &c,
            &[Inst::Li { rd: 1, imm: 4 }, Inst::Ld { rd: 2, rs1: 1 }],
        );
        let dmem = vec![1, 2, 3, 4];
        let mut st = ArchState::reset(&c);
        step(&c, &mut st, &imem, &dmem);
        let i = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i.exception, None);
        assert_eq!(i.mem_word, Some(2));
        assert_eq!(st.regs[2], 3);
    }

    #[test]
    fn load_wraps_without_exceptions() {
        let c = cfg();
        let imem = assemble(
            &c,
            &[Inst::Li { rd: 1, imm: 13 }, Inst::Ld { rd: 2, rs1: 1 }],
        );
        let dmem = vec![1, 2, 3, 4];
        let mut st = ArchState::reset(&c);
        step(&c, &mut st, &imem, &dmem);
        let i = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i.mem_word, Some(1)); // 13 mod 4
        assert_eq!(st.regs[2], 2);
    }

    #[test]
    fn mul_records_operands() {
        let c = IsaConfig {
            enable_mul: true,
            ..cfg()
        };
        let imem = assemble(
            &c,
            &[
                Inst::Li { rd: 1, imm: 3 },
                Inst::Li { rd: 2, imm: 5 },
                Inst::Mul {
                    rd: 3,
                    rs1: 1,
                    rs2: 2,
                },
            ],
        );
        let dmem = vec![0; 4];
        let mut st = ArchState::reset(&c);
        run(&c, &mut st, &imem, &dmem, 2);
        let i = step(&c, &mut st, &imem, &dmem);
        assert_eq!(i.mul_operands, Some((3, 5)));
        assert_eq!(st.regs[3], 15);
    }
}

//! A small two-pass assembler for MiniISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; attacker gadget (comments with ';' or '#')
//!         LI   r3, 2
//!         LI   r1, 1
//! loop:   BNZ  r1, loop     ; labels are branch targets
//!         LD   r2, (r3)
//!         LD   r0, (r2)
//!         NOP
//! ```

use std::collections::HashMap;

use crate::config::IsaConfig;
use crate::inst::{encode, Inst};

/// An assembler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles a program into encoded instruction words, NOP-padded to the
/// configured instruction-memory size.
///
/// # Errors
/// Returns [`AsmError`] on syntax errors, unknown mnemonics/labels, field
/// overflow, or programs longer than the instruction memory.
pub fn assemble(cfg: &IsaConfig, source: &str) -> Result<Vec<u32>, AsmError> {
    // Pass 1: strip comments/labels, record label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find([';', '#']) {
            text = &text[..i];
        }
        let mut text = text.trim().to_string();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim().to_string();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(AsmError {
                    line: lineno,
                    message: format!("bad label {label:?}"),
                });
            }
            if labels.insert(label.clone(), lines.len() as u32).is_some() {
                return Err(AsmError {
                    line: lineno,
                    message: format!("duplicate label {label:?}"),
                });
            }
            text = text[colon + 1..].trim().to_string();
        }
        if !text.is_empty() {
            lines.push((lineno, text));
        }
    }
    if lines.len() > cfg.imem_size {
        return Err(AsmError {
            line: lines.last().map(|l| l.0).unwrap_or(0),
            message: format!(
                "program has {} instructions but imem holds {}",
                lines.len(),
                cfg.imem_size
            ),
        });
    }

    // Pass 2: parse each instruction.
    let mut imem = vec![encode(cfg, Inst::Nop); cfg.imem_size];
    for (slot, (lineno, text)) in lines.iter().enumerate() {
        let inst = parse_inst(cfg, text, &labels).map_err(|message| AsmError {
            line: *lineno,
            message,
        })?;
        check_fields(cfg, inst).map_err(|message| AsmError {
            line: *lineno,
            message,
        })?;
        imem[slot] = encode(cfg, inst);
    }
    Ok(imem)
}

fn parse_reg(tok: &str) -> Result<u8, String> {
    let t = tok.trim().trim_start_matches('(').trim_end_matches(')');
    let t = t
        .strip_prefix(['r', 'R'])
        .ok_or(format!("expected register, got {tok:?}"))?;
    t.parse::<u8>()
        .map_err(|e| format!("bad register {tok:?}: {e}"))
}

fn parse_value(tok: &str, labels: &HashMap<String, u32>) -> Result<u32, String> {
    let t = tok.trim();
    if let Some(&addr) = labels.get(t) {
        return Ok(addr);
    }
    if let Some(hex) = t.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16).map_err(|e| format!("bad value {tok:?}: {e}"));
    }
    t.parse::<u32>()
        .map_err(|e| format!("bad value {tok:?}: {e}"))
}

fn parse_inst(cfg: &IsaConfig, text: &str, labels: &HashMap<String, u32>) -> Result<Inst, String> {
    let (mn, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r),
        None => (text, ""),
    };
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let need = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("{mn} expects {n} operands, got {}", ops.len()))
        }
    };
    match mn.to_ascii_uppercase().as_str() {
        "LI" => {
            need(2)?;
            Ok(Inst::Li {
                rd: parse_reg(ops[0])?,
                imm: parse_value(ops[1], labels)?,
            })
        }
        "ADD" => {
            need(3)?;
            Ok(Inst::Add {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
                rs2: parse_reg(ops[2])?,
            })
        }
        "MUL" => {
            need(3)?;
            if !cfg.enable_mul {
                return Err("MUL requires the multiply extension".into());
            }
            Ok(Inst::Mul {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
                rs2: parse_reg(ops[2])?,
            })
        }
        "LD" => {
            need(2)?;
            Ok(Inst::Ld {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
            })
        }
        "BNZ" => {
            need(2)?;
            Ok(Inst::Bnz {
                rs1: parse_reg(ops[0])?,
                target: parse_value(ops[1], labels)?,
            })
        }
        "NOP" => {
            need(0)?;
            Ok(Inst::Nop)
        }
        other => Err(format!("unknown mnemonic {other:?}")),
    }
}

fn check_fields(cfg: &IsaConfig, inst: Inst) -> Result<(), String> {
    let rmax = (cfg.nregs - 1) as u8;
    let check_reg = |r: u8| -> Result<(), String> {
        if r > rmax {
            Err(format!("register r{r} exceeds r{rmax}"))
        } else {
            Ok(())
        }
    };
    match inst {
        Inst::Li { rd, imm } => {
            check_reg(rd)?;
            if u64::from(imm) >= (1 << cfg.imm_bits()) {
                return Err(format!("immediate {imm} too wide"));
            }
        }
        Inst::Add { rd, rs1, rs2 } | Inst::Mul { rd, rs1, rs2 } => {
            check_reg(rd)?;
            check_reg(rs1)?;
            check_reg(rs2)?;
        }
        Inst::Ld { rd, rs1 } => {
            check_reg(rd)?;
            check_reg(rs1)?;
        }
        Inst::Bnz { rs1, target } => {
            check_reg(rs1)?;
            if target as usize >= cfg.imem_size {
                return Err(format!("branch target {target} outside imem"));
            }
        }
        Inst::Nop => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;

    fn cfg() -> IsaConfig {
        IsaConfig::default()
    }

    #[test]
    fn assembles_spectre_gadget() {
        let c = cfg();
        let imem = assemble(
            &c,
            "
            ; spectre v1 gadget for MiniISA
                    LI  r3, 2
                    LI  r1, 1
                    BNZ r1, done
                    LD  r2, (r3)     ; transient: load secret
                    LD  r0, (r2)     ; transient: leak via address
            done:   NOP
            ",
        )
        .unwrap();
        assert_eq!(decode(&c, imem[0]), Inst::Li { rd: 3, imm: 2 });
        assert_eq!(decode(&c, imem[2]), Inst::Bnz { rs1: 1, target: 5 });
        assert_eq!(decode(&c, imem[3]), Inst::Ld { rd: 2, rs1: 3 });
        assert_eq!(decode(&c, imem[5]), Inst::Nop);
        assert_eq!(imem.len(), c.imem_size);
    }

    #[test]
    fn label_forward_and_backward() {
        let c = cfg();
        let imem = assemble(&c, "top: LI r1, 1\nBNZ r1, top").unwrap();
        assert_eq!(decode(&c, imem[1]), Inst::Bnz { rs1: 1, target: 0 });
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let err = assemble(&cfg(), "FOO r1, r2").unwrap_err();
        assert!(err.message.contains("unknown mnemonic"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_register_out_of_range() {
        let err = assemble(&cfg(), "LI r9, 1").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn rejects_overlong_program() {
        let src = "NOP\n".repeat(9);
        let err = assemble(&cfg(), &src).unwrap_err();
        assert!(err.message.contains("imem holds"));
    }

    #[test]
    fn rejects_duplicate_label() {
        let err = assemble(&cfg(), "a: NOP\na: NOP").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn hex_values() {
        let c = cfg();
        let imem = assemble(&c, "LI r1, 0xb").unwrap();
        assert_eq!(decode(&c, imem[0]), Inst::Li { rd: 1, imm: 0xb });
    }

    #[test]
    fn mul_gated_by_extension() {
        assert!(assemble(&cfg(), "MUL r1, r2, r3").is_err());
        let c = IsaConfig {
            enable_mul: true,
            ..cfg()
        };
        assert!(assemble(&c, "MUL r1, r2, r3").is_ok());
    }
}

//! ISA configuration.
//!
//! MiniISA is the paper's SimpleOoO instruction set — "4 customized insts
//! (loadimm, ALU, load, branch)" (Table 1) — made parametric so every
//! structure-size sweep of Figure 2 is a configuration change. The BigOoO
//! (BOOM stand-in) additionally enables a faulting load semantics that
//! reproduces the mis-speculation sources of §7.1.4 (misaligned and
//! illegal accesses), and an optional multiply for constant-time workloads.

/// Parameters shared by the ISA semantics, the reference interpreter and
/// every processor generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsaConfig {
    /// Data width in bits (register and memory word width). 2..=16.
    pub xlen: usize,
    /// Number of architectural registers (power of two).
    pub nregs: usize,
    /// Instruction-memory slots (power of two); the PC wraps around, so a
    /// program is an infinite instruction stream.
    pub imem_size: usize,
    /// Data-memory words (power of two). The upper half is the secret
    /// region of the threat model (§3).
    pub dmem_size: usize,
    /// Enable the faulting-load semantics (BigOoO / BOOM stand-in):
    /// load addresses are byte addresses (bit 0 = half-word offset);
    /// odd addresses fault MISALIGNED, word indices past `dmem_size` fault
    /// ILLEGAL. Without it, load addresses wrap modulo `dmem_size` and
    /// never fault.
    pub exceptions: bool,
    /// Decode opcode 4 as MUL (otherwise it is a NOP).
    pub enable_mul: bool,
}

impl Default for IsaConfig {
    /// The paper's SimpleOoO-scale default: 4-bit data, 4 registers,
    /// 8-slot instruction memory, 4-word data memory, no exceptions.
    fn default() -> Self {
        IsaConfig {
            xlen: 4,
            nregs: 4,
            imem_size: 8,
            dmem_size: 4,
            exceptions: false,
            enable_mul: false,
        }
    }
}

impl IsaConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on out-of-range or non-power-of-two parameters.
    pub fn validate(&self) {
        assert!((2..=16).contains(&self.xlen), "xlen out of range");
        assert!(self.nregs.is_power_of_two() && self.nregs >= 2);
        assert!(self.imem_size.is_power_of_two() && self.imem_size >= 2);
        assert!(self.dmem_size.is_power_of_two() && self.dmem_size >= 2);
        assert!(
            self.reg_bits() <= self.xlen,
            "register index must fit in a data word"
        );
        if self.exceptions {
            assert!(
                self.dmem_size <= 1 << (self.xlen - 1),
                "byte-addressed memory must be reachable from xlen-bit registers"
            );
        }
    }

    /// Bits in a register index.
    pub fn reg_bits(&self) -> usize {
        self.nregs.trailing_zeros() as usize
    }

    /// Bits in a program counter.
    pub fn pc_bits(&self) -> usize {
        self.imem_size.trailing_zeros() as usize
    }

    /// Bits in a data-memory word index.
    pub fn dmem_bits(&self) -> usize {
        self.dmem_size.trailing_zeros() as usize
    }

    /// Bits in the immediate field: must hold a data constant or a branch
    /// target.
    pub fn imm_bits(&self) -> usize {
        self.xlen.max(self.pc_bits())
    }

    /// Total encoded instruction width:
    /// `op(3) | rd | rs1 | imm` (rs2 aliases the low bits of imm).
    pub fn inst_bits(&self) -> usize {
        3 + 2 * self.reg_bits() + self.imm_bits()
    }

    /// Mask for a data word.
    pub fn xmask(&self) -> u32 {
        ((1u64 << self.xlen) - 1) as u32
    }

    /// First data-memory word index of the secret region (upper half).
    pub fn secret_base(&self) -> usize {
        self.dmem_size / 2
    }

    /// Whether a word index lies in the secret region.
    pub fn is_secret_word(&self, word: usize) -> bool {
        word >= self.secret_base() && word < self.dmem_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = IsaConfig::default();
        c.validate();
        assert_eq!(c.reg_bits(), 2);
        assert_eq!(c.pc_bits(), 3);
        assert_eq!(c.imm_bits(), 4);
        assert_eq!(c.inst_bits(), 11);
        assert_eq!(c.xmask(), 0xf);
        assert_eq!(c.secret_base(), 2);
        assert!(c.is_secret_word(2));
        assert!(c.is_secret_word(3));
        assert!(!c.is_secret_word(1));
    }

    #[test]
    fn exceptions_config_validates() {
        let c = IsaConfig {
            exceptions: true,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_xlen() {
        IsaConfig {
            xlen: 1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn wide_config() {
        let c = IsaConfig {
            xlen: 8,
            nregs: 8,
            imem_size: 16,
            dmem_size: 16,
            exceptions: false,
            enable_mul: true,
        };
        c.validate();
        assert_eq!(c.inst_bits(), 3 + 6 + 8);
    }
}

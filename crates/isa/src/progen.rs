//! Random program generation for co-simulation and fuzz testing.
//!
//! Two generators: [`random_program`] draws well-formed instructions with
//! tunable opcode weights (useful for stressing specific pipeline paths),
//! and [`random_imem`] draws raw bit patterns (covering undefined opcodes
//! exactly as the model checker's symbolic instruction memory does).
//!
//! For differential fuzzing, [`random_stimulus`] packages one complete
//! trial — a program plus a public data image and a pair of differing
//! secrets — and [`random_stimulus_batch`] draws N such trials per call,
//! feeding the bit-parallel batch simulator. The batch form consumes the
//! RNG in exactly the per-trial order of repeated scalar calls, so a
//! seed identifies the same stimulus stream regardless of batching.

use rand::Rng;

use crate::config::IsaConfig;
use crate::inst::{encode, Inst};

/// Opcode mix for [`random_program`]. Weights are relative.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    pub li: u32,
    pub add: u32,
    pub ld: u32,
    pub bnz: u32,
    pub mul: u32,
    pub nop: u32,
}

impl Default for OpMix {
    /// A load/branch-heavy mix that exercises speculation paths.
    fn default() -> Self {
        OpMix {
            li: 4,
            add: 3,
            ld: 4,
            bnz: 3,
            mul: 0,
            nop: 1,
        }
    }
}

/// Draws one random well-formed instruction.
pub fn random_inst(cfg: &IsaConfig, mix: &OpMix, rng: &mut impl Rng) -> Inst {
    let mul = if cfg.enable_mul { mix.mul } else { 0 };
    let total = mix.li + mix.add + mix.ld + mix.bnz + mul + mix.nop;
    let mut pick = rng.gen_range(0..total);
    let reg = |rng: &mut dyn rand::RngCore| rng.gen_range(0..cfg.nregs) as u8;
    let mut take = |w: u32| {
        if pick < w {
            true
        } else {
            pick -= w;
            false
        }
    };
    if take(mix.li) {
        Inst::Li {
            rd: reg(rng),
            imm: rng.gen_range(0..(1u32 << cfg.xlen)),
        }
    } else if take(mix.add) {
        Inst::Add {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        }
    } else if take(mix.ld) {
        Inst::Ld {
            rd: reg(rng),
            rs1: reg(rng),
        }
    } else if take(mix.bnz) {
        Inst::Bnz {
            rs1: reg(rng),
            target: rng.gen_range(0..cfg.imem_size) as u32,
        }
    } else if take(mul) {
        Inst::Mul {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        }
    } else {
        Inst::Nop
    }
}

/// A full random program, encoded into an instruction memory image.
pub fn random_program(cfg: &IsaConfig, mix: &OpMix, rng: &mut impl Rng) -> Vec<u32> {
    (0..cfg.imem_size)
        .map(|_| encode(cfg, random_inst(cfg, mix, rng)))
        .collect()
}

/// A fully random instruction memory: raw bits, including undefined
/// opcodes (which decode to NOP).
pub fn random_imem(cfg: &IsaConfig, rng: &mut impl Rng) -> Vec<u32> {
    let mask = ((1u64 << cfg.inst_bits()) - 1) as u32;
    (0..cfg.imem_size)
        .map(|_| rng.gen::<u32>() & mask)
        .collect()
}

/// A random data memory image.
pub fn random_dmem(cfg: &IsaConfig, rng: &mut impl Rng) -> Vec<u32> {
    (0..cfg.dmem_size)
        .map(|_| rng.gen::<u32>() & cfg.xmask())
        .collect()
}

/// One complete differential-fuzzing trial: a program over a shared
/// public data image, plus two secret images that differ in at least one
/// word (the threat model's "secrets differ somewhere" side condition).
/// The public image covers the lower half of the data memory and each
/// secret the upper half, matching [`IsaConfig::secret_base`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StimulusPair {
    /// Instruction memory image.
    pub imem: Vec<u32>,
    /// Public (shared) data memory half.
    pub public: Vec<u32>,
    /// First machine's secret half.
    pub secret_a: Vec<u32>,
    /// Second machine's secret half.
    pub secret_b: Vec<u32>,
}

/// Draws one fuzzing trial. `raw` selects the program generator: `false`
/// draws well-formed instructions from `mix`, `true` draws raw bit
/// patterns (undefined opcodes included). The draw order (program,
/// public, secret A, secret B) is part of the stimulus-stream contract:
/// a fixed seed plus a fixed raw/structured alternation reproduces the
/// identical trial sequence everywhere.
pub fn random_stimulus(
    cfg: &IsaConfig,
    mix: &OpMix,
    rng: &mut impl Rng,
    raw: bool,
) -> StimulusPair {
    let imem = if raw {
        random_imem(cfg, rng)
    } else {
        random_program(cfg, mix, rng)
    };
    let half = cfg.dmem_size / 2;
    let word = |rng: &mut dyn rand::RngCore| rng.gen::<u32>() & cfg.xmask();
    let public: Vec<u32> = (0..half).map(|_| word(rng)).collect();
    let secret_a: Vec<u32> = (0..half).map(|_| word(rng)).collect();
    let mut secret_b: Vec<u32> = (0..half).map(|_| word(rng)).collect();
    if secret_a == secret_b {
        // Enforce the threat model's "differ in at least one location".
        secret_b[0] ^= 1;
    }
    StimulusPair {
        imem,
        public,
        secret_a,
        secret_b,
    }
}

/// Which corpus mutation [`mutate_stimulus`] applied — returned so
/// campaigns can account for mutator effectiveness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// A contiguous instruction range copied from a donor program.
    Splice,
    /// One bit flipped in an instruction word or a secret word.
    Flip,
    /// One instruction repeated over the following slots, stretching
    /// the window a mispredicted branch or delayed load keeps open.
    Stretch,
}

/// Derives a new trial from a corpus entry (Revizor-style mutation
/// rather than fresh random generation). `base` supplies the starting
/// stimulus, `donor` the foreign material for splicing — both normally
/// come from the corpus. Exactly one mutation is applied per call, and
/// the RNG draw count depends only on the drawn mutation kind, so a
/// fixed seed reproduces the identical mutant stream.
///
/// Invariants preserved: instruction words stay within
/// [`IsaConfig::inst_bits`], data words within [`IsaConfig::xmask`],
/// and the two secrets always differ somewhere.
pub fn mutate_stimulus(
    cfg: &IsaConfig,
    rng: &mut impl Rng,
    base: &StimulusPair,
    donor: &StimulusPair,
) -> (StimulusPair, Mutation) {
    let mut out = base.clone();
    let kind = match rng.gen_range(0..3u32) {
        0 => {
            // Splice: copy a contiguous imem range from the donor.
            let start = rng.gen_range(0..cfg.imem_size);
            let len = rng.gen_range(1..=cfg.imem_size - start);
            out.imem[start..start + len].copy_from_slice(&donor.imem[start..start + len]);
            Mutation::Splice
        }
        1 => {
            // Flip one bit of an instruction word (operand/opcode) or
            // of a secret word.
            match rng.gen_range(0..3u32) {
                0 => {
                    let w = rng.gen_range(0..cfg.imem_size);
                    let b = rng.gen_range(0..cfg.inst_bits());
                    out.imem[w] ^= 1 << b;
                }
                1 => {
                    let w = rng.gen_range(0..out.secret_a.len());
                    let b = rng.gen_range(0..cfg.xlen);
                    out.secret_a[w] ^= 1 << b;
                }
                _ => {
                    let w = rng.gen_range(0..out.secret_b.len());
                    let b = rng.gen_range(0..cfg.xlen);
                    out.secret_b[w] ^= 1 << b;
                }
            }
            Mutation::Flip
        }
        _ => {
            // Stretch: repeat one instruction over the following slots,
            // widening the speculation window it opens.
            let at = rng.gen_range(0..cfg.imem_size);
            let reps = rng.gen_range(1..=(cfg.imem_size - at).max(1));
            let word = out.imem[at];
            for slot in out.imem[at..(at + reps).min(cfg.imem_size)].iter_mut() {
                *slot = word;
            }
            Mutation::Stretch
        }
    };
    if out.secret_a == out.secret_b {
        // A flip can re-converge the secrets; restore the threat
        // model's "differ in at least one location".
        out.secret_b[0] ^= 1;
    }
    (out, kind)
}

/// Draws `n` fuzzing trials, alternating structured and raw programs
/// (even index structured, odd raw — the mix the scalar fuzzer has
/// always used). Consuming trial `i` of the batch advances the RNG
/// exactly as `i + 1` scalar [`random_stimulus`] calls would, so batched
/// and scalar campaigns with the same seed see the same trials as long
/// as every batch but the last has even length.
pub fn random_stimulus_batch(
    cfg: &IsaConfig,
    mix: &OpMix,
    rng: &mut impl Rng,
    n: usize,
) -> Vec<StimulusPair> {
    (0..n)
        .map(|i| random_stimulus(cfg, mix, rng, i % 2 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn programs_fit_and_decode() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let imem = random_program(&cfg, &OpMix::default(), &mut rng);
            assert_eq!(imem.len(), cfg.imem_size);
            for &w in &imem {
                let _ = decode(&cfg, w);
            }
        }
    }

    #[test]
    fn raw_imem_within_width() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let imem = random_imem(&cfg, &mut rng);
        for &w in &imem {
            assert!(w < (1 << cfg.inst_bits()));
        }
    }

    #[test]
    fn mul_absent_unless_enabled() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mix = OpMix {
            mul: 100,
            ..OpMix::default()
        };
        for _ in 0..100 {
            let inst = random_inst(&cfg, &mix, &mut rng);
            assert!(!matches!(inst, Inst::Mul { .. }));
        }
    }

    #[test]
    fn stimulus_batch_matches_scalar_stream() {
        let cfg = IsaConfig::default();
        let mix = OpMix::default();
        let mut batch_rng = StdRng::seed_from_u64(11);
        let mut scalar_rng = StdRng::seed_from_u64(11);
        let batch = random_stimulus_batch(&cfg, &mix, &mut batch_rng, 6);
        for (i, pair) in batch.iter().enumerate() {
            let scalar = random_stimulus(&cfg, &mix, &mut scalar_rng, i % 2 == 1);
            assert_eq!(pair, &scalar, "trial {i} diverged from the scalar stream");
        }
    }

    #[test]
    fn stimulus_secrets_always_differ_and_fit() {
        let cfg = IsaConfig::default();
        let mix = OpMix::default();
        let mut rng = StdRng::seed_from_u64(5);
        for pair in random_stimulus_batch(&cfg, &mix, &mut rng, 50) {
            assert_ne!(pair.secret_a, pair.secret_b);
            assert_eq!(pair.public.len(), cfg.dmem_size / 2);
            assert_eq!(pair.secret_a.len(), cfg.dmem_size / 2);
            assert_eq!(pair.imem.len(), cfg.imem_size);
            for &v in pair
                .public
                .iter()
                .chain(&pair.secret_a)
                .chain(&pair.secret_b)
            {
                assert!(v <= cfg.xmask());
            }
        }
    }

    #[test]
    fn mutants_preserve_stimulus_invariants() {
        let cfg = IsaConfig::default();
        let mix = OpMix::default();
        let mut rng = StdRng::seed_from_u64(77);
        let base = random_stimulus(&cfg, &mix, &mut rng, false);
        let donor = random_stimulus(&cfg, &mix, &mut rng, true);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let (m, kind) = mutate_stimulus(&cfg, &mut rng, &base, &donor);
            seen[match kind {
                Mutation::Splice => 0,
                Mutation::Flip => 1,
                Mutation::Stretch => 2,
            }] = true;
            assert_eq!(m.imem.len(), cfg.imem_size);
            assert_ne!(m.secret_a, m.secret_b, "mutant secrets converged");
            for &w in &m.imem {
                assert!(w < (1 << cfg.inst_bits()), "imem word out of width");
            }
            for &v in m.public.iter().chain(&m.secret_a).chain(&m.secret_b) {
                assert!(v <= cfg.xmask(), "data word out of width");
            }
        }
        assert_eq!(seen, [true; 3], "all three mutators must be reachable");
    }

    #[test]
    fn mutant_stream_is_seed_deterministic() {
        let cfg = IsaConfig::default();
        let mix = OpMix::default();
        let mut setup = StdRng::seed_from_u64(78);
        let base = random_stimulus(&cfg, &mix, &mut setup, false);
        let donor = random_stimulus(&cfg, &mix, &mut setup, false);
        let mut a = StdRng::seed_from_u64(79);
        let mut b = StdRng::seed_from_u64(79);
        for i in 0..50 {
            let ma = mutate_stimulus(&cfg, &mut a, &base, &donor);
            let mb = mutate_stimulus(&cfg, &mut b, &base, &donor);
            assert_eq!(ma, mb, "mutant {i} diverged under the same seed");
        }
    }

    #[test]
    fn dmem_respects_xlen() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        for v in random_dmem(&cfg, &mut rng) {
            assert!(v <= cfg.xmask());
        }
    }
}

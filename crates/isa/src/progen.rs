//! Random program generation for co-simulation and fuzz testing.
//!
//! Two generators: [`random_program`] draws well-formed instructions with
//! tunable opcode weights (useful for stressing specific pipeline paths),
//! and [`random_imem`] draws raw bit patterns (covering undefined opcodes
//! exactly as the model checker's symbolic instruction memory does).

use rand::Rng;

use crate::config::IsaConfig;
use crate::inst::{encode, Inst};

/// Opcode mix for [`random_program`]. Weights are relative.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    pub li: u32,
    pub add: u32,
    pub ld: u32,
    pub bnz: u32,
    pub mul: u32,
    pub nop: u32,
}

impl Default for OpMix {
    /// A load/branch-heavy mix that exercises speculation paths.
    fn default() -> Self {
        OpMix {
            li: 4,
            add: 3,
            ld: 4,
            bnz: 3,
            mul: 0,
            nop: 1,
        }
    }
}

/// Draws one random well-formed instruction.
pub fn random_inst(cfg: &IsaConfig, mix: &OpMix, rng: &mut impl Rng) -> Inst {
    let mul = if cfg.enable_mul { mix.mul } else { 0 };
    let total = mix.li + mix.add + mix.ld + mix.bnz + mul + mix.nop;
    let mut pick = rng.gen_range(0..total);
    let reg = |rng: &mut dyn rand::RngCore| rng.gen_range(0..cfg.nregs) as u8;
    let mut take = |w: u32| {
        if pick < w {
            true
        } else {
            pick -= w;
            false
        }
    };
    if take(mix.li) {
        Inst::Li {
            rd: reg(rng),
            imm: rng.gen_range(0..(1u32 << cfg.xlen)),
        }
    } else if take(mix.add) {
        Inst::Add {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        }
    } else if take(mix.ld) {
        Inst::Ld {
            rd: reg(rng),
            rs1: reg(rng),
        }
    } else if take(mix.bnz) {
        Inst::Bnz {
            rs1: reg(rng),
            target: rng.gen_range(0..cfg.imem_size) as u32,
        }
    } else if take(mul) {
        Inst::Mul {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        }
    } else {
        Inst::Nop
    }
}

/// A full random program, encoded into an instruction memory image.
pub fn random_program(cfg: &IsaConfig, mix: &OpMix, rng: &mut impl Rng) -> Vec<u32> {
    (0..cfg.imem_size)
        .map(|_| encode(cfg, random_inst(cfg, mix, rng)))
        .collect()
}

/// A fully random instruction memory: raw bits, including undefined
/// opcodes (which decode to NOP).
pub fn random_imem(cfg: &IsaConfig, rng: &mut impl Rng) -> Vec<u32> {
    let mask = ((1u64 << cfg.inst_bits()) - 1) as u32;
    (0..cfg.imem_size)
        .map(|_| rng.gen::<u32>() & mask)
        .collect()
}

/// A random data memory image.
pub fn random_dmem(cfg: &IsaConfig, rng: &mut impl Rng) -> Vec<u32> {
    (0..cfg.dmem_size)
        .map(|_| rng.gen::<u32>() & cfg.xmask())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn programs_fit_and_decode() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let imem = random_program(&cfg, &OpMix::default(), &mut rng);
            assert_eq!(imem.len(), cfg.imem_size);
            for &w in &imem {
                let _ = decode(&cfg, w);
            }
        }
    }

    #[test]
    fn raw_imem_within_width() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let imem = random_imem(&cfg, &mut rng);
        for &w in &imem {
            assert!(w < (1 << cfg.inst_bits()));
        }
    }

    #[test]
    fn mul_absent_unless_enabled() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mix = OpMix {
            mul: 100,
            ..OpMix::default()
        };
        for _ in 0..100 {
            let inst = random_inst(&cfg, &mix, &mut rng);
            assert!(!matches!(inst, Inst::Mul { .. }));
        }
    }

    #[test]
    fn dmem_respects_xlen() {
        let cfg = IsaConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        for v in random_dmem(&cfg, &mut rng) {
            assert!(v <= cfg.xmask());
        }
    }
}

//! `csl-isa` — the MiniISA instruction set: encoding, assembler, and the
//! single-cycle reference interpreter.
//!
//! MiniISA is the reproduction of the paper's in-house SimpleOoO ISA
//! (Table 1: "4 customized insts — loadimm, ALU, load, branch"), extended
//! with the faulting-load semantics needed to reproduce the BOOM
//! exception attacks of §7.1.4 and an optional multiply for the
//! constant-time contract's FU-operand observations.
//!
//! The [`interp`] module is the architectural ground truth: the contract
//! constraint check's ISA observations are projections of its
//! [`interp::StepInfo`] records, and every processor generator in
//! `csl-cpu` is co-simulated against it.
//!
//! # Example
//!
//! ```
//! use csl_isa::{assemble, ArchState, IsaConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = IsaConfig::default();
//! let imem = assemble(&cfg, "
//!         LI  r1, 2
//!         LD  r2, (r1)      ; r2 = dmem[2] (secret region)
//! loop:   BNZ r1, loop
//! ")?;
//! let dmem = vec![0, 0, 9, 0];
//! let mut st = ArchState::reset(&cfg);
//! csl_isa::interp::run(&cfg, &mut st, &imem, &dmem, 2);
//! assert_eq!(st.regs[2], 9);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod config;
pub mod inst;
pub mod interp;
pub mod progen;

pub use asm::{assemble, AsmError};
pub use config::IsaConfig;
pub use inst::{decode, encode, mnemonic, opcode, Inst};
pub use interp::{resolve_load, transient_load_word, ArchState, Exception, StepInfo};
pub use progen::{
    mutate_stimulus, random_dmem, random_imem, random_inst, random_program, random_stimulus,
    random_stimulus_batch, Mutation, OpMix, StimulusPair,
};

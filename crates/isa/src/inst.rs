//! Instruction set, encoding and decoding.
//!
//! MiniISA has four base instructions (exactly the paper's SimpleOoO set)
//! plus an optional multiply:
//!
//! | op | mnemonic | semantics                                              |
//! |----|----------|--------------------------------------------------------|
//! | 0  | `LI`     | `r[rd] = imm`                                          |
//! | 1  | `ADD`    | `r[rd] = r[rs1] + r[rs2]` (mod 2^xlen)                 |
//! | 2  | `LD`     | `r[rd] = dmem[r[rs1]]` (addressing mode per config)    |
//! | 3  | `BNZ`    | `if r[rs1] != 0 { pc = imm } else { pc += 1 }`         |
//! | 4  | `MUL`    | `r[rd] = r[rs1] * r[rs2]` (if enabled, else NOP)       |
//! | 5-7| `NOP`    | no effect but advancing the PC                          |
//!
//! Every bit pattern decodes to *some* instruction (undefined opcodes are
//! NOPs), which matters because model checking explores a fully symbolic
//! instruction memory.
//!
//! Encoding, LSB first: `imm | rs1 | rd | op(3)`, with `rs2` aliased to the
//! low bits of `imm` for register-register ops.

use crate::config::IsaConfig;

/// A decoded instruction. Register and immediate fields are already
/// truncated to the configured widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Load immediate: `r[rd] = imm`.
    Li { rd: u8, imm: u32 },
    /// Register add: `r[rd] = r[rs1] + r[rs2]`.
    Add { rd: u8, rs1: u8, rs2: u8 },
    /// Memory load: `r[rd] = dmem[addr(r[rs1])]`.
    Ld { rd: u8, rs1: u8 },
    /// Branch if non-zero to an absolute target.
    Bnz { rs1: u8, target: u32 },
    /// Register multiply (optional extension).
    Mul { rd: u8, rs1: u8, rs2: u8 },
    /// No operation (undefined opcodes).
    Nop,
}

/// Numeric opcodes (the `op` field values).
pub mod opcode {
    pub const LI: u32 = 0;
    pub const ADD: u32 = 1;
    pub const LD: u32 = 2;
    pub const BNZ: u32 = 3;
    pub const MUL: u32 = 4;
}

impl Inst {
    /// The destination register, if the instruction writes one.
    pub fn rd(&self) -> Option<u8> {
        match *self {
            Inst::Li { rd, .. }
            | Inst::Add { rd, .. }
            | Inst::Ld { rd, .. }
            | Inst::Mul { rd, .. } => Some(rd),
            Inst::Bnz { .. } | Inst::Nop => None,
        }
    }

    /// True for memory loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Ld { .. })
    }

    /// True for branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Bnz { .. })
    }
}

/// Encodes an instruction to its bit pattern.
///
/// # Panics
/// Panics if a field exceeds its configured width, or if `MUL` is encoded
/// for a configuration without the multiply extension.
pub fn encode(cfg: &IsaConfig, inst: Inst) -> u32 {
    let rb = cfg.reg_bits();
    let ib = cfg.imm_bits();
    let rmask = (1u32 << rb) - 1;
    let imask = ((1u64 << ib) - 1) as u32;
    let pack = |op: u32, rd: u32, rs1: u32, imm: u32| -> u32 {
        assert!(
            rd <= rmask && rs1 <= rmask && imm <= imask,
            "field overflow"
        );
        imm | (rs1 << ib) | (rd << (ib + rb)) | (op << (ib + 2 * rb))
    };
    match inst {
        Inst::Li { rd, imm } => pack(opcode::LI, rd as u32, 0, imm),
        Inst::Add { rd, rs1, rs2 } => pack(opcode::ADD, rd as u32, rs1 as u32, rs2 as u32),
        Inst::Ld { rd, rs1 } => pack(opcode::LD, rd as u32, rs1 as u32, 0),
        Inst::Bnz { rs1, target } => pack(opcode::BNZ, 0, rs1 as u32, target),
        Inst::Mul { rd, rs1, rs2 } => {
            assert!(cfg.enable_mul, "MUL encoded without the multiply extension");
            pack(opcode::MUL, rd as u32, rs1 as u32, rs2 as u32)
        }
        Inst::Nop => pack(7, 0, 0, 0),
    }
}

/// Decodes a bit pattern. Never fails: undefined opcodes become [`Inst::Nop`].
pub fn decode(cfg: &IsaConfig, bits: u32) -> Inst {
    let rb = cfg.reg_bits();
    let ib = cfg.imm_bits();
    let rmask = (1u32 << rb) - 1;
    let imask = ((1u64 << ib) - 1) as u32;
    let imm = bits & imask;
    let rs1 = ((bits >> ib) & rmask) as u8;
    let rd = ((bits >> (ib + rb)) & rmask) as u8;
    let op = (bits >> (ib + 2 * rb)) & 0b111;
    let rs2 = (imm & rmask) as u8;
    match op {
        opcode::LI => Inst::Li {
            rd,
            imm: imm & cfg.xmask(),
        },
        opcode::ADD => Inst::Add { rd, rs1, rs2 },
        opcode::LD => Inst::Ld { rd, rs1 },
        opcode::BNZ => Inst::Bnz {
            rs1,
            target: imm & ((cfg.imem_size - 1) as u32),
        },
        opcode::MUL if cfg.enable_mul => Inst::Mul { rd, rs1, rs2 },
        _ => Inst::Nop,
    }
}

/// Renders an instruction in assembler syntax.
pub fn mnemonic(inst: Inst) -> String {
    match inst {
        Inst::Li { rd, imm } => format!("LI r{rd}, {imm}"),
        Inst::Add { rd, rs1, rs2 } => format!("ADD r{rd}, r{rs1}, r{rs2}"),
        Inst::Ld { rd, rs1 } => format!("LD r{rd}, (r{rs1})"),
        Inst::Bnz { rs1, target } => format!("BNZ r{rs1}, {target}"),
        Inst::Mul { rd, rs1, rs2 } => format!("MUL r{rd}, r{rs1}, r{rs2}"),
        Inst::Nop => "NOP".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IsaConfig {
        IsaConfig::default()
    }

    #[test]
    fn roundtrip_all_base_instructions() {
        let c = cfg();
        let cases = [
            Inst::Li { rd: 3, imm: 9 },
            Inst::Add {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Inst::Ld { rd: 0, rs1: 3 },
            Inst::Bnz { rs1: 2, target: 5 },
        ];
        for inst in cases {
            assert_eq!(decode(&c, encode(&c, inst)), inst, "{inst:?}");
        }
    }

    #[test]
    fn mul_requires_extension() {
        let mut c = cfg();
        c.enable_mul = true;
        let m = Inst::Mul {
            rd: 1,
            rs1: 2,
            rs2: 3,
        };
        assert_eq!(decode(&c, encode(&c, m)), m);
        // Without the extension the same bits decode to NOP.
        let bits = encode(&c, m);
        c.enable_mul = false;
        assert_eq!(decode(&c, bits), Inst::Nop);
    }

    #[test]
    #[should_panic(expected = "multiply extension")]
    fn mul_encode_rejected_without_extension() {
        encode(
            &cfg(),
            Inst::Mul {
                rd: 0,
                rs1: 0,
                rs2: 0,
            },
        );
    }

    #[test]
    fn every_bit_pattern_decodes() {
        let c = cfg();
        for bits in 0..(1u32 << c.inst_bits()) {
            let _ = decode(&c, bits); // must not panic
        }
    }

    #[test]
    fn undefined_opcodes_are_nops() {
        let c = cfg();
        for op in 4..8u32 {
            let bits = op << (c.imm_bits() + 2 * c.reg_bits());
            assert_eq!(decode(&c, bits), Inst::Nop);
        }
    }

    #[test]
    #[should_panic(expected = "field overflow")]
    fn rejects_oversized_field() {
        encode(&cfg(), Inst::Li { rd: 4, imm: 0 });
    }

    #[test]
    fn mnemonics() {
        assert_eq!(mnemonic(Inst::Ld { rd: 2, rs1: 1 }), "LD r2, (r1)");
        assert_eq!(mnemonic(Inst::Nop), "NOP");
    }
}

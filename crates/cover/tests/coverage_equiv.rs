//! Property tests for the coverage primitives: the 64-way batch
//! accumulator must agree lane-for-lane with a scalar replay of the same
//! trials, and the corpus a campaign evolves from those records must be
//! byte-identical regardless of execution width — the invariants the
//! coverage-guided fuzzer's determinism rests on.

use csl_cover::{BatchCoverage, Corpus, CorpusEntry, CoverageMap, ScalarCoverage};
use csl_hdl::{Aig, Design, Init};
use csl_isa::progen::StimulusPair;
use csl_mc::{BatchSim, BatchState, Sim, SimState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized sequential netlist: `n` single-bit registers whose next
/// functions mix register feedback, cross-register taps and free inputs
/// through a seed-chosen gate — enough structural variety that toggle
/// patterns differ per lane and per seed.
fn random_design(seed: u64, n: usize) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new("rand");
    let regs: Vec<_> = (0..n)
        .map(|i| {
            let init = if rng.gen_bool(0.5) {
                Init::Symbolic
            } else {
                Init::Zero
            };
            d.reg(&format!("r{i}"), 1, init)
        })
        .collect();
    let inputs: Vec<_> = (0..3).map(|i| d.input_bit(&format!("in{i}"))).collect();
    for (i, r) in regs.iter().enumerate() {
        let a = regs[rng.gen_range(0..n)].q().bit(0);
        let b = regs[rng.gen_range(0..n)].q().bit(0);
        let c = inputs[rng.gen_range(0..inputs.len())];
        let ab = match rng.gen_range(0..3u32) {
            0 => d.and_bit(a, b),
            1 => d.xor_bit(a, b),
            _ => d.or_bit(a, b),
        };
        let next = d.xor_bit(ab, c);
        let next = if i % 3 == 0 {
            d.xor_bit(next, r.q().bit(0))
        } else {
            next
        };
        let w = csl_hdl::Word::from_bits(vec![next]);
        d.set_next(r, w);
    }
    d.finish()
}

/// Drives `cycles` steps of the batch simulator and, independently, a
/// scalar replay of each lane, with a per-lane alive cutoff; asserts the
/// extracted [`csl_cover::TrialCoverage`] records match exactly.
fn check_equivalence(seed: u64) {
    let n = 8 + (seed as usize % 9);
    let aig = random_design(seed, n);
    let latches = aig.latches().len();
    let cycles = 6 + (seed as usize % 5);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);

    // Random per-lane symbolic-latch reset and per-cycle input words.
    let resets: Vec<u64> = (0..latches).map(|_| rng.gen()).collect();
    let input_words: Vec<[u64; 3]> = (0..cycles)
        .map(|_| [rng.gen(), rng.gen(), rng.gen()])
        .collect();
    // Each lane dies (leaves the alive mask) at its own cutoff cycle,
    // exercising the masking the engine applies on assume violations.
    let cutoffs: Vec<usize> = (0..64).map(|_| rng.gen_range(1..=cycles)).collect();

    // Batch pass.
    let mut sim = BatchSim::new(&aig);
    let mut state = BatchState::reset_with(&aig, |i, _| resets[i]);
    let mut cov = BatchCoverage::new(latches);
    for (cycle, words) in input_words.iter().enumerate() {
        let alive =
            cutoffs.iter().enumerate().fold(
                0u64,
                |m, (l, &c)| {
                    if cycle < c {
                        m | (1u64 << l)
                    } else {
                        m
                    }
                },
            );
        let r = sim.step_masks(&state, |i, _| words[i % 3]);
        cov.step(&state, &r.next, alive);
        state = r.next;
    }

    // Scalar replay, one lane at a time.
    let mut scalar_sim = Sim::new(&aig);
    for (l, &cutoff) in cutoffs.iter().enumerate() {
        let mut s = SimState::reset_with(&aig, |i, _| (resets[i] >> l) & 1 == 1);
        let mut sc = ScalarCoverage::new(latches);
        for words in input_words.iter().take(cutoff) {
            let r = scalar_sim.step(&s, |i, _| (words[i % 3] >> l) & 1 == 1);
            sc.step(&s, &r.next);
            s = r.next;
        }
        let batch_trial = cov.lane(l);
        let scalar_trial = sc.finish();
        assert_eq!(
            batch_trial, scalar_trial,
            "seed {seed} lane {l}: batch and scalar coverage diverge"
        );
        assert_eq!(batch_trial.signature(), scalar_trial.signature());
    }
}

#[test]
fn batch_coverage_matches_scalar_replay_lane_for_lane() {
    for seed in 0..24u64 {
        check_equivalence(seed);
    }
}

/// Evolves a corpus twice from the same trial stream — once from the
/// batch accumulator's records, once from the scalar replay's — and
/// asserts the two corpora serialize to byte-identical files. Ingestion
/// decisions flow entirely through coverage signatures, so equal records
/// must mean equal corpus bytes.
#[test]
fn corpus_evolution_is_byte_identical_across_widths() {
    let seed = 42u64;
    let n = 10;
    let aig = random_design(seed, n);
    let latches = aig.latches().len();
    let cycles = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let resets: Vec<u64> = (0..latches).map(|_| rng.gen()).collect();
    let input_words: Vec<[u64; 3]> = (0..cycles)
        .map(|_| [rng.gen(), rng.gen(), rng.gen()])
        .collect();

    let stim = |l: usize| StimulusPair {
        imem: vec![l as u32; 4],
        public: vec![1],
        secret_a: vec![2],
        secret_b: vec![3],
    };
    let evolve = |trials: Vec<csl_cover::TrialCoverage>| -> Corpus {
        let mut map = CoverageMap::new(latches);
        let mut corpus = Corpus::with_capacity(16);
        for (l, t) in trials.iter().enumerate() {
            if map.ingest(t) {
                corpus.push(CorpusEntry {
                    stim: stim(l),
                    signature: t.signature(),
                    depth: t.depth,
                    heat: t.count() as u32,
                    frontier: vec![(0, true)],
                });
            }
        }
        corpus
    };

    let mut sim = BatchSim::new(&aig);
    let mut state = BatchState::reset_with(&aig, |i, _| resets[i]);
    let mut cov = BatchCoverage::new(latches);
    for words in &input_words {
        let r = sim.step_masks(&state, |i, _| words[i % 3]);
        cov.step(&state, &r.next, !0);
        state = r.next;
    }
    let batch_trials: Vec<_> = (0..64).map(|l| cov.lane(l)).collect();

    let mut scalar_sim = Sim::new(&aig);
    let scalar_trials: Vec<_> = (0..64usize)
        .map(|l| {
            let mut s = SimState::reset_with(&aig, |i, _| (resets[i] >> l) & 1 == 1);
            let mut sc = ScalarCoverage::new(latches);
            for words in &input_words {
                let r = scalar_sim.step(&s, |i, _| (words[i % 3] >> l) & 1 == 1);
                sc.step(&s, &r.next);
                s = r.next;
            }
            sc.finish()
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("csl-cover-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (pa, pb) = (dir.join("batch.corpus"), dir.join("scalar.corpus"));
    evolve(batch_trials).save(&pa).unwrap();
    evolve(scalar_trials).save(&pb).unwrap();
    let (a, b) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    assert!(!a.is_empty());
    assert_eq!(a, b, "corpus bytes must not depend on execution width");
    std::fs::remove_dir_all(&dir).ok();
}

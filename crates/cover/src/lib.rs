//! `csl-cover` — coverage-guided stimulus generation for the fuzzing
//! backend, closing the fuzz↔formal loop.
//!
//! The blind fuzzer (`csl_core::fuzz`) draws every trial fresh from the
//! RNG; the paper's §9 contrast class (Revizor, SpecDoctor) instead
//! *evolves* stimuli toward unexplored microarchitectural state. This
//! crate supplies the three pieces that upgrade the backend:
//!
//! * **Coverage tracking** — [`BatchCoverage`] accumulates per-latch
//!   toggle bitmaps over the 64-lane [`csl_mc::BatchSim`] words (the hot
//!   loop stays mask-only: one XOR + OR per latch per cycle), and
//!   [`CoverageMap`] folds finished trials into a campaign-global view
//!   with stable FNV-1a signatures for dedup.
//! * **Corpus** — a seed-deterministic [`Corpus`] of [`StimulusPair`]s
//!   that reached new coverage, from which the mutators in
//!   [`csl_isa::progen`] (`mutate_stimulus`: splice / flip / stretch)
//!   derive the next generation. [`Corpus::save`]/[`Corpus::load`]
//!   persist it across sessions in a deterministic text format.
//! * **Formal exchange** — the reached frontier travels to the proof
//!   lanes as [`csl_mc::SharedObligation`]s (PDR probes them for
//!   adjacency to a bad state and uses them to block bogus
//!   generalizations), and PDR's frame clauses come back as
//!   [`csl_mc::SharedFrontier`]s which the [`RejectionFilter`] turns
//!   into a pre-simulation stimulus skip: a reset state the formal side
//!   already proved assume-inconsistent cannot start a valid trial.
//!
//! Everything here is deterministic by construction: coverage ingestion
//! happens at fixed generation boundaries, signatures hash sorted latch
//! indices, and the corpus evolves identically for a fixed seed whether
//! trials execute 64-wide or scalar (property-tested in
//! `tests/coverage_equiv.rs`).

use std::collections::HashSet;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use csl_isa::progen::StimulusPair;
use csl_mc::{BatchState, CoverageStats, SharedFrontier, SimState};

/// FNV-1a offset basis / prime (64-bit), matching the hashing used by
/// the session cache.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// The coverage one finished trial produced: which latches toggled at
/// least once while the trial was valid (assumes held), and how many
/// cycles the trial stayed valid — the speculation-depth proxy the
/// campaign histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialCoverage {
    /// Toggle bitmap, one bit per latch, packed into `u64` words.
    toggled: Vec<u64>,
    /// Number of latches the bitmap covers.
    latches: usize,
    /// Cycles the trial survived with every assume held.
    pub depth: usize,
}

impl TrialCoverage {
    /// An empty record over `latches` latches.
    pub fn new(latches: usize) -> TrialCoverage {
        TrialCoverage {
            toggled: vec![0u64; latches.div_ceil(64)],
            latches,
            depth: 0,
        }
    }

    /// Marks latch `i` as toggled.
    pub fn note_toggle(&mut self, i: usize) {
        debug_assert!(i < self.latches);
        self.toggled[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether latch `i` toggled during the trial.
    pub fn toggled(&self, i: usize) -> bool {
        (self.toggled[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of distinct latches that toggled.
    pub fn count(&self) -> usize {
        self.toggled.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Stable FNV-1a signature over the sorted toggled latch indices
    /// (plus the survival depth), used for corpus dedup. Identical
    /// toggle sets at identical depths collide by design.
    pub fn signature(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for i in 0..self.latches {
            if self.toggled(i) {
                h = fnv1a(h, &(i as u32).to_le_bytes());
            }
        }
        fnv1a(h, &(self.depth as u64).to_le_bytes())
    }
}

/// Per-generation coverage accumulator for the 64-lane batch simulator.
/// `step` costs one XOR + AND + OR per latch per cycle — the same order
/// of work as the simulator's own latch advance — so coverage tracking
/// does not change the batch path's complexity.
#[derive(Clone, Debug)]
pub struct BatchCoverage {
    /// `toggles[i]` is a 64-lane mask: bit `l` set iff latch `i` toggled
    /// at least once in lane `l` while the lane was alive.
    toggles: Vec<u64>,
    /// Per-lane count of cycles survived with assumes held.
    depth: [u32; 64],
}

impl BatchCoverage {
    /// A fresh accumulator over `latches` latches.
    pub fn new(latches: usize) -> BatchCoverage {
        BatchCoverage {
            toggles: vec![0u64; latches],
            depth: [0u32; 64],
        }
    }

    /// Accumulates one simulator step: for every latch, the lanes (still
    /// in `alive`) whose bit changed between `prev` and `next` are OR-ed
    /// into the toggle mask, and each alive lane's depth advances.
    pub fn step(&mut self, prev: &BatchState, next: &BatchState, alive: u64) {
        for (i, t) in self.toggles.iter_mut().enumerate() {
            *t |= (prev.latch(i) ^ next.latch(i)) & alive;
        }
        let mut m = alive;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            self.depth[l] += 1;
            m &= m - 1;
        }
    }

    /// Extracts lane `l`'s finished-trial record.
    pub fn lane(&self, l: usize) -> TrialCoverage {
        let mut t = TrialCoverage::new(self.toggles.len());
        for (i, w) in self.toggles.iter().enumerate() {
            if (w >> l) & 1 == 1 {
                t.note_toggle(i);
            }
        }
        t.depth = self.depth[l] as usize;
        t
    }
}

/// Scalar counterpart of [`BatchCoverage`]: accumulates one trial's
/// toggles from consecutive [`SimState`]s.
#[derive(Clone, Debug)]
pub struct ScalarCoverage {
    trial: TrialCoverage,
}

impl ScalarCoverage {
    pub fn new(latches: usize) -> ScalarCoverage {
        ScalarCoverage {
            trial: TrialCoverage::new(latches),
        }
    }

    /// Accumulates one valid simulator step (assumes held through it).
    pub fn step(&mut self, prev: &SimState, next: &SimState) {
        for i in 0..prev.num_latches() {
            if prev.latch(i) != next.latch(i) {
                self.trial.note_toggle(i);
            }
        }
        self.trial.depth += 1;
    }

    /// The finished trial record.
    pub fn finish(self) -> TrialCoverage {
        self.trial
    }
}

/// Campaign-global coverage: the union of every trial's toggles, the set
/// of distinct trial signatures, and a histogram of survival depths.
/// [`CoverageMap::ingest`] answers the question the corpus asks — "did
/// this trial reach anything new?" — as: it toggled a latch no previous
/// trial toggled, or its toggle-set/depth signature is unseen.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    global: Vec<u64>,
    latches: usize,
    seen: HashSet<u64>,
    depth_hist: Vec<u64>,
    new_coverage_trials: usize,
}

impl CoverageMap {
    /// An empty map over `latches` latches.
    pub fn new(latches: usize) -> CoverageMap {
        CoverageMap {
            global: vec![0u64; latches.div_ceil(64)],
            latches,
            seen: HashSet::new(),
            depth_hist: Vec::new(),
            new_coverage_trials: 0,
        }
    }

    /// Folds one finished trial in; returns `true` when the trial
    /// reached new coverage (new global latch toggle or new signature).
    pub fn ingest(&mut self, trial: &TrialCoverage) -> bool {
        let mut new_latch = false;
        for (g, t) in self.global.iter_mut().zip(&trial.toggled) {
            if *t & !*g != 0 {
                new_latch = true;
            }
            *g |= *t;
        }
        if self.depth_hist.len() <= trial.depth {
            self.depth_hist.resize(trial.depth + 1, 0);
        }
        self.depth_hist[trial.depth] += 1;
        let new_sig = self.seen.insert(trial.signature());
        let new = new_latch || new_sig;
        if new {
            self.new_coverage_trials += 1;
        }
        new
    }

    /// Number of latches toggled by at least one trial.
    pub fn latches_toggled(&self) -> usize {
        self.global.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of latches the map tracks.
    pub fn latches_total(&self) -> usize {
        self.latches
    }

    /// Number of distinct trial signatures observed.
    pub fn signatures(&self) -> usize {
        self.seen.len()
    }

    /// Trials that reached new coverage when ingested.
    pub fn new_coverage_trials(&self) -> usize {
        self.new_coverage_trials
    }

    /// Histogram of trial survival depths (index = depth in cycles).
    pub fn depth_hist(&self) -> &[u64] {
        &self.depth_hist
    }

    /// Assembles the report-facing summary, folding in the campaign
    /// counters the map itself does not track.
    pub fn stats(
        &self,
        corpus_size: usize,
        obligations_exported: usize,
        stimuli_rejected: usize,
    ) -> CoverageStats {
        CoverageStats {
            latches_toggled: self.latches_toggled(),
            latches_total: self.latches_total(),
            signatures: self.signatures(),
            new_coverage_trials: self.new_coverage_trials(),
            corpus_size,
            obligations_exported,
            stimuli_rejected,
        }
    }
}

/// One corpus entry: the stimulus that reached new coverage, its
/// coverage signature and survival depth, and the full active-latch
/// state it reached (the frontier the formal side receives as a
/// [`csl_mc::SharedObligation`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    pub stim: StimulusPair,
    pub signature: u64,
    pub depth: usize,
    /// Toggle activity inside the leak detectors' fan-in cone — how
    /// close this trial came to exciting the property logic. Campaigns
    /// rank mutation parents by it (hot entries breed), so a corpus of
    /// surviving-but-benign programs does not drag the mutant stream
    /// away from the attack surface.
    pub heat: u32,
    /// `(latch index, value)` sorted by index — the reached state.
    pub frontier: Vec<(u32, bool)>,
}

/// The evolving stimulus corpus: entries that reached new coverage, in
/// ingestion order, with ring eviction once `cap` is hit. Selection is
/// by caller-supplied index (the campaign draws it from its seeded RNG),
/// so the corpus itself holds no randomness — a fixed seed replays the
/// identical evolution.
#[derive(Clone, Debug)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    cap: usize,
    next_evict: usize,
}

impl Default for Corpus {
    fn default() -> Corpus {
        Corpus::new()
    }
}

impl Corpus {
    /// Default capacity: enough diversity for mutation without letting
    /// the save files grow unboundedly.
    pub const DEFAULT_CAP: usize = 256;

    pub fn new() -> Corpus {
        Corpus::with_capacity(Corpus::DEFAULT_CAP)
    }

    pub fn with_capacity(cap: usize) -> Corpus {
        Corpus {
            entries: Vec::new(),
            cap: cap.max(1),
            next_evict: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, i: usize) -> &CorpusEntry {
        &self.entries[i % self.entries.len().max(1)]
    }

    /// Adds an entry, ring-evicting the oldest slot at capacity.
    pub fn push(&mut self, e: CorpusEntry) {
        if self.entries.len() < self.cap {
            self.entries.push(e);
        } else {
            self.entries[self.next_evict] = e;
            self.next_evict = (self.next_evict + 1) % self.cap;
        }
    }

    /// Serializes to a deterministic text format (version-tagged, one
    /// entry per `entry` stanza, hex words).
    fn serialize(&self) -> String {
        let mut s = String::new();
        s.push_str("cslcorpus v2\n");
        s.push_str(&format!("cap {}\nnext {}\n", self.cap, self.next_evict));
        let words = |v: &[u32]| {
            v.iter()
                .map(|w| format!("{w:x}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        for e in &self.entries {
            s.push_str(&format!(
                "entry {:016x} {} {}\n",
                e.signature, e.depth, e.heat
            ));
            s.push_str(&format!("imem {}\n", words(&e.stim.imem)));
            s.push_str(&format!("public {}\n", words(&e.stim.public)));
            s.push_str(&format!("seca {}\n", words(&e.stim.secret_a)));
            s.push_str(&format!("secb {}\n", words(&e.stim.secret_b)));
            let f = e
                .frontier
                .iter()
                .map(|&(i, v)| format!("{i}={}", v as u8))
                .collect::<Vec<_>>()
                .join(" ");
            s.push_str(&format!("frontier {f}\n"));
        }
        s
    }

    /// Writes the corpus atomically (tempfile + rename, like the session
    /// report cache) so a crashed campaign never leaves a torn file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.serialize().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads a corpus written by [`Corpus::save`]. Malformed content is
    /// an `InvalidData` error — the campaign treats it as "no corpus"
    /// and starts cold.
    pub fn load(path: &Path) -> io::Result<Corpus> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Corpus::parse(&text)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed corpus file"))
    }

    fn parse(text: &str) -> Option<Corpus> {
        let mut lines = text.lines();
        if lines.next()? != "cslcorpus v2" {
            return None;
        }
        let cap: usize = lines.next()?.strip_prefix("cap ")?.parse().ok()?;
        let next_evict: usize = lines.next()?.strip_prefix("next ")?.parse().ok()?;
        let mut corpus = Corpus::with_capacity(cap);
        corpus.next_evict = next_evict;
        let words = |l: &str| -> Option<Vec<u32>> {
            if l.is_empty() {
                return Some(Vec::new());
            }
            l.split(' ')
                .map(|w| u32::from_str_radix(w, 16).ok())
                .collect()
        };
        while let Some(head) = lines.next() {
            let mut parts = head.strip_prefix("entry ")?.split(' ');
            let signature = u64::from_str_radix(parts.next()?, 16).ok()?;
            let depth: usize = parts.next()?.parse().ok()?;
            let heat: u32 = parts.next()?.parse().ok()?;
            let imem = words(lines.next()?.strip_prefix("imem ")?)?;
            let public = words(lines.next()?.strip_prefix("public ")?)?;
            let secret_a = words(lines.next()?.strip_prefix("seca ")?)?;
            let secret_b = words(lines.next()?.strip_prefix("secb ")?)?;
            let fline = lines.next()?.strip_prefix("frontier ")?;
            let frontier = if fline.is_empty() {
                Vec::new()
            } else {
                fline
                    .split(' ')
                    .map(|p| {
                        let (i, v) = p.split_once('=')?;
                        Some((i.parse().ok()?, v == "1"))
                    })
                    .collect::<Option<Vec<(u32, bool)>>>()?
            };
            corpus.entries.push(CorpusEntry {
                stim: StimulusPair {
                    imem,
                    public,
                    secret_a,
                    secret_b,
                },
                signature,
                depth,
                heat,
                frontier,
            });
        }
        Some(corpus)
    }
}

/// A stimulus skip-list built from PDR's exported frame clauses
/// ([`SharedFrontier`]). Each clause is init-true: no assume-consistent
/// reset state falsifies it. A candidate stimulus whose reset state
/// falsifies some clause therefore violates an assume at cycle 0 — it
/// can never become a valid leaking trial, and skipping its simulation
/// is verdict-preserving. Clauses with out-of-range latch indices are
/// dropped (they cannot be evaluated against this netlist).
#[derive(Clone, Debug, Default)]
pub struct RejectionFilter {
    clauses: Vec<Vec<(u32, bool)>>,
    latches: usize,
}

impl RejectionFilter {
    /// Retention cap: enough to be useful, bounded so the per-stimulus
    /// check stays cheap.
    pub const MAX_CLAUSES: usize = 256;

    /// An empty filter over `latches` latches.
    pub fn new(latches: usize) -> RejectionFilter {
        RejectionFilter {
            clauses: Vec::new(),
            latches,
        }
    }

    /// Number of clauses currently held.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds one imported frontier clause; returns `false` when the
    /// clause was dropped (empty, out-of-range, or at capacity).
    pub fn add(&mut self, f: &SharedFrontier) -> bool {
        if self.clauses.len() >= RejectionFilter::MAX_CLAUSES
            || f.lits.is_empty()
            || f.lits.iter().any(|&(i, _)| i as usize >= self.latches)
        {
            return false;
        }
        self.clauses.push(f.lits.clone());
        true
    }

    /// Whether `state` falsifies some clause (every literal wrong) —
    /// i.e. the formal side already proved no valid trial starts here.
    pub fn rejects(&self, state: &SimState) -> bool {
        self.clauses
            .iter()
            .any(|c| c.iter().all(|&(i, v)| state.latch(i as usize) != v))
    }

    /// Lane mask of rejected reset states in a batch: bit `l` set iff
    /// lane `l`'s state falsifies some clause.
    pub fn reject_mask(&self, state: &BatchState) -> u64 {
        let mut out = 0u64;
        for c in &self.clauses {
            let mut falsified = !0u64;
            for &(i, v) in c {
                let bits = state.latch(i as usize);
                // Lanes where the literal HOLDS are not falsified.
                let holds = if v { bits } else { !bits };
                falsified &= !holds;
            }
            out |= falsified;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_mc::Lane;

    fn frontier(lits: Vec<(u32, bool)>) -> SharedFrontier {
        SharedFrontier {
            name: "t".into(),
            lits,
            level: 1,
            source: Lane::Pdr,
        }
    }

    #[test]
    fn trial_signature_tracks_toggle_set_and_depth() {
        let mut a = TrialCoverage::new(100);
        a.note_toggle(3);
        a.note_toggle(77);
        a.depth = 5;
        let mut b = TrialCoverage::new(100);
        b.note_toggle(77);
        b.note_toggle(3);
        b.depth = 5;
        assert_eq!(a.signature(), b.signature(), "order must not matter");
        assert_eq!(a.count(), 2);
        b.depth = 6;
        assert_ne!(
            a.signature(),
            b.signature(),
            "depth is part of the signature"
        );
        b.depth = 5;
        b.note_toggle(4);
        assert_ne!(
            a.signature(),
            b.signature(),
            "toggle set is part of the signature"
        );
    }

    #[test]
    fn coverage_map_flags_new_latches_and_new_signatures() {
        let mut map = CoverageMap::new(10);
        let mut t1 = TrialCoverage::new(10);
        t1.note_toggle(1);
        t1.depth = 3;
        assert!(map.ingest(&t1), "first trial is always new");
        assert!(!map.ingest(&t1), "replay of the same trial is not new");
        let mut t2 = TrialCoverage::new(10);
        t2.note_toggle(1);
        t2.depth = 4;
        assert!(map.ingest(&t2), "same latch, new signature: still new");
        let mut t3 = TrialCoverage::new(10);
        t3.note_toggle(9);
        t3.depth = 3;
        assert!(map.ingest(&t3), "new latch is new coverage");
        assert_eq!(map.latches_toggled(), 2);
        assert_eq!(map.latches_total(), 10);
        assert_eq!(map.signatures(), 3);
        assert_eq!(map.new_coverage_trials(), 3);
        assert_eq!(map.depth_hist()[3], 3);
        assert_eq!(map.depth_hist()[4], 1);
        let s = map.stats(2, 1, 4);
        assert_eq!(s.corpus_size, 2);
        assert_eq!(s.obligations_exported, 1);
        assert_eq!(s.stimuli_rejected, 4);
    }

    #[test]
    fn corpus_ring_evicts_and_round_trips_through_disk() {
        let mut c = Corpus::with_capacity(2);
        let entry = |tag: u32| CorpusEntry {
            stim: StimulusPair {
                imem: vec![tag, 2, 3],
                public: vec![4],
                secret_a: vec![5],
                secret_b: vec![6],
            },
            signature: 0xfeed_0000 + tag as u64,
            depth: tag as usize,
            heat: tag * 7,
            frontier: vec![(0, true), (3, false)],
        };
        c.push(entry(1));
        c.push(entry(2));
        c.push(entry(3)); // evicts entry 1
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0).stim.imem[0], 3);
        assert_eq!(c.get(1).stim.imem[0], 2);

        let dir = std::env::temp_dir().join(format!("csl_cover_t_{}", std::process::id()));
        let path = dir.join("x.corpus");
        c.save(&path).expect("save");
        let back = Corpus::load(&path).expect("load");
        assert_eq!(back.entries, c.entries, "round trip must be lossless");
        assert_eq!(back.cap, c.cap);
        assert_eq!(back.next_evict, c.next_evict);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_corpus_is_invalid_data_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("csl_cover_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.corpus");
        std::fs::write(&path, "not a corpus\n").unwrap();
        let err = Corpus::load(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejection_filter_matches_clause_semantics_scalar_and_batch() {
        use csl_hdl::{Design, Init};
        let mut d = Design::new("f");
        let r = d.reg("r", 3, Init::Symbolic);
        let q = r.q();
        d.set_next(&r, q);
        let aig = d.finish();

        let mut filter = RejectionFilter::new(3);
        // Clause: latch0=1 ∨ latch2=0. Falsified by states with
        // latch0=0 ∧ latch2=1.
        assert!(filter.add(&frontier(vec![(0, true), (2, false)])));
        assert!(
            !filter.add(&frontier(vec![(9, true)])),
            "out of range dropped"
        );
        assert!(!filter.add(&frontier(vec![])), "empty clause dropped");

        let mut rejected = SimState::reset_with(&aig, |i, _| i == 2);
        assert!(filter.rejects(&rejected));
        rejected.set_latch(0, true);
        assert!(!filter.rejects(&rejected), "latch0=1 satisfies the clause");

        // Batch: lane l encodes state l (3-bit counter of lane index).
        let batch = BatchState::reset_with(&aig, |i, _| {
            let mut w = 0u64;
            for l in 0..8u64 {
                w |= ((l >> i) & 1) << l;
            }
            w
        });
        let mask = filter.reject_mask(&batch);
        for l in 0..8usize {
            let state = batch.lane(l);
            assert_eq!(
                (mask >> l) & 1 == 1,
                filter.rejects(&state),
                "lane {l}: batch mask disagrees with scalar rejection"
            );
        }
    }
}

//! The commit-record skid FIFO — §5.3's "capability to remember unaligned
//! traces for future comparison".
//!
//! Each processor copy gets one FIFO of `O_ISA` records. Commits push;
//! the shadow logic pops min(count₁, count₂) records per cycle (capped by
//! the compare capacity) and emits `assume(equal)` per popped pair. In
//! phase 1 both machines commit in lockstep (a commit-timing difference
//! *is* a microarchitectural divergence), so pushes are immediately popped
//! and the FIFOs stay empty; depth is only consumed during phase-2
//! re-alignment, and the §5.3 observation that the required depth tracks
//! the commit bandwidth (not the trace length) is embodied in
//! [`RecordFifo::depth_for_width`].
//!
//! The structure is a shift-register array with fully combinational
//! push/pop planning so push, compare and pop happen in one cycle.

use csl_hdl::{Bit, Design, Init, Reg, Word};

/// A FIFO of fixed-width records with up to two push ports and a dynamic
/// multi-pop port.
pub struct RecordFifo {
    slots: Vec<Reg>,
    count: Reg,
    rec_width: usize,
    depth: usize,
}

/// The combinational view of a FIFO after this cycle's pushes: the
/// effective queue (stored entries then pushed entries), its length, and
/// an overflow flag.
pub struct FifoPlan {
    /// `depth + 2` entries; positions past `eff_count` are zero.
    pub eff: Vec<Word>,
    /// Entries in the effective queue (clamped to `depth`).
    pub eff_count: Word,
    /// Pushes were dropped because the queue was full. Exposed as its own
    /// assertion: reachable overflow means the synchronisation requirement
    /// was violated (see the ablation benchmark).
    pub overflow: Bit,
}

impl RecordFifo {
    /// Default depth for a processor of the given commit width.
    pub fn depth_for_width(width: usize) -> usize {
        4 * width + 2
    }

    /// Allocates the FIFO's registers under the current scope.
    pub fn new(d: &mut Design, name: &str, depth: usize, rec_width: usize) -> RecordFifo {
        d.push_scope(name);
        let slots = (0..depth)
            .map(|i| d.reg(&format!("slot{i}"), rec_width, Init::Zero))
            .collect();
        let count = d.reg("count", count_bits(depth), Init::Zero);
        d.pop_scope();
        RecordFifo {
            slots,
            count,
            rec_width,
            depth,
        }
    }

    /// Record width in bits.
    pub fn rec_width(&self) -> usize {
        self.rec_width
    }

    /// Stored-entry count (start of cycle).
    pub fn stored_count(&self) -> Word {
        self.count.q()
    }

    /// Computes the effective queue after applying this cycle's pushes
    /// (`pushes` in program order; at most 2 supported).
    pub fn plan(&self, d: &mut Design, pushes: &[(Bit, Word)]) -> FifoPlan {
        assert!(pushes.len() <= 2, "at most two push ports");
        for (_, w) in pushes {
            assert_eq!(w.width(), self.rec_width);
        }
        let cw = count_bits(self.depth);
        let zero_rec = d.lit(self.rec_width, 0);
        // Normalise pushes: `a` is the first valid record, `b` the second.
        let (a_valid, a_rec, b_valid, b_rec) = match pushes {
            [] => (Bit::FALSE, zero_rec.clone(), Bit::FALSE, zero_rec.clone()),
            [(v, r)] => (*v, r.clone(), Bit::FALSE, zero_rec.clone()),
            [(v0, r0), (v1, r1)] => {
                let a_valid = d.or_bit(*v0, *v1);
                let a_rec = d.mux(*v0, r0, r1);
                let b_valid = d.and_bit(*v0, *v1);
                (a_valid, a_rec, b_valid, r1.clone())
            }
            _ => unreachable!(),
        };
        let count = self.count.q();
        let pushed = {
            let av = d.resize(&Word::from_bit(a_valid), cw);
            let bv = d.resize(&Word::from_bit(b_valid), cw);
            let s = d.add(&count, &av);
            d.add(&s, &bv)
        };
        let depth_lit = d.lit(cw, self.depth as u64);
        let overflow = d.ult(&depth_lit, &pushed);
        let eff_count = d.mux(overflow, &depth_lit, &pushed);
        // Effective queue: stored slots, then push a at `count`, push b at
        // `count + 1`.
        let mut eff = Vec::with_capacity(self.depth + 2);
        for i in 0..self.depth + 2 {
            let stored = if i < self.depth {
                self.slots[i].q()
            } else {
                zero_rec.clone()
            };
            let i_lit = d.lit(cw, i as u64);
            let at_a = d.eq(&i_lit, &count);
            let count1 = d.add_const(&count, 1);
            let at_b = d.eq(&i_lit, &count1);
            let mut w = stored;
            let sel_b = d.and_bit(at_b, b_valid);
            w = d.mux(sel_b, &b_rec, &w);
            let sel_a = d.and_bit(at_a, a_valid);
            w = d.mux(sel_a, &a_rec, &w);
            // Past the effective count the queue reads as zero.
            let live = d.ult(&i_lit, &eff_count);
            let zeroed = d.mux(live, &w, &zero_rec);
            eff.push(zeroed);
        }
        FifoPlan {
            eff,
            eff_count,
            overflow,
        }
    }

    /// Applies the plan: removes `pop_n` entries from the front (`pop_n`
    /// must not exceed `plan.eff_count`; the shadow logic guarantees it by
    /// construction of the min). Must be called exactly once per cycle.
    pub fn commit(self, d: &mut Design, plan: &FifoPlan, pop_n: &Word, max_pop: usize) {
        let cw = count_bits(self.depth);
        let pop = d.resize(pop_n, cw);
        let new_count = d.sub(&plan.eff_count, &pop);
        d.set_next(&self.count, new_count);
        for i in 0..self.depth {
            // slot_i' = eff[i + pop] for pop in 0..=max_pop.
            let mut w = plan.eff[i].clone();
            for p in 1..=max_pop {
                let here = d.eq_const(&pop, p as u64);
                let src = &plan.eff[(i + p).min(self.depth + 1)];
                w = d.mux(here, src, &w);
            }
            d.set_next(&self.slots[i], w);
        }
    }
}

fn count_bits(depth: usize) -> usize {
    (usize::BITS - depth.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_mc::{Sim, SimState};

    /// Drive the FIFO through a software model using the simulator: one
    /// push port fed by an input bit, pop controlled by an input word.
    #[test]
    fn matches_software_model() {
        let mut d = Design::new("t");
        let push_v = d.input_bit("push_v");
        let push_d = d.input("push_d", 4);
        let pop_req = d.input("pop", 2);
        let fifo = RecordFifo::new(&mut d, "f", 4, 4);
        let plan = fifo.plan(&mut d, &[(push_v, push_d)]);
        // Pop at most min(pop_req, eff_count).
        let pop_w = d.resize(&pop_req, 3);
        let can = d.ule(&pop_w, &plan.eff_count);
        let pop_n = d.mux(can, &pop_w, &plan.eff_count);
        d.probe("front", &plan.eff[0]);
        d.probe("count", &plan.eff_count);
        let ov = Word::from_bit(plan.overflow);
        d.probe("overflow", &ov);
        fifo.commit(&mut d, &plan, &pop_n, 2);
        let aig = d.finish();

        let front_bits = aig.probes()[0].bits.clone();
        let count_bits_ = aig.probes()[1].bits.clone();
        let ov_bits = aig.probes()[2].bits.clone();

        // Software model.
        let mut model: Vec<u64> = Vec::new();
        let mut sim = Sim::new(&aig);
        let mut state = SimState::reset(&aig);
        let script: Vec<(bool, u64, u64)> = vec![
            // (push?, data, pop_req)
            (true, 3, 0),
            (true, 5, 0),
            (true, 7, 1),
            (false, 0, 2),
            (true, 9, 0),
            (true, 1, 0),
            (true, 2, 0),
            (true, 4, 0), // would overflow at count 4: pushed==5 > 4
            (false, 0, 2),
            (false, 0, 2),
        ];
        for (push, data, pop_req) in script {
            let r = sim.step(&state, |i, name| {
                if name.starts_with("push_v") {
                    push
                } else if name.starts_with("push_d") {
                    (data >> (i - 1)) & 1 == 1
                } else {
                    let bit = i - 5;
                    (pop_req >> bit) & 1 == 1
                }
            });
            // Model: push then pop.
            let mut overflowed = false;
            if push {
                if model.len() < 4 {
                    model.push(data);
                } else {
                    overflowed = true;
                }
            }
            let eff_count = model.len() as u64;
            let pop_n = pop_req.min(eff_count);
            assert_eq!(r.values.word(&count_bits_), eff_count, "count");
            assert_eq!(r.values.word(&ov_bits) == 1, overflowed, "overflow");
            if eff_count > 0 {
                assert_eq!(r.values.word(&front_bits), model[0], "front");
            }
            for _ in 0..pop_n {
                model.remove(0);
            }
            state = r.next;
        }
    }

    #[test]
    fn two_push_ports_preserve_order() {
        let mut d = Design::new("t");
        let v0 = d.input_bit("v0");
        let r0 = d.input("r0", 4);
        let v1 = d.input_bit("v1");
        let r1 = d.input("r1", 4);
        let fifo = RecordFifo::new(&mut d, "f", 6, 4);
        let plan = fifo.plan(&mut d, &[(v0, r0), (v1, r1)]);
        d.probe("e0", &plan.eff[0]);
        d.probe("e1", &plan.eff[1]);
        let zero = d.lit(3, 0);
        fifo.commit(&mut d, &plan, &zero, 2);
        let aig = d.finish();
        let e0 = aig.probes()[0].bits.clone();
        let e1 = aig.probes()[1].bits.clone();
        let mut sim = Sim::new(&aig);
        let state = SimState::reset(&aig);
        // Push only the second port: its record must land at the front.
        let r = sim.step(&state, |i, name| match name {
            n if n.starts_with("v0") => false,
            n if n.starts_with("v1") => true,
            n if n.starts_with("r0") => false,
            _ => (0b1010 >> (i - 6)) & 1 == 1,
        });
        assert_eq!(r.values.word(&e0), 0b1010);
        // Push both: order v0 then v1.
        let state2 = r.next; // count now 1... use fresh state instead
        let _ = state2;
        let state = SimState::reset(&aig);
        let r = sim.step(&state, |i, name| match name {
            n if n.starts_with("v0") || n.starts_with("v1") => true,
            n if n.starts_with("r0") => (0b0011 >> (i - 1)) & 1 == 1,
            _ => (0b0101 >> (i - 6)) & 1 == 1,
        });
        assert_eq!(r.values.word(&e0), 0b0011);
        assert_eq!(r.values.word(&e1), 0b0101);
    }

    #[test]
    fn default_depths() {
        assert_eq!(RecordFifo::depth_for_width(1), 6);
        assert_eq!(RecordFifo::depth_for_width(2), 10);
    }
}

//! The top-level verification API: scheme × design × contract → verdict.
//!
//! Dispatches to the four verification schemes the paper compares
//! (Table 2):
//!
//! * [`Scheme::Shadow`] — Contract Shadow Logic (this paper): the
//!   two-machine instance plus the full engine pipeline (BMC attack
//!   search, Houdini lemmas, k-induction, PDR).
//! * [`Scheme::Baseline`] — the four-machine instance of §4.1, same
//!   engines.
//! * [`Scheme::Leave`] — LEAVE's method (§7.1.3): the relational-invariant
//!   Houdini search *alone*; if the surviving invariants do not imply
//!   safety the result is UNKNOWN ("false counterexamples").
//! * [`Scheme::Upec`] — an approximation of UPEC (§7.1.4): the user fixes
//!   the mis-speculation source to branch misprediction (faults are
//!   assumed away), and unbounded proofs only come from the 1-cycle
//!   induction that UPEC's conservative-defence invariant admits.

use std::time::Instant;

use csl_mc::prepare::run_prepared;
use csl_mc::{
    bmc, check_safety, houdini, k_induction, BmcResult, CertKind, Certificate, CheckOptions,
    CheckReport, HoudiniResult, InconclusiveReason, KindOptions, KindResult, ProofEngine,
    SafetyCheck, Sim, TransitionSystem, Verdict,
};
use csl_sat::Budget;

use crate::harness::{ExcludeRule, InstanceConfig};

/// The verification schemes compared in Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    Shadow,
    Baseline,
    Leave,
    Upec,
}

impl Scheme {
    pub const ALL: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::Leave,
        Scheme::Upec,
        Scheme::Shadow,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Scheme::Shadow => "ContractShadowLogic",
            Scheme::Baseline => "Baseline",
            Scheme::Leave => "LEAVE",
            Scheme::Upec => "UPEC",
        }
    }

    /// Inverse of [`Scheme::name`] (used when reading persisted reports).
    pub fn from_name(name: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Builds the model-checking instance for a scheme (internal form; the
/// public surface is `api::Query::instance`).
pub(crate) fn instance_for(scheme: Scheme, cfg: &InstanceConfig) -> SafetyCheck {
    match scheme {
        Scheme::Baseline => crate::harness::baseline_instance(cfg),
        Scheme::Leave => crate::harness::leave_instance(cfg),
        Scheme::Shadow => crate::harness::shadow_instance(cfg),
        Scheme::Upec => {
            let mut cfg = cfg.clone();
            // UPEC's user-declared speculation source: branch misprediction
            // only. Exception speculation is assumed away.
            if !cfg.excludes.contains(&ExcludeRule::AnyFault) {
                cfg.excludes.push(ExcludeRule::AnyFault);
            }
            crate::harness::shadow_instance(&cfg)
        }
    }
}

/// Runs a scheme to a verdict (internal form; the public surface is
/// `api::Query::run`).
pub(crate) fn run_scheme(scheme: Scheme, cfg: &InstanceConfig, opts: &CheckOptions) -> CheckReport {
    let task = instance_for(scheme, cfg);
    match scheme {
        Scheme::Shadow | Scheme::Baseline => check_safety(&task, opts),
        Scheme::Leave => run_leave(&task, opts),
        Scheme::Upec => run_upec(&task, opts),
    }
}

/// LEAVE: Houdini-filtered relational invariants or bust. Like
/// `check_safety`, the engine runs on the prepared (reduced) instance
/// and the report is lifted back to raw-netlist vocabulary.
fn run_leave(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    run_prepared(task, &opts.prepare, opts.keep_probes, |t| {
        run_leave_prepared(t, opts)
    })
}

fn run_leave_prepared(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    let start = Instant::now();
    let deadline = start + opts.total_budget;
    let budget = Budget::until(deadline);
    let ts = TransitionSystem::shared(task.aig.clone(), opts.keep_probes);
    let mut notes = vec![format!("netlist: {}", ts.summary())];
    match houdini(&ts, &task.candidates, budget) {
        HoudiniResult::Done(out) => {
            notes.push(format!(
                "houdini: {}/{} candidates survive after {} rounds ({} dropped at init)",
                out.survivors.len(),
                task.candidates.len(),
                out.rounds,
                out.dropped_at_init,
            ));
            let (verdict, certificate) = if out.proves_safety {
                let cert = opts.certify.then(|| Certificate {
                    restored: Vec::new(),
                    survivors: out.survivors.clone(),
                    kind: CertKind::Inductive {
                        blocked: Vec::new(),
                    },
                });
                (
                    Verdict::Proof(ProofEngine::Houdini {
                        invariants: out.survivors.len(),
                    }),
                    cert,
                )
            } else {
                (
                    Verdict::Unknown {
                        reason: InconclusiveReason::InvariantsInsufficient {
                            survivors: out.survivors.len(),
                        },
                    },
                    None,
                )
            };
            CheckReport {
                verdict,
                elapsed: start.elapsed(),
                notes,
                exchange: Vec::new(),
                prepare: Vec::new(),
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate,
            }
        }
        HoudiniResult::Timeout => CheckReport {
            verdict: Verdict::Timeout,
            elapsed: start.elapsed(),
            notes,
            exchange: Vec::new(),
            prepare: Vec::new(),
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        },
    }
}

/// UPEC approximation: BMC with the branch-only speculation assumption;
/// proofs only via 1-step induction. Runs on the prepared instance with
/// the report lifted back, like the other schemes.
fn run_upec(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    run_prepared(task, &opts.prepare, opts.keep_probes, |t| {
        run_upec_prepared(t, opts)
    })
}

fn run_upec_prepared(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    let start = Instant::now();
    let deadline = start + opts.total_budget;
    let budget = || Budget::until(deadline);
    let ts = TransitionSystem::shared(task.aig.clone(), opts.keep_probes);
    let mut notes = vec![format!("netlist: {}", ts.summary())];
    match bmc(&ts, opts.bmc_depth, budget()) {
        BmcResult::Cex(trace) => {
            let (ok, bad) = Sim::new(ts.aig()).replay(&trace);
            notes.push(format!("cex replay: assumes={ok} bad={bad}"));
            return CheckReport {
                verdict: Verdict::Attack(trace),
                elapsed: start.elapsed(),
                notes,
                exchange: Vec::new(),
                prepare: Vec::new(),
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            };
        }
        BmcResult::Clean { depth_checked } => {
            notes.push(format!("bmc clean to depth {depth_checked}"));
        }
        BmcResult::Timeout { .. } => {
            return CheckReport {
                verdict: Verdict::Timeout,
                elapsed: start.elapsed(),
                notes,
                exchange: Vec::new(),
                prepare: Vec::new(),
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            };
        }
    }
    match k_induction(
        &ts,
        KindOptions {
            max_k: 1,
            unique_states: false,
            budget: budget(),
        },
    ) {
        KindResult::Proof { k } => CheckReport {
            verdict: Verdict::Proof(ProofEngine::KInduction { k }),
            elapsed: start.elapsed(),
            notes,
            exchange: Vec::new(),
            prepare: Vec::new(),
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            // A fresh k-induction session with no exchange bus: its
            // closing k is certificate material as-is.
            certificate: opts.certify.then(|| Certificate {
                restored: Vec::new(),
                survivors: Vec::new(),
                kind: CertKind::KInduction { k },
            }),
        },
        KindResult::Timeout => CheckReport {
            verdict: Verdict::Timeout,
            elapsed: start.elapsed(),
            notes,
            exchange: Vec::new(),
            prepare: Vec::new(),
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        },
        _ => CheckReport {
            // UPEC's conservative-defence invariant shape admits only
            // 1-cycle induction; an unclosed step is an induction gap.
            verdict: Verdict::Unknown {
                reason: InconclusiveReason::InductionGap { max_k: 1 },
            },
            elapsed: start.elapsed(),
            notes,
            exchange: Vec::new(),
            prepare: Vec::new(),
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        },
    }
}

//! Verification-instance construction.
//!
//! Builds the model-checking instances of Fig. 1: the **baseline** (two
//! single-cycle machines + two copies of the design under verification,
//! §4.1) and the **Contract Shadow Logic** two-machine instance (§5.3).
//! Both run the same program (shared symbolic instruction memory) over the
//! same public data with per-pair secrets that differ in at least one
//! location (§4.1), and both end in a [`SafetyCheck`] the engines consume.

use csl_contracts::Contract;
use csl_cpu::{
    build_inorder, build_ooo, build_single_cycle, CpuConfig, CpuPorts, Defense, SecretMem,
    SharedMem,
};
use csl_hdl::{Bit, Design};
use csl_mc::{Candidate, SafetyCheck};

use crate::record::extract_record;
use crate::shadow::{ShadowOptions, ShadowPre};

/// The designs under verification (paper Table 1 / Table 2 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesignKind {
    /// The single-cycle ISA machine itself as the design under test: no
    /// speculation, no microarchitectural state beyond the architectural
    /// registers. The smallest instance in the matrix — LEAVE proves it
    /// in under a second — which makes it the smoke-campaign and
    /// portfolio-equivalence workhorse.
    SingleCycle,
    /// Sodor stand-in: 2-stage in-order pipeline.
    InOrder,
    /// The paper's in-house toy OoO core with a defence policy.
    /// `SimpleOoo(Defense::DelaySpectre)` is "SimpleOoO-S".
    SimpleOoo(Defense),
    /// Ridecore stand-in: 2-wide superscalar, insecure.
    SuperOoo,
    /// BOOM stand-in: exception semantics, insecure.
    BigOoo,
}

impl DesignKind {
    /// Table label.
    pub fn name(&self) -> String {
        match self {
            DesignKind::SingleCycle => "SingleCycle(ISA)".to_string(),
            DesignKind::InOrder => "InOrder(Sodor)".to_string(),
            DesignKind::SimpleOoo(Defense::None) => "SimpleOoO".to_string(),
            DesignKind::SimpleOoo(Defense::DelaySpectre) => "SimpleOoO-S".to_string(),
            DesignKind::SimpleOoo(def) => format!("SimpleOoO+{}", def.name()),
            DesignKind::SuperOoo => "SuperOoO(Ridecore)".to_string(),
            DesignKind::BigOoo => "BigOoO(BOOM)".to_string(),
        }
    }

    /// Inverse of [`DesignKind::name`] (used when reading persisted
    /// reports).
    pub fn from_name(name: &str) -> Option<DesignKind> {
        match name {
            "SingleCycle(ISA)" => Some(DesignKind::SingleCycle),
            "InOrder(Sodor)" => Some(DesignKind::InOrder),
            "SimpleOoO" => Some(DesignKind::SimpleOoo(Defense::None)),
            "SimpleOoO-S" => Some(DesignKind::SimpleOoo(Defense::DelaySpectre)),
            "SuperOoO(Ridecore)" => Some(DesignKind::SuperOoo),
            "BigOoO(BOOM)" => Some(DesignKind::BigOoo),
            other => {
                let def = Defense::from_name(other.strip_prefix("SimpleOoO+")?)?;
                Some(DesignKind::SimpleOoo(def))
            }
        }
    }

    /// Default processor configuration.
    pub fn cpu_config(&self) -> CpuConfig {
        match self {
            // Only the ISA sub-config matters for the single-cycle machine.
            DesignKind::SingleCycle => CpuConfig::simple_ooo(Defense::None),
            DesignKind::InOrder => CpuConfig::simple_ooo(Defense::None),
            DesignKind::SimpleOoo(def) => {
                let mut c = CpuConfig::simple_ooo(*def);
                if *def == Defense::DomSpectre {
                    // §7.2 footnote: the DoM attacks need more concurrent
                    // instructions than the default 4-entry ROB allows.
                    c.rob_size = 8;
                }
                c
            }
            DesignKind::SuperOoo => CpuConfig::super_ooo(),
            DesignKind::BigOoo => CpuConfig::big_ooo(),
        }
    }
}

/// Program-space exclusion assumptions — the standard practice of §7.1.4
/// ("we add an assumption to exclude the first attack that we found").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExcludeRule {
    /// The program performs no misaligned memory accesses (including
    /// transient ones).
    MisalignedAccesses,
    /// The program performs no illegal (out-of-range) memory accesses.
    IllegalAccesses,
    /// The program commits no taken branches (removes the branch
    /// misprediction speculation source entirely).
    TakenBranches,
    /// No faults of any kind — the UPEC approximation's way of fixing the
    /// speculation source to branch misprediction only.
    AnyFault,
}

/// Everything needed to build one verification instance.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    pub design: DesignKind,
    /// Structure-size override (Figure 2 sweeps).
    pub cpu_override: Option<CpuConfig>,
    pub contract: Contract,
    pub shadow: ShadowOptions,
    pub excludes: Vec<ExcludeRule>,
    /// Generate LEAVE-style relational invariant candidates.
    pub with_candidates: bool,
}

impl InstanceConfig {
    /// A default configuration for `design` × `contract`.
    pub fn new(design: DesignKind, contract: Contract) -> InstanceConfig {
        InstanceConfig {
            design,
            cpu_override: None,
            contract,
            shadow: ShadowOptions::default(),
            excludes: Vec::new(),
            with_candidates: true,
        }
    }

    /// Resolved processor configuration.
    pub fn cpu_config(&self) -> CpuConfig {
        self.cpu_override
            .unwrap_or_else(|| self.design.cpu_config())
    }
}

#[allow(clippy::too_many_arguments)]
fn build_machine(
    d: &mut Design,
    kind: DesignKind,
    cfg: &CpuConfig,
    name: &str,
    shared: &SharedMem,
    secret: &SecretMem,
    enable: Bit,
    stall: Bit,
) -> CpuPorts {
    match kind {
        DesignKind::SingleCycle => {
            // The single-cycle machine has no fetch-stall input (nothing
            // speculative to stall); fold the stall into the register
            // enable so pause-based re-alignment still holds it.
            let run = d.and_bit(enable, stall.not());
            build_single_cycle(d, &cfg.isa, name, shared, secret, run)
        }
        DesignKind::InOrder => build_inorder(d, &cfg.isa, name, shared, secret, enable, stall),
        DesignKind::SimpleOoo(_) | DesignKind::SuperOoo | DesignKind::BigOoo => {
            build_ooo(d, cfg, name, shared, secret, enable, stall)
        }
    }
}

fn assume_secrets_differ(d: &mut Design, a: &SecretMem, b: &SecretMem) {
    let mut any = Bit::FALSE;
    for (wa, wb) in a.words.iter().zip(&b.words) {
        let ne = d.ne(wa, wb);
        any = d.or_bit(any, ne);
    }
    d.assume(any);
}

fn apply_excludes(d: &mut Design, excludes: &[ExcludeRule], ports: [&CpuPorts; 2]) {
    for rule in excludes {
        for p in ports {
            match rule {
                ExcludeRule::MisalignedAccesses => {
                    let hit = d.eq_const(&p.exec_fault, 1);
                    d.assume(hit.not());
                }
                ExcludeRule::IllegalAccesses => {
                    let hit = d.eq_const(&p.exec_fault, 2);
                    d.assume(hit.not());
                }
                ExcludeRule::AnyFault => {
                    let ok = d.is_zero(&p.exec_fault);
                    d.assume(ok);
                }
                ExcludeRule::TakenBranches => {
                    for c in &p.commits {
                        d.assume(c.taken.not());
                    }
                }
            }
        }
    }
}

/// LEAVE's automatically generated candidate family: "values in
/// corresponding registers are equivalent in the two copies" (§7.1.3),
/// one candidate per corresponding latch bit, excluding the (intentionally
/// different) secret regions.
fn relational_candidates(d: &mut Design) -> Vec<Candidate> {
    let pairs: Vec<(String, csl_hdl::Bit, csl_hdl::Bit)> = {
        let latches = d.aig().latches();
        let mut by_name = std::collections::HashMap::new();
        for l in latches {
            if let Some(rest) = l.name.strip_prefix("cpu1.") {
                if !rest.starts_with("dmem_sec") {
                    by_name.insert(rest.to_string(), l.output);
                }
            }
        }
        latches
            .iter()
            .filter_map(|l| {
                let rest = l.name.strip_prefix("cpu2.")?;
                let &b1 = by_name.get(rest)?;
                Some((rest.to_string(), b1, l.output))
            })
            .collect()
    };
    pairs
        .into_iter()
        .map(|(name, b1, b2)| Candidate {
            name: format!("eq:{name}"),
            bit: d.xor_bit(b1, b2).not(),
        })
        .collect()
}

/// Builds the Contract Shadow Logic instance (Fig. 1b): two copies of the
/// design plus the two-phase shadow monitor.
pub(crate) fn shadow_instance(cfg: &InstanceConfig) -> SafetyCheck {
    let cpu = cfg.cpu_config();
    cpu.validate();
    let mut d = Design::new(format!("shadow:{}", cfg.design.name()));
    let shared = SharedMem::new(&mut d, &cpu.isa);
    d.push_scope("cpu1");
    let secret1 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();
    d.push_scope("cpu2");
    let secret2 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();
    let pre = ShadowPre::new(&mut d, cfg.shadow);
    let ports1 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu1",
        &shared,
        &secret1,
        pre.enable(0),
        Bit::FALSE,
    );
    let ports2 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu2",
        &shared,
        &secret2,
        pre.enable(1),
        Bit::FALSE,
    );
    assume_secrets_differ(&mut d, &secret1, &secret2);
    apply_excludes(&mut d, &cfg.excludes, [&ports1, &ports2]);
    let candidates = if cfg.with_candidates {
        relational_candidates(&mut d)
    } else {
        Vec::new()
    };
    pre.finish(&mut d, cfg.contract, &cpu.isa, [&ports1, &ports2]);
    shared.seal(&mut d);
    SafetyCheck {
        aig: d.finish(),
        candidates,
    }
}

/// Builds the LEAVE-style instance (§7.1.3): two copies of the design with
/// the contract constraint enforced by a *direct per-cycle comparison* of
/// commit records — the formulation LEAVE uses, which handles the
/// §5.2 requirements "in a limited way for in-order processors" only. On
/// in-order cores the two copies commit in lockstep under the constraint,
/// so the comparison is sound and the relational equality candidates are
/// inductive; on out-of-order cores commit-time skew makes the naive
/// comparison (and the candidates) collapse — reproducing LEAVE's
/// false-counterexample / UNKNOWN behaviour.
pub(crate) fn leave_instance(cfg: &InstanceConfig) -> SafetyCheck {
    let cpu = cfg.cpu_config();
    cpu.validate();
    let mut d = Design::new(format!("leave:{}", cfg.design.name()));
    let shared = SharedMem::new(&mut d, &cpu.isa);
    d.push_scope("cpu1");
    let secret1 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();
    d.push_scope("cpu2");
    let secret2 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();
    let ports1 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu1",
        &shared,
        &secret1,
        Bit::TRUE,
        Bit::FALSE,
    );
    let ports2 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu2",
        &shared,
        &secret2,
        Bit::TRUE,
        Bit::FALSE,
    );
    assume_secrets_differ(&mut d, &secret1, &secret2);
    apply_excludes(&mut d, &cfg.excludes, [&ports1, &ports2]);
    // Naive cycle-aligned contract constraint: records compared slot-wise
    // on cycles where both machines commit. (Sound only when the machines
    // stay commit-aligned — true for in-order cores under the constraint,
    // the limitation §7.1.3 describes.)
    for (c1, c2) in ports1.commits.iter().zip(&ports2.commits) {
        let r1 = extract_record(&mut d, cfg.contract, &cpu.isa, c1);
        let r2 = extract_record(&mut d, cfg.contract, &cpu.isa, c2);
        let both = d.and_bit(c1.valid, c2.valid);
        let req = d.eq(&r1, &r2);
        let ok = d.implies_bit(both, req);
        d.assume(ok);
    }
    let diff = crate::shadow::uarch_trace_diff(&mut d, &ports1, &ports2);
    d.assert_always("no_leakage", diff.not());
    let candidates = relational_candidates(&mut d);
    shared.seal(&mut d);
    SafetyCheck {
        aig: d.finish(),
        candidates,
    }
}

/// Builds the baseline instance (Fig. 1a): two single-cycle machines run
/// the contract constraint check in lockstep while two copies of the
/// design are checked for microarchitectural divergence cycle by cycle.
pub(crate) fn baseline_instance(cfg: &InstanceConfig) -> SafetyCheck {
    let cpu = cfg.cpu_config();
    cpu.validate();
    let mut d = Design::new(format!("baseline:{}", cfg.design.name()));
    let shared = SharedMem::new(&mut d, &cpu.isa);
    d.push_scope("cpu1");
    let secret1 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();
    d.push_scope("cpu2");
    let secret2 = SecretMem::new(&mut d, &cpu.isa);
    d.pop_scope();

    // The two single-cycle (ISA) machines share each side's secret.
    let isa1 = build_single_cycle(&mut d, &cpu.isa, "isa1", &shared, &secret1, Bit::TRUE);
    let isa2 = build_single_cycle(&mut d, &cpu.isa, "isa2", &shared, &secret2, Bit::TRUE);
    let ports1 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu1",
        &shared,
        &secret1,
        Bit::TRUE,
        Bit::FALSE,
    );
    let ports2 = build_machine(
        &mut d,
        cfg.design,
        &cpu,
        "cpu2",
        &shared,
        &secret2,
        Bit::TRUE,
        Bit::FALSE,
    );
    assume_secrets_differ(&mut d, &secret1, &secret2);
    apply_excludes(&mut d, &cfg.excludes, [&ports1, &ports2]);

    // Contract constraint check: the ISA machines execute in lockstep, so
    // their O_ISA records are compared directly each cycle (§4.1).
    let r1 = extract_record(&mut d, cfg.contract, &cpu.isa, &isa1.commits[0]);
    let r2 = extract_record(&mut d, cfg.contract, &cpu.isa, &isa2.commits[0]);
    let eq = d.eq(&r1, &r2);
    d.assume(eq);

    // Leakage assertion check: O_uarch traces equal cycle by cycle.
    let diff = crate::shadow::uarch_trace_diff(&mut d, &ports1, &ports2);
    d.assert_always("no_leakage", diff.not());

    let candidates = if cfg.with_candidates {
        relational_candidates(&mut d)
    } else {
        Vec::new()
    };
    shared.seal(&mut d);
    SafetyCheck {
        aig: d.finish(),
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_names() {
        assert_eq!(DesignKind::SimpleOoo(Defense::None).name(), "SimpleOoO");
        assert_eq!(
            DesignKind::SimpleOoo(Defense::DelaySpectre).name(),
            "SimpleOoO-S"
        );
        assert!(DesignKind::BigOoo.name().contains("BOOM"));
    }

    #[test]
    fn shadow_instance_builds_for_all_designs() {
        for design in [
            DesignKind::InOrder,
            DesignKind::SimpleOoo(Defense::None),
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            DesignKind::SimpleOoo(Defense::DomSpectre),
            DesignKind::SuperOoo,
            DesignKind::BigOoo,
        ] {
            for contract in Contract::ALL {
                let task = shadow_instance(&InstanceConfig::new(design, contract));
                assert!(task.aig.validate().is_ok(), "{design:?}");
                assert!(
                    task.aig
                        .bads()
                        .iter()
                        .any(|b| b.name.contains("no_leakage")),
                    "{design:?}"
                );
                assert!(!task.candidates.is_empty(), "{design:?}");
            }
        }
    }

    #[test]
    fn baseline_instance_builds() {
        let task = baseline_instance(&InstanceConfig::new(
            DesignKind::SimpleOoo(Defense::None),
            Contract::Sandboxing,
        ));
        assert!(task.aig.validate().is_ok());
        // Four machines' worth of latches plus shared memory.
        assert!(task.aig.num_latches() > 300);
    }

    #[test]
    fn shadow_eliminates_the_isa_machines() {
        // The structural claim of §4.2: the shadow instance contains two
        // machines, the baseline four. (At MiniISA scale the monitor state
        // offsets the tiny ISA machines in raw latch count — the paper's
        // advantage shows up in proof hardness, see the table2 benchmark —
        // but the machine count is directly visible in the latch names.)
        let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
        let shadow = shadow_instance(&cfg);
        let baseline = baseline_instance(&cfg);
        let has_prefix =
            |aig: &csl_hdl::Aig, p: &str| aig.latches().iter().any(|l| l.name.starts_with(p));
        assert!(!has_prefix(&shadow.aig, "isa1."));
        assert!(!has_prefix(&shadow.aig, "isa2."));
        assert!(has_prefix(&baseline.aig, "isa1."));
        assert!(has_prefix(&baseline.aig, "isa2."));
        assert!(has_prefix(&shadow.aig, "shadow."));
    }

    #[test]
    fn candidates_exclude_secrets() {
        let task = shadow_instance(&InstanceConfig::new(
            DesignKind::SimpleOoo(Defense::None),
            Contract::Sandboxing,
        ));
        assert!(task.candidates.iter().all(|c| !c.name.contains("dmem_sec")));
    }
}

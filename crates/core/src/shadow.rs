//! Contract Shadow Logic — the paper's contribution (§5).
//!
//! Given two copies of a processor (same program, same public data,
//! different secrets), the shadow logic performs both halves of the
//! software-hardware contract check on the pair itself, eliminating the
//! baseline's two single-cycle machines:
//!
//! * **ISA-trace extraction** (§5.1): commit-port records enter per-machine
//!   skid FIFOs; popped pairs are compared under `assume`, enforcing the
//!   contract constraint check on the *committed* instruction stream.
//! * **Phase 1 → phase 2** (§5.3): the first microarchitectural trace
//!   divergence (commit timing or memory-bus address) latches `phase2`.
//! * **Synchronisation requirement** (§5.2.2): in phase 2 the machine whose
//!   record FIFO runs ahead is paused by gating its registers — the
//!   Listing 1 `pause ? 0 : clk` clock trick — re-aligning the derived ISA
//!   traces.
//! * **Instruction-inclusion requirement** (§5.2.1): at the phase
//!   transition the shadow snapshots each machine's in-flight instruction
//!   count and counts commits + squash drops until the snapshot is
//!   drained, covering every instruction whose side effects the leakage
//!   check already observed (including the "recorded tail is squashed"
//!   case — squashed instructions never commit and need no contract
//!   check).
//! * **Leakage assertion**: bad = phase2 ∧ both drained ∧ both FIFOs empty —
//!   a divergence that survives a completed contract constraint check.
//!
//! The two requirements can be individually disabled through
//! [`ShadowOptions`] to reproduce the §5.2 failure modes (ablation
//! benchmark): without synchronisation the FIFOs overflow (their overflow
//! assertion fires — a false counterexample); without drain tracking the
//! assertion fires before in-flight bound-to-commit instructions were
//! checked, again yielding false counterexamples on secure designs.

use csl_contracts::Contract;
use csl_cpu::CpuPorts;
use csl_hdl::{Bit, Design, Init, Reg, Word};
use csl_isa::IsaConfig;

use crate::fifo::RecordFifo;
use crate::record::extract_record;

/// Construction options (ablation knobs; defaults = the paper's scheme).
#[derive(Clone, Copy, Debug)]
pub struct ShadowOptions {
    /// Enforce the synchronisation requirement (phase-2 pausing).
    pub enable_sync: bool,
    /// Enforce the instruction-inclusion requirement (drain tracking).
    pub enable_drain: bool,
    /// FIFO depth override (0 = automatic from commit width).
    pub fifo_depth: usize,
}

impl Default for ShadowOptions {
    fn default() -> Self {
        ShadowOptions {
            enable_sync: true,
            enable_drain: true,
            fifo_depth: 0,
        }
    }
}

/// Phase-one handle: created *before* the processors so its pause
/// registers can drive their enable inputs (the clock-gating loop of
/// Listing 1 lines 1-2).
pub struct ShadowPre {
    pause: [Reg; 2],
    opts: ShadowOptions,
}

impl ShadowPre {
    /// Allocates the pause registers under scope `shadow`.
    pub fn new(d: &mut Design, opts: ShadowOptions) -> ShadowPre {
        d.push_scope("shadow");
        let pause = [
            d.reg("pause1", 1, Init::Zero),
            d.reg("pause2", 1, Init::Zero),
        ];
        d.pop_scope();
        ShadowPre { pause, opts }
    }

    /// Enable signal for machine `i` (0 or 1): `!pause_i`.
    pub fn enable(&self, i: usize) -> Bit {
        self.pause[i].q().bit(0).not()
    }

    /// Wires the monitor given both machines' ports. Adds all assumes and
    /// the leakage assertion; must be called exactly once.
    pub fn finish(
        self,
        d: &mut Design,
        contract: Contract,
        cfg: &IsaConfig,
        ports: [&CpuPorts; 2],
    ) {
        let opts = self.opts;
        let width = ports[0].commits.len();
        assert_eq!(width, ports[1].commits.len(), "asymmetric commit widths");
        d.push_scope("shadow");

        // ---- microarchitectural trace comparison (O_uarch) ---------------
        let uarch_diff = uarch_trace_diff(d, ports[0], ports[1]);

        let phase2 = d.reg("phase2", 1, Init::Zero);
        let phase2_now = phase2.q().bit(0);
        let phase2_next = d.or_bit(phase2_now, uarch_diff);
        d.set_next(&phase2, Word::from_bit(phase2_next));

        // ---- ISA-trace extraction + comparison (contract constraint) -----
        let depth = if opts.fifo_depth > 0 {
            opts.fifo_depth
        } else {
            RecordFifo::depth_for_width(width)
        };
        let rec_width = csl_contracts::RecordLayout::for_contract(contract, cfg).total_bits();
        // Synthesized observation sets can be empty or degenerate; the
        // layout guarantees at least one (pad) bit so the FIFOs and the
        // popped-pair comparison below stay well-formed.
        assert!(rec_width >= 1, "record layout produced a zero-width record");
        let max_pop = width + 1;
        let mut plans = Vec::new();
        let mut fifos = Vec::new();
        for (i, p) in ports.iter().enumerate() {
            let fifo = RecordFifo::new(d, &format!("fifo{}", i + 1), depth, rec_width);
            let pushes: Vec<(Bit, Word)> = p
                .commits
                .iter()
                .map(|c| {
                    let rec = extract_record(d, contract, cfg, c);
                    // The layout is the single source of truth for the
                    // record width; a mismatch here would silently
                    // truncate observations inside the FIFO.
                    assert_eq!(
                        rec.width(),
                        rec_width,
                        "extracted record width disagrees with the contract layout"
                    );
                    (c.valid, rec)
                })
                .collect();
            let plan = fifo.plan(d, &pushes);
            plans.push(plan);
            fifos.push(fifo);
        }
        // pop_n = min(count1, count2, max_pop)
        let cw = plans[0].eff_count.width().max(plans[1].eff_count.width());
        let c1 = d.resize(&plans[0].eff_count, cw);
        let c2 = d.resize(&plans[1].eff_count, cw);
        let lt = d.ult(&c1, &c2);
        let m = d.mux(lt, &c1, &c2);
        let cap = d.lit(cw, max_pop as u64);
        let over = d.ult(&cap, &m);
        let pop_n = d.mux(over, &cap, &m);
        // Per-lane contract constraint check: popped pairs must be equal.
        for k in 0..max_pop {
            let k_lit = d.lit(cw, k as u64);
            let active = d.ult(&k_lit, &pop_n);
            let eq = d.eq(&plans[0].eff[k], &plans[1].eff[k]);
            let ok = d.implies_bit(active, eq);
            d.assume(ok);
        }
        // FIFO-overflow assertions: reachable only if synchronisation is
        // broken (see module docs).
        d.assert_always("fifo1_no_overflow", plans[0].overflow.not());
        d.assert_always("fifo2_no_overflow", plans[1].overflow.not());

        // ---- synchronisation requirement: phase-2 pausing ----------------
        if opts.enable_sync {
            let ahead1 = d.ult(&c2, &c1);
            let ahead2 = d.ult(&c1, &c2);
            let p1 = d.and_bit(phase2_next, ahead1);
            let p2 = d.and_bit(phase2_next, ahead2);
            d.set_next(&self.pause[0], Word::from_bit(p1));
            d.set_next(&self.pause[1], Word::from_bit(p2));
        } else {
            let zero = d.lit(1, 0);
            d.set_next(&self.pause[0], zero.clone());
            d.set_next(&self.pause[1], zero);
        }

        // ---- instruction-inclusion requirement: drain tracking ------------
        let iw = ports[0]
            .inflight
            .width()
            .max(ports[1].inflight.width())
            .max(ports[0].resolved.width())
            .max(ports[1].resolved.width());
        let mut drained_bits: Vec<Bit> = Vec::new();
        for (i, p) in ports.iter().enumerate() {
            let remaining = d.reg(&format!("remaining{}", i + 1), iw, Init::Zero);
            let inflight = d.resize(&p.inflight, iw);
            let resolved = d.resize(&p.resolved, iw);
            // Saturating subtraction from either the live occupancy
            // (phase 1: continuously re-snapshot) or the tracked remainder
            // (phase 2: drain).
            let base = d.mux(phase2_now, &remaining.q(), &inflight);
            let exhausted = d.ule(&base, &resolved);
            let sub = d.sub(&base, &resolved);
            let zero = d.lit(iw, 0);
            let nxt = d.mux(exhausted, &zero, &sub);
            d.set_next(&remaining, nxt);
            drained_bits.push(if opts.enable_drain {
                d.is_zero(&remaining.q())
            } else {
                Bit::TRUE
            });
        }

        // ---- leakage assertion ---------------------------------------------
        let empty1 = d.is_zero(&fifos[0].stored_count());
        let empty2 = d.is_zero(&fifos[1].stored_count());
        let bad = d.all(&[phase2_now, drained_bits[0], drained_bits[1], empty1, empty2]);
        d.assert_always("no_leakage", bad.not());

        // Seal the FIFOs.
        for (fifo, plan) in fifos.into_iter().zip(&plans) {
            fifo.commit(d, plan, &pop_n, max_pop);
        }

        // Probes for attack listings.
        d.probe("uarch_diff", &Word::from_bit(uarch_diff));
        let ph = phase2.q();
        d.probe("phase2", &ph);
        d.probe("pop_n", &pop_n);
        d.pop_scope();
    }
}

/// The microarchitectural observation comparison (`O_uarch`, §2.2): commit
/// timing (per-slot valid bits) and the memory-bus address sequence.
/// Shared by the shadow and baseline schemes.
pub fn uarch_trace_diff(d: &mut Design, a: &CpuPorts, b: &CpuPorts) -> Bit {
    let mut diffs: Vec<Bit> = Vec::new();
    for (ca, cb) in a.commits.iter().zip(&b.commits) {
        diffs.push(d.xor_bit(ca.valid, cb.valid));
    }
    diffs.push(d.xor_bit(a.bus_valid, b.bus_valid));
    let both_bus = d.and_bit(a.bus_valid, b.bus_valid);
    let addr_ne = d.ne(&a.bus_addr, &b.bus_addr);
    diffs.push(d.and_bit(both_bus, addr_ne));
    d.any(&diffs)
}

//! RTL-side `O_ISA` record extraction — the §5.1 shadow metadata readout.
//!
//! The shadow logic monitors the commit ports and packs, per committed
//! instruction, exactly the fields the contract's observation function
//! names. The packing order is defined once in
//! [`csl_contracts::RecordLayout`] (atom-driven, shared with the ISA-side
//! projection), so the RTL extraction and the interpreter agree by
//! construction (tested in `tests/record_agreement.rs`).

use csl_contracts::{Contract, RecordLayout};
use csl_cpu::CommitPort;
use csl_hdl::{Design, Word};
use csl_isa::IsaConfig;

/// Packs one commit port's fields into the contract's record word.
pub fn extract_record(
    d: &mut Design,
    contract: Contract,
    cfg: &IsaConfig,
    port: &CommitPort,
) -> Word {
    let layout = RecordLayout::for_contract(contract, cfg);
    let mut parts: Vec<Word> = Vec::new();
    for &(name, width) in layout.fields() {
        let w = match name {
            "is_load" | "is_mem" => Word::from_bit(port.is_load),
            "load_data" => {
                let zero = d.lit(width, 0);
                let v = d.resize(&port.value, width);
                d.mux(port.is_load, &v, &zero)
            }
            // `port.mem_word` is the accessed word address, zero when the
            // slot is not a (non-faulting) load — which on MiniISA (no
            // stores) is also exactly the load-address observation.
            "mem_word" | "load_addr" => d.resize(&port.mem_word, width),
            "exception" => d.resize(&port.exception, width),
            "is_branch" => Word::from_bit(port.is_branch),
            "br_taken" => Word::from_bit(port.taken),
            "is_mul" => Word::from_bit(port.is_mul),
            "mul_a" => d.resize(&port.mul_a, width),
            "mul_b" => d.resize(&port.mul_b, width),
            // MiniISA has no stores: the access-kind observation is a
            // constant, and a layout with no material fields carries one
            // constant pad bit (records trivially equal).
            "mem_is_store" | "pad" => d.lit(width, 0),
            other => panic!("unknown record field {other}"),
        };
        assert_eq!(w.width(), width, "field {name} width mismatch");
        parts.push(w);
    }
    let mut out = parts[0].clone();
    for p in &parts[1..] {
        out = out.concat(p);
    }
    assert_eq!(out.width(), layout.total_bits());
    out
}

/// A record layout too wide for the `u64` cross-check packer. The RTL
/// path (arbitrary-width [`Word`]s) is unaffected; only the software
/// packing used by the agreement tests and counterexample analysis has
/// this limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordTooWide {
    /// The layout's total width in bits (> 64).
    pub total_bits: usize,
}

impl std::fmt::Display for RecordTooWide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record layout is {} bits, exceeding the 64-bit packing limit",
            self.total_bits
        )
    }
}

impl std::error::Error for RecordTooWide {}

/// Packs an ISA-side record ([`csl_contracts::IsaRecord`]) into the same
/// bit layout, for cross-checking RTL extraction against the interpreter.
/// Synthesized atom sets can exceed 64 bits (e.g. every atom at a large
/// `xlen`), which a silent `u64` pack would truncate — that case is a
/// typed [`RecordTooWide`] error instead.
pub fn pack_isa_record(
    contract: Contract,
    cfg: &IsaConfig,
    rec: &csl_contracts::IsaRecord,
) -> Result<u64, RecordTooWide> {
    let layout = RecordLayout::for_contract(contract, cfg);
    if !layout.fits_u64() {
        return Err(RecordTooWide {
            total_bits: layout.total_bits(),
        });
    }
    let mut out = 0u64;
    let mut shift = 0;
    for (&(_, width), &value) in layout.fields().iter().zip(&rec.values) {
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        out |= (value as u64 & mask) << shift;
        shift += width;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_contracts::{ObsAtom, ObsSet};

    #[test]
    fn pack_rejects_over_wide_layouts() {
        // Every atom at the maximum xlen with MUL on: way past 64 bits.
        let cfg = IsaConfig {
            xlen: 16,
            dmem_size: 4096,
            enable_mul: true,
            ..IsaConfig::default()
        };
        let contract = Contract::Custom(ObsSet::full());
        let layout = RecordLayout::for_contract(contract, &cfg);
        assert!(!layout.fits_u64());
        let rec = csl_contracts::IsaRecord {
            values: vec![0; layout.fields().len()],
        };
        assert_eq!(
            pack_isa_record(contract, &cfg, &rec),
            Err(RecordTooWide {
                total_bits: layout.total_bits()
            })
        );
    }

    #[test]
    fn pack_accepts_every_default_config_set() {
        let cfg = IsaConfig::default();
        let contract = Contract::Custom(ObsSet::full());
        assert!(RecordLayout::for_contract(contract, &cfg).fits_u64());
        let layout = RecordLayout::for_contract(contract, &cfg);
        let rec = csl_contracts::IsaRecord {
            values: vec![1; layout.fields().len()],
        };
        assert!(pack_isa_record(contract, &cfg, &rec).is_ok());
    }

    #[test]
    fn pad_field_packs_to_zero() {
        let cfg = IsaConfig::default();
        let contract = Contract::Custom(ObsSet::of(&[ObsAtom::MemIsStore]));
        let rec = csl_contracts::IsaRecord { values: vec![0] };
        assert_eq!(pack_isa_record(contract, &cfg, &rec), Ok(0));
    }
}

//! RTL-side `O_ISA` record extraction — the §5.1 shadow metadata readout.
//!
//! The shadow logic monitors the commit ports and packs, per committed
//! instruction, exactly the fields the contract's observation function
//! names. The packing order is defined once in
//! [`csl_contracts::RecordLayout`], shared with the ISA-side projection, so
//! the RTL extraction and the interpreter agree by construction (tested in
//! `tests/record_agreement.rs`).

use csl_contracts::{Contract, RecordLayout};
use csl_cpu::CommitPort;
use csl_hdl::{Design, Word};
use csl_isa::IsaConfig;

/// Packs one commit port's fields into the contract's record word.
pub fn extract_record(
    d: &mut Design,
    contract: Contract,
    cfg: &IsaConfig,
    port: &CommitPort,
) -> Word {
    let layout = RecordLayout::for_contract(contract, cfg);
    let mut parts: Vec<Word> = Vec::new();
    for &(name, width) in layout.fields() {
        let w = match name {
            "is_load" | "is_mem" => Word::from_bit(port.is_load),
            "load_data" => {
                let zero = d.lit(width, 0);
                let v = d.resize(&port.value, width);
                d.mux(port.is_load, &v, &zero)
            }
            "mem_word" => d.resize(&port.mem_word, width),
            "exception" => d.resize(&port.exception, width),
            "is_branch" => Word::from_bit(port.is_branch),
            "br_taken" => Word::from_bit(port.taken),
            "is_mul" => Word::from_bit(port.is_mul),
            "mul_a" => d.resize(&port.mul_a, width),
            "mul_b" => d.resize(&port.mul_b, width),
            other => panic!("unknown record field {other}"),
        };
        assert_eq!(w.width(), width, "field {name} width mismatch");
        parts.push(w);
    }
    let mut out = parts[0].clone();
    for p in &parts[1..] {
        out = out.concat(p);
    }
    assert_eq!(out.width(), layout.total_bits());
    out
}

/// Packs an ISA-side record ([`csl_contracts::IsaRecord`]) into the same
/// bit layout, for cross-checking RTL extraction against the interpreter.
pub fn pack_isa_record(contract: Contract, cfg: &IsaConfig, rec: &csl_contracts::IsaRecord) -> u64 {
    let layout = RecordLayout::for_contract(contract, cfg);
    let mut out = 0u64;
    let mut shift = 0;
    for (&(_, width), &value) in layout.fields().iter().zip(&rec.values) {
        out |= (value as u64 & ((1 << width) - 1)) << shift;
        shift += width;
    }
    out
}

//! Session-level result cache.
//!
//! Repeated campaigns mostly re-decide cells nothing changed in: the
//! scheme, design, contract, engine options and the instrumented netlist
//! are identical, so the verdict is too. [`ReportCache`] persists
//! [`Report`]s under a cache directory keyed by a stable fingerprint of
//! the *resolved query* — scheme × design × contract × every engine knob
//! × a structural hash of the built netlist (plus its invariant
//! candidates). Hashing the built instance rather than the builder knobs
//! means any change that reaches the netlist — a new defense, a shadow
//! option, an exclusion rule, even an edit to the CPU generators —
//! changes the key and misses the cache.
//!
//! Only *decided* cells (attack or proof) are stored: a timeout or
//! unknown depends on the machine and the budget draw, and caching one
//! would mask a later, luckier run. `Matrix::run_all` consults the cache
//! when one is configured (see `Matrix::cache`); the bench bins expose
//! the `--no-cache` escape hatch.
//!
//! The directory is safe to share between concurrent processes (the
//! `csl-serve` daemon points every worker at one cache): stores write to
//! a tempfile in the cache directory and `rename` it into place, so a
//! reader never observes torn JSON. Hit/miss/store counts are kept per
//! cache handle (shared across clones) and readable via
//! [`ReportCache::stats`].

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use csl_hdl::{Aig, Node};
use csl_mc::{Candidate, CheckOptions, SafetyCheck};

use crate::api::report::Report;

/// A 64-bit FNV-1a hasher; stable across runs and platforms (unlike
/// `std::hash`, whose `Hasher` seeds may vary).
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub fn new() -> Fingerprint {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bool(&mut self, v: bool) {
        self.write(&[v as u8]);
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a netlist: node graph, latch inits and
/// next-state wiring, assumes, named bads.
pub(crate) fn netlist_fingerprint(aig: &Aig) -> u64 {
    let mut h = Fingerprint::new();
    h.usize(aig.num_nodes());
    for n in 0..aig.num_nodes() as u32 {
        match aig.node(csl_hdl::Bit::from_packed(n << 1)) {
            Node::Const => h.u64(0),
            Node::Input(i) => {
                h.u64(1);
                h.u64(i as u64);
            }
            Node::Latch(l) => {
                h.u64(2);
                h.u64(l as u64);
            }
            Node::And(a, b) => {
                h.u64(3);
                h.u64(a.packed() as u64);
                h.u64(b.packed() as u64);
            }
        }
    }
    h.usize(aig.latches().len());
    for l in aig.latches() {
        h.u64(l.output.packed() as u64);
        h.u64(match l.init {
            csl_hdl::Init::Zero => 0,
            csl_hdl::Init::One => 1,
            csl_hdl::Init::Symbolic => 2,
        });
        match l.next {
            Some(next) => {
                h.bool(true);
                h.u64(next.packed() as u64);
            }
            None => h.bool(false),
        }
    }
    h.usize(aig.assumes().len());
    for a in aig.assumes() {
        h.u64(a.packed() as u64);
    }
    h.usize(aig.bads().len());
    for b in aig.bads() {
        h.str(&b.name);
        h.u64(b.bit.packed() as u64);
    }
    h.finish()
}

/// Key for a persisted fuzz corpus: the netlist it was collected on plus
/// the fuzz plan's label (which folds in every coverage knob). A corpus
/// is only replayable against the netlist it was mined from — latch
/// indices in its frontier cubes are positional — so any structural
/// change must miss.
pub(crate) fn corpus_fingerprint(aig: &Aig, label: &str) -> u64 {
    let mut h = Fingerprint::new();
    h.u64(netlist_fingerprint(aig));
    h.str(label);
    h.finish()
}

/// Folds a full verification instance (netlist + invariant candidates)
/// into the hasher.
pub(crate) fn instance_fingerprint(h: &mut Fingerprint, task: &SafetyCheck) {
    h.u64(netlist_fingerprint(&task.aig));
    h.usize(task.candidates.len());
    for Candidate { name, bit } in &task.candidates {
        h.str(name);
        h.u64(bit.packed() as u64);
    }
}

/// Folds every engine knob into the hasher.
pub(crate) fn options_fingerprint(h: &mut Fingerprint, opts: &CheckOptions) {
    h.u64(opts.total_budget.as_nanos() as u64);
    h.usize(opts.bmc_depth);
    h.bool(opts.attack_only);
    h.usize(opts.kind_max_k);
    h.bool(opts.use_pdr);
    h.usize(opts.pdr_max_frames);
    h.bool(opts.keep_probes);
    h.u64(match opts.mode {
        csl_mc::ExecMode::Sequential => 0,
        csl_mc::ExecMode::Portfolio => 1,
    });
    for lane in csl_mc::Lane::ALL {
        let b = opts.lanes.get(lane);
        match b.wall {
            Some(w) => {
                h.bool(true);
                h.u64(w.as_nanos() as u64);
            }
            None => h.bool(false),
        }
        h.usize(b.depth_schedule.len());
        for &d in &b.depth_schedule {
            h.usize(d);
        }
        h.bool(b.exchange.import);
        h.bool(b.exchange.export);
    }
    let x = &opts.exchange;
    h.bool(x.enabled);
    h.usize(x.max_clause_len);
    h.u64(x.max_clause_lbd as u64);
    h.usize(x.max_imports_per_poll);
    h.usize(x.capacity);
    h.bool(x.adaptive);
    let p = &opts.prepare;
    h.bool(p.enabled);
    h.bool(p.coi);
    h.bool(p.const_sweep);
    h.bool(p.dead_latches);
    h.bool(p.compact);
    // Warm-start reuse cannot change a verdict, but it does change the
    // solver-stats block of the report we would cache, so it is part of
    // the key like every other knob.
    h.bool(opts.warm_start);
    // Certificate emission changes the report's certificate block (and
    // whether a cached proof can pass verify-on-load), so it keys too.
    h.bool(opts.certify);
    // Extra lanes (the fuzzing backend) hash through their labels: a
    // LaneFactory's label is required to change whenever the backend it
    // produces does (see its docs), so plan edits miss the cache.
    h.usize(opts.extra_lanes.len());
    for lane in &opts.extra_lanes {
        h.str(lane.label());
    }
}

/// Hit/miss/store counts of a [`ReportCache`] handle, snapshot by
/// [`ReportCache::stats`]. Counters are shared across clones of the
/// handle (workers sharing one cache aggregate into one set) but not
/// across independently-opened handles on the same directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads that found a parsable entry.
    pub hits: u64,
    /// Loads that found nothing (or an unreadable/unparsable entry).
    pub misses: u64,
    /// Stores that actually wrote an entry (undecided reports are
    /// silently skipped and not counted).
    pub stores: u64,
    /// Served entries that failed verify-on-load — the certificate or
    /// witness did not re-check against the freshly built instance — and
    /// were evicted so the cell re-solves (see `Query::run_cached`).
    pub rejected: u64,
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    rejected: AtomicU64,
}

/// A directory of persisted [`Report`]s keyed by query fingerprint,
/// optionally size-capped: with [`ReportCache::with_max_entries`] the
/// oldest entries — least-recently *used*, because a hit refreshes the
/// file's mtime — are pruned after every store until the directory fits.
#[derive(Clone, Debug)]
pub struct ReportCache {
    dir: PathBuf,
    max_entries: Option<usize>,
    counters: Arc<CacheCounters>,
}

impl ReportCache {
    /// Opens (without creating) an unbounded cache rooted at `dir`; the
    /// directory is created lazily on the first store.
    pub fn new(dir: impl Into<PathBuf>) -> ReportCache {
        ReportCache {
            dir: dir.into(),
            max_entries: None,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// The same cache with a size cap: stores prune down to `n` entries,
    /// LRU by file mtime.
    pub fn with_max_entries(mut self, n: usize) -> ReportCache {
        self.max_entries = Some(n);
        self
    }

    /// [`ReportCache::with_max_entries`] with an optional cap (`None` =
    /// unbounded) — the one-liner for callers threading a `--max-entries`
    /// style knob through.
    pub fn with_max_entries_opt(mut self, n: Option<usize>) -> ReportCache {
        self.max_entries = n;
        self
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size cap, if any.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Snapshot of this handle's hit/miss/store counters (shared across
    /// clones of the handle).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the report stored under `key`, if any. Unreadable or
    /// unparsable entries are treated as misses (the cell just reruns).
    /// A hit bumps the entry's mtime so LRU pruning spares it.
    pub fn load(&self, key: u64) -> Option<Report> {
        match self.load_untracked(key) {
            Some(report) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn load_untracked(&self, key: u64) -> Option<Report> {
        let path = self.path_for(key);
        let text = std::fs::read_to_string(&path).ok()?;
        let report = Report::from_json(&text).ok()?;
        // Best-effort recency touch; a read-only cache dir just means
        // eviction degrades from LRU to FIFO.
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
        Some(report)
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entries(&self) -> Vec<(std::time::SystemTime, PathBuf)> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        dir.filter_map(|e| {
            let e = e.ok()?;
            let path = e.path();
            if path.extension().is_none_or(|x| x != "json") {
                return None;
            }
            let mtime = e.metadata().ok()?.modified().ok()?;
            Some((mtime, path))
        })
        .collect()
    }

    /// Removes the oldest entries until at most `cap` remain.
    fn prune_to(&self, cap: usize) {
        let mut entries = self.entries();
        if entries.len() <= cap {
            return;
        }
        entries.sort_by_key(|e| e.0);
        let excess = entries.len() - cap;
        for (_, path) in entries.into_iter().take(excess) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// [`ReportCache::load`] plus the standard cache-hit note — the one
    /// protocol both `Query::run_cached` and `Matrix::run_all` serve
    /// hits through.
    pub(crate) fn serve(&self, key: u64) -> Option<Report> {
        let mut hit = self.load(key)?;
        hit.notes.push(format!("served from cache ({key:016x})"));
        Some(hit)
    }

    /// Evicts the entry under `key` after it failed verify-on-load: the
    /// stored certificate or witness no longer re-checks against the
    /// freshly built instance (a stale schema, a corrupted file, or a
    /// forged entry), so serving it would launder an unaudited verdict.
    /// The caller falls through to a real solve.
    pub fn reject(&self, key: u64) {
        let _ = std::fs::remove_file(self.path_for(key));
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Persists a *decided* report under `key`; timeouts and unknowns are
    /// silently skipped (see the module docs). With a size cap, the
    /// least-recently-used entries are pruned afterwards.
    ///
    /// The write is atomic with respect to concurrent readers: the JSON
    /// goes to a uniquely-named tempfile in the cache directory and is
    /// `rename`d into place, so a parallel [`ReportCache::load`] sees
    /// either the old entry, the new entry, or nothing — never a torn
    /// half-written document.
    pub fn store(&self, key: u64, report: &Report) -> std::io::Result<()> {
        if !(report.verdict.is_attack() || report.verdict.is_proof()) {
            return Ok(());
        }
        std::fs::create_dir_all(&self.dir)?;
        // Unique per process × store: concurrent workers sharing the
        // directory never collide on the tempfile either.
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}-{}.tmp",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, report.to_json())?;
        let renamed = std::fs::rename(&tmp, self.path_for(key));
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.max_entries {
            self.prune_to(cap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    fn counter_aig(width: usize, bad_at: u64) -> Aig {
        let mut d = Design::new("t");
        let r = d.reg("r", width, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let hit = d.eq_const(&r.q(), bad_at);
        d.assert_always("hit", hit.not());
        d.finish()
    }

    #[test]
    fn netlist_fingerprint_is_stable_and_discriminating() {
        let a = netlist_fingerprint(&counter_aig(4, 9));
        let same = netlist_fingerprint(&counter_aig(4, 9));
        let different = netlist_fingerprint(&counter_aig(4, 10));
        assert_eq!(a, same, "identical builds must fingerprint identically");
        assert_ne!(a, different, "a changed constant must change the hash");
    }

    #[test]
    fn options_fingerprint_sees_every_knob() {
        let mut base = Fingerprint::new();
        options_fingerprint(&mut base, &CheckOptions::default());
        let base = base.finish();

        let tweaked = [
            CheckOptions {
                bmc_depth: 21,
                ..CheckOptions::default()
            },
            CheckOptions::default().portfolio(),
            CheckOptions::default().with_exchange(csl_mc::ExchangeConfig::on()),
            CheckOptions::default().with_exchange(csl_mc::ExchangeConfig {
                adaptive: true,
                ..csl_mc::ExchangeConfig::on()
            }),
            CheckOptions::default().with_prepare(csl_mc::PrepareConfig::off()),
            CheckOptions::default().with_prepare(csl_mc::PrepareConfig {
                const_sweep: false,
                ..csl_mc::PrepareConfig::on()
            }),
            CheckOptions {
                lanes: csl_mc::LanePlan::new()
                    .with(csl_mc::Lane::Bmc, csl_mc::LaneBudget::depths(&[2, 4])),
                ..CheckOptions::default()
            },
            CheckOptions::default().warm(true),
            CheckOptions::default().certify(false),
            CheckOptions::default().with_extra_lane(crate::fuzz::fuzz_lane(
                csl_isa::IsaConfig::default(),
                crate::fuzz::FuzzPlan::default(),
            )),
            // Coverage mode reaches the key through the lane label.
            CheckOptions::default().with_extra_lane(crate::fuzz::fuzz_lane(
                csl_isa::IsaConfig::default(),
                crate::fuzz::FuzzPlan::default().coverage(true),
            )),
        ];
        for opts in tweaked {
            let mut h = Fingerprint::new();
            options_fingerprint(&mut h, &opts);
            assert_ne!(h.finish(), base, "{opts:?} must change the key");
        }
    }

    #[test]
    fn cache_stores_only_decided_reports() {
        use csl_contracts::Contract;
        use csl_mc::{ProofEngine, Verdict};

        let dir = std::env::temp_dir().join(format!("csl-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let mut report = Report {
            scheme: crate::Scheme::Leave,
            design: crate::DesignKind::SingleCycle,
            contract: Contract::Sandboxing,
            verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 3 }),
            elapsed: std::time::Duration::from_millis(10),
            notes: vec![],
            exchange: vec![],
            prepare: vec![],
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        };
        assert!(cache.load(1).is_none());
        cache.store(1, &report).unwrap();
        assert_eq!(cache.load(1).unwrap(), report);

        report.verdict = Verdict::Timeout;
        cache.store(2, &report).unwrap();
        assert!(cache.load(2).is_none(), "timeouts are never cached");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_track_hits_misses_and_stores() {
        use csl_contracts::Contract;
        use csl_mc::{ProofEngine, Verdict};

        let dir = std::env::temp_dir().join(format!("csl-cache-stats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let mut report = Report {
            scheme: crate::Scheme::Leave,
            design: crate::DesignKind::SingleCycle,
            contract: Contract::Sandboxing,
            verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 3 }),
            elapsed: std::time::Duration::from_millis(10),
            notes: vec![],
            exchange: vec![],
            prepare: vec![],
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        };
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.load(7).is_none());
        cache.store(7, &report).unwrap();
        assert!(cache.load(7).is_some());
        // A skipped (undecided) store must not count.
        report.verdict = Verdict::Timeout;
        cache.store(8, &report).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        // Clones share the counter set.
        let clone = cache.clone();
        assert!(clone.load(7).is_some());
        assert_eq!(cache.stats().hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_never_expose_torn_entries() {
        use csl_contracts::Contract;
        use csl_mc::{ProofEngine, Verdict};

        let dir = std::env::temp_dir().join(format!("csl-cache-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = Report {
            scheme: crate::Scheme::Leave,
            design: crate::DesignKind::SingleCycle,
            contract: Contract::Sandboxing,
            verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 3 }),
            // Enough notes to make the document big enough that a
            // non-atomic write would be observably torn.
            elapsed: std::time::Duration::from_millis(10),
            notes: (0..64).map(|i| format!("filler note {i}")).collect(),
            exchange: vec![],
            prepare: vec![],
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        };
        let key = 0x42u64;
        let cache = ReportCache::new(&dir);
        cache.store(key, &report).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cache = cache.clone();
                let report = &report;
                scope.spawn(move || {
                    for _ in 0..100 {
                        cache.store(key, report).unwrap();
                    }
                });
            }
            let reader = ReportCache::new(&dir);
            scope.spawn(move || {
                for _ in 0..300 {
                    // The entry exists for the whole loop; with atomic
                    // rename-into-place every read parses.
                    assert!(
                        reader.load(key).is_some(),
                        "reader observed a torn or missing entry"
                    );
                }
            });
        });
        assert_eq!(cache.stats().stores, 301);
        // No tempfile debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_evicts_least_recently_used() {
        use csl_contracts::Contract;
        use csl_mc::{ProofEngine, Verdict};
        use std::time::{Duration, SystemTime};

        let dir = std::env::temp_dir().join(format!("csl-cache-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = Report {
            scheme: crate::Scheme::Leave,
            design: crate::DesignKind::SingleCycle,
            contract: Contract::Sandboxing,
            verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 3 }),
            elapsed: std::time::Duration::from_millis(10),
            notes: vec![],
            exchange: vec![],
            prepare: vec![],
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        };
        let unbounded = ReportCache::new(&dir);
        // Three entries with strictly increasing (old) mtimes so the
        // LRU order is unambiguous regardless of filesystem timestamp
        // granularity.
        let old = SystemTime::now() - Duration::from_secs(3600);
        for key in 1..=3u64 {
            unbounded.store(key, &report).unwrap();
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(format!("{key:016x}.json")))
                .unwrap();
            f.set_modified(old + Duration::from_secs(key)).unwrap();
        }
        let capped = ReportCache::new(&dir).with_max_entries(3);
        assert_eq!(capped.max_entries(), Some(3));
        // A hit refreshes entry 1, making entry 2 the LRU victim.
        assert!(capped.load(1).is_some());
        capped.store(4, &report).unwrap();
        assert_eq!(capped.len(), 3);
        assert!(capped.load(2).is_none(), "LRU entry must be evicted");
        assert!(capped.load(1).is_some(), "recently-hit entry survives");
        assert!(capped.load(3).is_some());
        assert!(capped.load(4).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

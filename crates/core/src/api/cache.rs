//! Session-level result cache.
//!
//! Repeated campaigns mostly re-decide cells nothing changed in: the
//! scheme, design, contract, engine options and the instrumented netlist
//! are identical, so the verdict is too. [`ReportCache`] persists
//! [`Report`]s under a cache directory keyed by a stable fingerprint of
//! the *resolved query* — scheme × design × contract × every engine knob
//! × a structural hash of the built netlist (plus its invariant
//! candidates). Hashing the built instance rather than the builder knobs
//! means any change that reaches the netlist — a new defense, a shadow
//! option, an exclusion rule, even an edit to the CPU generators —
//! changes the key and misses the cache.
//!
//! Only *decided* cells (attack or proof) are stored: a timeout or
//! unknown depends on the machine and the budget draw, and caching one
//! would mask a later, luckier run. `Matrix::run_all` consults the cache
//! when one is configured (see `Matrix::cache`); the bench bins expose
//! the `--no-cache` escape hatch.

use std::path::{Path, PathBuf};

use csl_hdl::{Aig, Node};
use csl_mc::{Candidate, CheckOptions, SafetyCheck};

use crate::api::report::Report;

/// A 64-bit FNV-1a hasher; stable across runs and platforms (unlike
/// `std::hash`, whose `Hasher` seeds may vary).
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub fn new() -> Fingerprint {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bool(&mut self, v: bool) {
        self.write(&[v as u8]);
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a netlist: node graph, latch inits and
/// next-state wiring, assumes, named bads.
pub(crate) fn netlist_fingerprint(aig: &Aig) -> u64 {
    let mut h = Fingerprint::new();
    h.usize(aig.num_nodes());
    for n in 0..aig.num_nodes() as u32 {
        match aig.node(csl_hdl::Bit::from_packed(n << 1)) {
            Node::Const => h.u64(0),
            Node::Input(i) => {
                h.u64(1);
                h.u64(i as u64);
            }
            Node::Latch(l) => {
                h.u64(2);
                h.u64(l as u64);
            }
            Node::And(a, b) => {
                h.u64(3);
                h.u64(a.packed() as u64);
                h.u64(b.packed() as u64);
            }
        }
    }
    h.usize(aig.latches().len());
    for l in aig.latches() {
        h.u64(l.output.packed() as u64);
        h.u64(match l.init {
            csl_hdl::Init::Zero => 0,
            csl_hdl::Init::One => 1,
            csl_hdl::Init::Symbolic => 2,
        });
        match l.next {
            Some(next) => {
                h.bool(true);
                h.u64(next.packed() as u64);
            }
            None => h.bool(false),
        }
    }
    h.usize(aig.assumes().len());
    for a in aig.assumes() {
        h.u64(a.packed() as u64);
    }
    h.usize(aig.bads().len());
    for b in aig.bads() {
        h.str(&b.name);
        h.u64(b.bit.packed() as u64);
    }
    h.finish()
}

/// Folds a full verification instance (netlist + invariant candidates)
/// into the hasher.
pub(crate) fn instance_fingerprint(h: &mut Fingerprint, task: &SafetyCheck) {
    h.u64(netlist_fingerprint(&task.aig));
    h.usize(task.candidates.len());
    for Candidate { name, bit } in &task.candidates {
        h.str(name);
        h.u64(bit.packed() as u64);
    }
}

/// Folds every engine knob into the hasher.
pub(crate) fn options_fingerprint(h: &mut Fingerprint, opts: &CheckOptions) {
    h.u64(opts.total_budget.as_nanos() as u64);
    h.usize(opts.bmc_depth);
    h.bool(opts.attack_only);
    h.usize(opts.kind_max_k);
    h.bool(opts.use_pdr);
    h.usize(opts.pdr_max_frames);
    h.bool(opts.keep_probes);
    h.u64(match opts.mode {
        csl_mc::ExecMode::Sequential => 0,
        csl_mc::ExecMode::Portfolio => 1,
    });
    for lane in csl_mc::Lane::ALL {
        let b = opts.lanes.get(lane);
        match b.wall {
            Some(w) => {
                h.bool(true);
                h.u64(w.as_nanos() as u64);
            }
            None => h.bool(false),
        }
        h.usize(b.depth_schedule.len());
        for &d in &b.depth_schedule {
            h.usize(d);
        }
        h.bool(b.exchange.import);
        h.bool(b.exchange.export);
    }
    let x = &opts.exchange;
    h.bool(x.enabled);
    h.usize(x.max_clause_len);
    h.u64(x.max_clause_lbd as u64);
    h.usize(x.max_imports_per_poll);
    h.usize(x.capacity);
}

/// A directory of persisted [`Report`]s keyed by query fingerprint.
#[derive(Clone, Debug)]
pub struct ReportCache {
    dir: PathBuf,
}

impl ReportCache {
    /// Opens (without creating) a cache rooted at `dir`; the directory is
    /// created lazily on the first store.
    pub fn new(dir: impl Into<PathBuf>) -> ReportCache {
        ReportCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the report stored under `key`, if any. Unreadable or
    /// unparsable entries are treated as misses (the cell just reruns).
    pub fn load(&self, key: u64) -> Option<Report> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        Report::from_json(&text).ok()
    }

    /// [`ReportCache::load`] plus the standard cache-hit note — the one
    /// protocol both `Query::run_cached` and `Matrix::run_all` serve
    /// hits through.
    pub(crate) fn serve(&self, key: u64) -> Option<Report> {
        let mut hit = self.load(key)?;
        hit.notes.push(format!("served from cache ({key:016x})"));
        Some(hit)
    }

    /// Persists a *decided* report under `key`; timeouts and unknowns are
    /// silently skipped (see the module docs).
    pub fn store(&self, key: u64, report: &Report) -> std::io::Result<()> {
        if !(report.verdict.is_attack() || report.verdict.is_proof()) {
            return Ok(());
        }
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(self.path_for(key), report.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    fn counter_aig(width: usize, bad_at: u64) -> Aig {
        let mut d = Design::new("t");
        let r = d.reg("r", width, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let hit = d.eq_const(&r.q(), bad_at);
        d.assert_always("hit", hit.not());
        d.finish()
    }

    #[test]
    fn netlist_fingerprint_is_stable_and_discriminating() {
        let a = netlist_fingerprint(&counter_aig(4, 9));
        let same = netlist_fingerprint(&counter_aig(4, 9));
        let different = netlist_fingerprint(&counter_aig(4, 10));
        assert_eq!(a, same, "identical builds must fingerprint identically");
        assert_ne!(a, different, "a changed constant must change the hash");
    }

    #[test]
    fn options_fingerprint_sees_every_knob() {
        let mut base = Fingerprint::new();
        options_fingerprint(&mut base, &CheckOptions::default());
        let base = base.finish();

        let tweaked = [
            CheckOptions {
                bmc_depth: 21,
                ..CheckOptions::default()
            },
            CheckOptions::default().portfolio(),
            CheckOptions::default().with_exchange(csl_mc::ExchangeConfig::on()),
            CheckOptions {
                lanes: csl_mc::LanePlan::new()
                    .with(csl_mc::Lane::Bmc, csl_mc::LaneBudget::depths(&[2, 4])),
                ..CheckOptions::default()
            },
        ];
        for opts in tweaked {
            let mut h = Fingerprint::new();
            options_fingerprint(&mut h, &opts);
            assert_ne!(h.finish(), base, "{opts:?} must change the key");
        }
    }

    #[test]
    fn cache_stores_only_decided_reports() {
        use csl_contracts::Contract;
        use csl_mc::{ProofEngine, Verdict};

        let dir = std::env::temp_dir().join(format!("csl-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let mut report = Report {
            scheme: crate::Scheme::Leave,
            design: crate::DesignKind::SingleCycle,
            contract: Contract::Sandboxing,
            verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 3 }),
            elapsed: std::time::Duration::from_millis(10),
            notes: vec![],
            exchange: vec![],
        };
        assert!(cache.load(1).is_none());
        cache.store(1, &report).unwrap();
        assert_eq!(cache.load(1).unwrap(), report);

        report.verdict = Verdict::Timeout;
        cache.store(2, &report).unwrap();
        assert!(cache.load(2).is_none(), "timeouts are never cached");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

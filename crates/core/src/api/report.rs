//! Structured, persistable verification reports.
//!
//! [`Report`] is one verified cell (scheme × design × contract → verdict)
//! and [`CampaignReport`] a whole matrix; both serialize to a stable JSON
//! shape (`csl-report-v1` / `csl-campaign-v1`) and a flat CSV so CI can
//! archive a run and diff it against another commit's. The JSON writer is
//! canonical: parsing a report and re-serializing it reproduces the input
//! byte for byte, which is what makes archived artifacts diffable with
//! plain line tools.
//!
//! [`CampaignReport::diff`] is the regression gate: it pairs cells across
//! two runs and flags every verdict change, marking as regressions the
//! changes that lose a decisive verdict (a proof or attack that became a
//! timeout/unknown) or flip one decisive kind into the other.

use std::collections::HashMap;
use std::time::Duration;

use csl_contracts::Contract;
use csl_hdl::xform::{PassStats, Shape};
use csl_mc::{
    CertKind, Certificate, CheckReport, CoverageStats, ExchangeStats, FuzzStats,
    InconclusiveReason, Lane, LaneSolverStats, ProofEngine, Trace, Verdict,
};

use crate::api::json::{Json, JsonError};
use crate::harness::DesignKind;
use crate::verify::Scheme;

/// Failure reading a persisted report: malformed JSON or a document that
/// parses but does not match the report schema.
#[derive(Debug)]
pub enum ReadError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON does not have the expected report shape.
    Schema(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Json(e) => write!(f, "{e}"),
            ReadError::Schema(msg) => write!(f, "report schema error: {msg}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<JsonError> for ReadError {
    fn from(e: JsonError) -> ReadError {
        ReadError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, ReadError> {
    Err(ReadError::Schema(msg.into()))
}

/// One finished verification cell: the query identity plus the verdict,
/// wall time, and the engines' notes.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub scheme: Scheme,
    pub design: DesignKind,
    pub contract: Contract,
    pub verdict: Verdict,
    pub elapsed: Duration,
    /// Engine-by-engine notes (sizes, intermediate outcomes).
    pub notes: Vec<String>,
    /// Per-lane exchange-bus traffic (empty when the clause/lemma
    /// exchange was off or the cell ran sequentially).
    pub exchange: Vec<ExchangeStats>,
    /// Per-pass node/latch reduction statistics from instance
    /// preparation (empty when preparation was off or the document
    /// predates the field).
    pub prepare: Vec<PassStats>,
    /// Fuzzing-lane campaign statistics (`None` when no fuzzing lane
    /// ran or the document predates the field).
    pub fuzz: Option<FuzzStats>,
    /// Coverage-guided fuzzing accounting (`None` when the fuzzing lane
    /// ran blind, no fuzzing lane ran, or the document predates the
    /// field).
    pub coverage: Option<CoverageStats>,
    /// Per-lane solver activity and warm-start hit/miss accounting
    /// (empty when no SAT lane reported or the document predates the
    /// field).
    pub solver: Vec<LaneSolverStats>,
    /// The proof's checkable certificate in raw-netlist vocabulary
    /// (`None` for non-proof verdicts, certificate emission disabled,
    /// proofs built from imported cross-lane facts, or documents that
    /// predate the field). Re-validate with `csl_certify`.
    pub certificate: Option<Certificate>,
}

impl Report {
    /// Wraps an engine-level [`CheckReport`] with its query identity.
    pub fn from_check(
        scheme: Scheme,
        design: DesignKind,
        contract: Contract,
        check: CheckReport,
    ) -> Report {
        Report {
            scheme,
            design,
            contract,
            verdict: check.verdict,
            elapsed: check.elapsed,
            notes: check.notes,
            exchange: check.exchange,
            prepare: check.prepare,
            fuzz: check.fuzz,
            coverage: check.coverage,
            solver: check.solver,
            certificate: check.certificate,
        }
    }

    /// `Scheme/Design/contract` label for tables and diffs.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.scheme.name(),
            self.design.name(),
            self.contract.name()
        )
    }

    /// Short verdict cell text ("CEX", "PROOF", "T/O", "UNK").
    pub fn cell(&self) -> &'static str {
        self.verdict.cell()
    }

    /// Serializes to the canonical `csl-report-v1` JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a document written by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, ReadError> {
        Report::from_value(&Json::parse(text)?)
    }

    /// CSV header matching [`Report::csv_row`].
    pub fn csv_header() -> &'static str {
        "scheme,design,contract,verdict,detail,elapsed_ms"
    }

    /// One flat CSV row (quoted where needed).
    pub fn csv_row(&self) -> String {
        let detail = match &self.verdict {
            Verdict::Attack(t) => format!("depth {} bad {}", t.depth(), t.bad_name),
            Verdict::Proof(p) => proof_detail(p),
            Verdict::Timeout => String::new(),
            Verdict::Unknown { reason } => reason.to_string(),
        };
        [
            csv_field(self.scheme.name()),
            csv_field(&self.design.name()),
            csv_field(&self.contract.name()),
            csv_field(self.cell()),
            csv_field(&detail),
            self.elapsed.as_millis().to_string(),
        ]
        .join(",")
    }

    /// The report as a [`Json`] value — the embedding form used when a
    /// report travels inside a larger document (the `csl-serve` wire
    /// protocol nests reports in its `update` messages and journal
    /// lines). [`Report::to_json`] is `to_value().render()`.
    pub fn to_value(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::Str("csl-report-v1".into())),
            ("scheme", Json::Str(self.scheme.name().into())),
            ("design", Json::Str(self.design.name())),
            ("contract", Json::Str(self.contract.name())),
            ("verdict", verdict_to_value(&self.verdict)),
            ("elapsed", duration_to_value(self.elapsed)),
            (
                "exchange",
                Json::Arr(self.exchange.iter().map(exchange_to_value).collect()),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
            (
                "prepare",
                Json::Arr(self.prepare.iter().map(pass_stats_to_value).collect()),
            ),
        ];
        // Written only when a fuzzing lane ran, so fuzz-free documents
        // stay byte-identical to pre-fuzz ones.
        if let Some(fuzz) = &self.fuzz {
            pairs.push(("fuzz", fuzz_to_value(fuzz)));
        }
        // Same convention for coverage: written only when the fuzzing
        // lane ran coverage-guided, so blind-campaign documents stay
        // byte-identical to pre-coverage ones.
        if let Some(coverage) = &self.coverage {
            pairs.push(("coverage", coverage_to_value(coverage)));
        }
        // Same convention for solver stats: written only when a SAT lane
        // reported, so warm-start-free documents stay byte-identical.
        if !self.solver.is_empty() {
            pairs.push((
                "solver",
                Json::Arr(self.solver.iter().map(solver_to_value).collect()),
            ));
        }
        // And for the certificate: written only alongside a proof that
        // carries one, so certificate-free documents stay byte-identical.
        if let Some(cert) = &self.certificate {
            pairs.push(("certificate", cert_to_value(cert)));
        }
        Json::obj(pairs)
    }

    /// Parses an embedded report value (inverse of [`Report::to_value`]).
    pub fn from_value(v: &Json) -> Result<Report, ReadError> {
        match v.get("schema").and_then(Json::as_str) {
            Some("csl-report-v1") => {}
            other => return schema_err(format!("unsupported report schema {other:?}")),
        }
        let scheme = parse_with("scheme", v, Scheme::from_name)?;
        let design = parse_with("design", v, DesignKind::from_name)?;
        let contract = parse_with("contract", v, Contract::from_name)?;
        let verdict = verdict_from_value(
            v.get("verdict")
                .ok_or_else(|| ReadError::Schema("missing verdict".into()))?,
        )?;
        let elapsed = duration_from_value(
            v.get("elapsed")
                .ok_or_else(|| ReadError::Schema("missing elapsed".into()))?,
        )?;
        let notes = v
            .get("notes")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReadError::Schema("missing notes".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ReadError::Schema("non-string note".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Absent in pre-exchange documents: default to no traffic.
        let exchange = match v.get("exchange").and_then(Json::as_arr) {
            Some(items) => items
                .iter()
                .map(exchange_from_value)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        // Absent in pre-preparation documents: default to no stats
        // (same lenient treatment as the exchange field).
        let prepare = match v.get("prepare").and_then(Json::as_arr) {
            Some(items) => items
                .iter()
                .map(pass_stats_from_value)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        // Absent in pre-fuzzing documents (and in every fuzz-free run):
        // lenient, like the exchange and prepare fields.
        let fuzz = v.get("fuzz").map(fuzz_from_value).transpose()?;
        // Absent in pre-coverage documents and every blind campaign:
        // lenient, like fuzz.
        let coverage = v.get("coverage").map(coverage_from_value).transpose()?;
        // Absent in pre-warm-start documents: lenient, like fuzz.
        let solver = match v.get("solver").and_then(Json::as_arr) {
            Some(items) => items
                .iter()
                .map(solver_from_value)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        // Absent in pre-certificate documents and every non-proof cell:
        // lenient, like fuzz and solver.
        let certificate = v.get("certificate").map(cert_from_value).transpose()?;
        Ok(Report {
            scheme,
            design,
            contract,
            verdict,
            elapsed,
            notes,
            exchange,
            prepare,
            fuzz,
            coverage,
            solver,
            certificate,
        })
    }
}

/// Canonical certificate encoding: restored constants and blocked-cube
/// literals as `[index, bool]` pairs (matching the trace encoding),
/// survivors as plain indices, the kind tagged like verdicts.
fn cert_to_value(c: &Certificate) -> Json {
    let pair = |&(i, v): &(u32, bool)| Json::Arr(vec![Json::Int(i as i64), Json::Bool(v)]);
    let kind = match &c.kind {
        CertKind::Inductive { blocked } => Json::obj(vec![
            ("kind", Json::Str("inductive".into())),
            (
                "blocked",
                Json::Arr(
                    blocked
                        .iter()
                        .map(|cube| Json::Arr(cube.iter().map(pair).collect()))
                        .collect(),
                ),
            ),
        ]),
        CertKind::KInduction { k } => Json::obj(vec![
            ("kind", Json::Str("k-induction".into())),
            ("k", Json::Int(*k as i64)),
        ]),
    };
    Json::obj(vec![
        ("restored", Json::Arr(c.restored.iter().map(pair).collect())),
        (
            "survivors",
            Json::Arr(c.survivors.iter().map(|&s| Json::Int(s as i64)).collect()),
        ),
        ("kind", kind),
    ])
}

fn cert_from_value(v: &Json) -> Result<Certificate, ReadError> {
    let restored = v
        .get("restored")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReadError::Schema("missing certificate restored".into()))?
        .iter()
        .map(index_bool_pair)
        .collect::<Result<Vec<_>, _>>()?;
    let survivors = v
        .get("survivors")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReadError::Schema("missing certificate survivors".into()))?
        .iter()
        .map(|s| {
            s.as_int()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| ReadError::Schema("bad certificate survivor".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let kind = v
        .get("kind")
        .ok_or_else(|| ReadError::Schema("missing certificate kind".into()))?;
    let kind = match kind.get("kind").and_then(Json::as_str) {
        Some("inductive") => CertKind::Inductive {
            blocked: kind
                .get("blocked")
                .and_then(Json::as_arr)
                .ok_or_else(|| ReadError::Schema("missing certificate blocked".into()))?
                .iter()
                .map(|cube| {
                    cube.as_arr()
                        .ok_or_else(|| ReadError::Schema("cube is not an array".into()))?
                        .iter()
                        .map(index_bool_pair)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?,
        },
        Some("k-induction") => CertKind::KInduction {
            k: kind
                .get("k")
                .and_then(Json::as_int)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| ReadError::Schema("bad certificate k".into()))?,
        },
        other => return schema_err(format!("unknown certificate kind {other:?}")),
    };
    Ok(Certificate {
        restored,
        survivors,
        kind,
    })
}

fn fuzz_to_value(s: &FuzzStats) -> Json {
    let mut pairs = vec![
        ("trials", Json::Int(s.trials as i64)),
        ("corpus_trials", Json::Int(s.corpus_trials as i64)),
        ("random_trials", Json::Int(s.random_trials as i64)),
        ("sim_cycles", Json::Int(s.sim_cycles as i64)),
        ("wall", duration_to_value(s.wall)),
    ];
    if let Some(cycle) = s.leak_cycle {
        pairs.push(("leak_cycle", Json::Int(cycle as i64)));
    }
    pairs.push(("seed", Json::Int(s.seed as i64)));
    pairs.push(("lanes", Json::Int(s.lanes as i64)));
    Json::obj(pairs)
}

fn fuzz_from_value(v: &Json) -> Result<FuzzStats, ReadError> {
    let count = |key: &str| -> Result<i64, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .ok_or_else(|| ReadError::Schema(format!("bad fuzz {key}")))
    };
    let usize_of = |key: &str| -> Result<usize, ReadError> {
        usize::try_from(count(key)?).map_err(|_| ReadError::Schema(format!("bad fuzz {key}")))
    };
    let leak_cycle = match v.get("leak_cycle") {
        None => None,
        Some(c) => Some(
            c.as_int()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| ReadError::Schema("bad fuzz leak_cycle".into()))?,
        ),
    };
    // The trial-provenance split is absent in pre-coverage documents;
    // `0` (no corpus draws) is then both lenient and true.
    let lenient = |key: &str| -> Result<usize, ReadError> {
        match v.get(key) {
            None => Ok(0),
            Some(_) => usize_of(key),
        }
    };
    Ok(FuzzStats {
        trials: usize_of("trials")?,
        corpus_trials: lenient("corpus_trials")?,
        random_trials: lenient("random_trials")?,
        sim_cycles: count("sim_cycles")? as u64,
        wall: duration_from_value(
            v.get("wall")
                .ok_or_else(|| ReadError::Schema("missing fuzz wall".into()))?,
        )?,
        leak_cycle,
        // Seeds round-trip through the signed JSON integer by casting.
        seed: count("seed")? as u64,
        lanes: usize_of("lanes")?,
    })
}

fn solver_to_value(s: &LaneSolverStats) -> Json {
    Json::obj(vec![
        ("lane", Json::Str(s.lane.name().into())),
        ("propagations", Json::Int(s.propagations as i64)),
        ("conflicts", Json::Int(s.conflicts as i64)),
        ("decisions", Json::Int(s.decisions as i64)),
        ("restarts", Json::Int(s.restarts as i64)),
        ("reduced_clauses", Json::Int(s.reduced_clauses as i64)),
        ("warm_hits", Json::Int(s.warm_hits as i64)),
        ("warm_misses", Json::Int(s.warm_misses as i64)),
    ])
}

fn solver_from_value(v: &Json) -> Result<LaneSolverStats, ReadError> {
    let lane = v
        .get("lane")
        .and_then(Json::as_str)
        .and_then(Lane::from_name)
        .ok_or_else(|| ReadError::Schema("bad solver lane".into()))?;
    let count = |key: &str| -> Result<u64, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("bad solver {key}")))
    };
    Ok(LaneSolverStats {
        lane,
        propagations: count("propagations")?,
        conflicts: count("conflicts")?,
        decisions: count("decisions")?,
        restarts: count("restarts")?,
        reduced_clauses: count("reduced_clauses")?,
        warm_hits: count("warm_hits")?,
        warm_misses: count("warm_misses")?,
    })
}

fn shape_to_value(s: &Shape) -> Json {
    Json::obj(vec![
        ("nodes", Json::Int(s.nodes as i64)),
        ("ands", Json::Int(s.ands as i64)),
        ("latches", Json::Int(s.latches as i64)),
        ("inputs", Json::Int(s.inputs as i64)),
    ])
}

fn shape_from_value(v: &Json) -> Result<Shape, ReadError> {
    let count = |key: &str| -> Result<usize, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("bad shape {key}")))
    };
    Ok(Shape {
        nodes: count("nodes")?,
        ands: count("ands")?,
        latches: count("latches")?,
        inputs: count("inputs")?,
    })
}

fn pass_stats_to_value(p: &PassStats) -> Json {
    Json::obj(vec![
        ("pass", Json::Str(p.pass.clone())),
        ("before", shape_to_value(&p.before)),
        ("after", shape_to_value(&p.after)),
    ])
}

fn pass_stats_from_value(v: &Json) -> Result<PassStats, ReadError> {
    let pass = v
        .get("pass")
        .and_then(Json::as_str)
        .ok_or_else(|| ReadError::Schema("missing pass name".into()))?
        .to_string();
    let before = shape_from_value(
        v.get("before")
            .ok_or_else(|| ReadError::Schema("missing pass before".into()))?,
    )?;
    let after = shape_from_value(
        v.get("after")
            .ok_or_else(|| ReadError::Schema("missing pass after".into()))?,
    )?;
    Ok(PassStats {
        pass,
        before,
        after,
    })
}

fn exchange_to_value(s: &ExchangeStats) -> Json {
    Json::obj(vec![
        ("lane", Json::Str(s.lane.name().into())),
        ("imports", Json::Int(s.imports as i64)),
        ("exports", Json::Int(s.exports as i64)),
        ("obligations", Json::Int(s.obligations as i64)),
        ("policy_len", Json::Int(s.policy_len as i64)),
        ("policy_lbd", Json::Int(s.policy_lbd as i64)),
        ("adaptive", Json::Bool(s.adaptive)),
    ])
}

fn exchange_from_value(v: &Json) -> Result<ExchangeStats, ReadError> {
    let lane = v
        .get("lane")
        .and_then(Json::as_str)
        .and_then(Lane::from_name)
        .ok_or_else(|| ReadError::Schema("bad exchange lane".into()))?;
    let count = |key: &str| -> Result<usize, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("bad exchange {key}")))
    };
    // Obligation and policy accounting is absent in pre-coverage
    // documents; zeros/false are then lenient and true (no obligations
    // flowed, no policy was logged).
    let lenient = |key: &str| -> Result<usize, ReadError> {
        match v.get(key) {
            None => Ok(0),
            Some(_) => count(key),
        }
    };
    Ok(ExchangeStats {
        lane,
        imports: count("imports")?,
        exports: count("exports")?,
        obligations: lenient("obligations")?,
        policy_len: lenient("policy_len")?,
        policy_lbd: lenient("policy_lbd")? as u32,
        adaptive: v.get("adaptive").and_then(Json::as_bool).unwrap_or(false),
    })
}

fn coverage_to_value(s: &CoverageStats) -> Json {
    Json::obj(vec![
        ("latches_toggled", Json::Int(s.latches_toggled as i64)),
        ("latches_total", Json::Int(s.latches_total as i64)),
        ("signatures", Json::Int(s.signatures as i64)),
        (
            "new_coverage_trials",
            Json::Int(s.new_coverage_trials as i64),
        ),
        ("corpus_size", Json::Int(s.corpus_size as i64)),
        (
            "obligations_exported",
            Json::Int(s.obligations_exported as i64),
        ),
        ("stimuli_rejected", Json::Int(s.stimuli_rejected as i64)),
    ])
}

fn coverage_from_value(v: &Json) -> Result<CoverageStats, ReadError> {
    let count = |key: &str| -> Result<usize, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("bad coverage {key}")))
    };
    Ok(CoverageStats {
        latches_toggled: count("latches_toggled")?,
        latches_total: count("latches_total")?,
        signatures: count("signatures")?,
        new_coverage_trials: count("new_coverage_trials")?,
        corpus_size: count("corpus_size")?,
        obligations_exported: count("obligations_exported")?,
        stimuli_rejected: count("stimuli_rejected")?,
    })
}

fn parse_with<T>(key: &str, v: &Json, parse: impl Fn(&str) -> Option<T>) -> Result<T, ReadError> {
    let name = v
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ReadError::Schema(format!("missing {key}")))?;
    parse(name).ok_or_else(|| ReadError::Schema(format!("unknown {key} `{name}`")))
}

fn proof_detail(p: &ProofEngine) -> String {
    match p {
        ProofEngine::Houdini { invariants } => format!("houdini invariants={invariants}"),
        ProofEngine::KInduction { k } => format!("k-induction k={k}"),
        ProofEngine::Pdr {
            frames,
            clauses,
            fixpoint_level,
        } => format!("pdr frames={frames} clauses={clauses} fixpoint={fixpoint_level}"),
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn duration_to_value(d: Duration) -> Json {
    Json::obj(vec![
        ("secs", Json::Int(d.as_secs() as i64)),
        ("nanos", Json::Int(d.subsec_nanos() as i64)),
    ])
}

fn duration_from_value(v: &Json) -> Result<Duration, ReadError> {
    let secs = v.get("secs").and_then(Json::as_int);
    let nanos = v.get("nanos").and_then(Json::as_int);
    match (secs, nanos) {
        (Some(s), Some(n)) if s >= 0 && (0..1_000_000_000).contains(&n) => {
            Ok(Duration::new(s as u64, n as u32))
        }
        _ => schema_err("malformed duration"),
    }
}

fn verdict_to_value(v: &Verdict) -> Json {
    match v {
        Verdict::Attack(trace) => Json::obj(vec![
            ("kind", Json::Str("attack".into())),
            ("bad", Json::Str(trace.bad_name.clone())),
            ("trace", trace_to_value(trace)),
        ]),
        Verdict::Proof(ProofEngine::Houdini { invariants }) => Json::obj(vec![
            ("kind", Json::Str("proof".into())),
            ("engine", Json::Str("houdini".into())),
            ("invariants", Json::Int(*invariants as i64)),
        ]),
        Verdict::Proof(ProofEngine::KInduction { k }) => Json::obj(vec![
            ("kind", Json::Str("proof".into())),
            ("engine", Json::Str("k-induction".into())),
            ("k", Json::Int(*k as i64)),
        ]),
        Verdict::Proof(ProofEngine::Pdr {
            frames,
            clauses,
            fixpoint_level,
        }) => Json::obj(vec![
            ("kind", Json::Str("proof".into())),
            ("engine", Json::Str("pdr".into())),
            ("frames", Json::Int(*frames as i64)),
            ("clauses", Json::Int(*clauses as i64)),
            ("fixpoint_level", Json::Int(*fixpoint_level as i64)),
        ]),
        Verdict::Timeout => Json::obj(vec![("kind", Json::Str("timeout".into()))]),
        Verdict::Unknown { reason } => Json::obj(vec![
            ("kind", Json::Str("unknown".into())),
            ("reason", reason_to_value(reason)),
        ]),
    }
}

fn reason_to_value(r: &InconclusiveReason) -> Json {
    let usize_obj = |kind: &str, key: &'static str, n: usize| {
        Json::obj(vec![
            ("kind", Json::Str(kind.into())),
            (key, Json::Int(n as i64)),
        ])
    };
    match r {
        InconclusiveReason::BoundedClean { depth } => usize_obj("bounded-clean", "depth", *depth),
        InconclusiveReason::InductionGap { max_k } => usize_obj("induction-gap", "max_k", *max_k),
        InconclusiveReason::FrameCap { frames } => usize_obj("frame-cap", "frames", *frames),
        InconclusiveReason::ReplayFailed { engine } => Json::obj(vec![
            ("kind", Json::Str("replay-failed".into())),
            ("engine", Json::Str(engine.clone())),
        ]),
        InconclusiveReason::NoInvariants => {
            Json::obj(vec![("kind", Json::Str("no-invariants".into()))])
        }
        InconclusiveReason::InvariantsInsufficient { survivors } => {
            usize_obj("invariants-insufficient", "survivors", *survivors)
        }
        InconclusiveReason::NoAttackWithinDepth { depth } => {
            usize_obj("no-attack-within-depth", "depth", *depth)
        }
        InconclusiveReason::FuzzExhausted { trials } => {
            usize_obj("fuzz-exhausted", "trials", *trials)
        }
        InconclusiveReason::WorkerCrashed { detail } => Json::obj(vec![
            ("kind", Json::Str("worker-crashed".into())),
            ("detail", Json::Str(detail.clone())),
        ]),
        InconclusiveReason::AllInconclusive => {
            Json::obj(vec![("kind", Json::Str("all-inconclusive".into()))])
        }
        InconclusiveReason::Other(text) => Json::obj(vec![
            ("kind", Json::Str("other".into())),
            ("text", Json::Str(text.clone())),
        ]),
    }
}

fn reason_from_value(v: &Json) -> Result<InconclusiveReason, ReadError> {
    // Pre-typed documents stored the reason as a plain string.
    if let Some(text) = v.as_str() {
        return Ok(InconclusiveReason::Other(text.to_string()));
    }
    let usize_field = |key: &str| -> Result<usize, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("missing reason {key}")))
    };
    match v.get("kind").and_then(Json::as_str) {
        Some("bounded-clean") => Ok(InconclusiveReason::BoundedClean {
            depth: usize_field("depth")?,
        }),
        Some("induction-gap") => Ok(InconclusiveReason::InductionGap {
            max_k: usize_field("max_k")?,
        }),
        Some("frame-cap") => Ok(InconclusiveReason::FrameCap {
            frames: usize_field("frames")?,
        }),
        Some("replay-failed") => Ok(InconclusiveReason::ReplayFailed {
            engine: v
                .get("engine")
                .and_then(Json::as_str)
                .ok_or_else(|| ReadError::Schema("missing reason engine".into()))?
                .to_string(),
        }),
        Some("no-invariants") => Ok(InconclusiveReason::NoInvariants),
        Some("invariants-insufficient") => Ok(InconclusiveReason::InvariantsInsufficient {
            survivors: usize_field("survivors")?,
        }),
        Some("no-attack-within-depth") => Ok(InconclusiveReason::NoAttackWithinDepth {
            depth: usize_field("depth")?,
        }),
        Some("fuzz-exhausted") => Ok(InconclusiveReason::FuzzExhausted {
            trials: usize_field("trials")?,
        }),
        Some("worker-crashed") => Ok(InconclusiveReason::WorkerCrashed {
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .ok_or_else(|| ReadError::Schema("missing reason detail".into()))?
                .to_string(),
        }),
        Some("all-inconclusive") => Ok(InconclusiveReason::AllInconclusive),
        Some("other") => Ok(InconclusiveReason::Other(
            v.get("text")
                .and_then(Json::as_str)
                .ok_or_else(|| ReadError::Schema("missing reason text".into()))?
                .to_string(),
        )),
        other => schema_err(format!("unknown reason kind {other:?}")),
    }
}

fn verdict_from_value(v: &Json) -> Result<Verdict, ReadError> {
    let int_field = |key: &str| -> Result<usize, ReadError> {
        v.get(key)
            .and_then(Json::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| ReadError::Schema(format!("missing {key}")))
    };
    match v.get("kind").and_then(Json::as_str) {
        Some("attack") => {
            let bad = v
                .get("bad")
                .and_then(Json::as_str)
                .ok_or_else(|| ReadError::Schema("missing bad".into()))?;
            let mut trace = trace_from_value(
                v.get("trace")
                    .ok_or_else(|| ReadError::Schema("missing trace".into()))?,
            )?;
            trace.bad_name = bad.to_string();
            Ok(Verdict::Attack(Box::new(trace)))
        }
        Some("proof") => match v.get("engine").and_then(Json::as_str) {
            Some("houdini") => Ok(Verdict::Proof(ProofEngine::Houdini {
                invariants: int_field("invariants")?,
            })),
            Some("k-induction") => Ok(Verdict::Proof(ProofEngine::KInduction {
                k: int_field("k")?,
            })),
            Some("pdr") => {
                let frames = int_field("frames")?;
                Ok(Verdict::Proof(ProofEngine::Pdr {
                    frames,
                    clauses: int_field("clauses")?,
                    // Absent in pre-certificate documents: the fixpoint is
                    // then at most the frame count, which is the lenient
                    // stand-in closest to the truth.
                    fixpoint_level: int_field("fixpoint_level").unwrap_or(frames),
                }))
            }
            other => schema_err(format!("unknown proof engine {other:?}")),
        },
        Some("timeout") => Ok(Verdict::Timeout),
        Some("unknown") => Ok(Verdict::Unknown {
            reason: reason_from_value(
                v.get("reason")
                    .ok_or_else(|| ReadError::Schema("missing reason".into()))?,
            )?,
        }),
        other => schema_err(format!("unknown verdict kind {other:?}")),
    }
}

/// Canonical trace encoding: latch pairs in solver order, inputs per
/// cycle sorted by index (HashMap iteration order must not leak into the
/// byte stream).
fn trace_to_value(t: &Trace) -> Json {
    let latches = t
        .initial_latches
        .iter()
        .map(|&(i, v)| Json::Arr(vec![Json::Int(i as i64), Json::Bool(v)]))
        .collect();
    let inputs = t
        .inputs
        .iter()
        .map(|cycle| {
            let mut pairs: Vec<(&u32, &bool)> = cycle.iter().collect();
            pairs.sort_by_key(|(i, _)| **i);
            Json::Arr(
                pairs
                    .into_iter()
                    .map(|(&i, &v)| Json::Arr(vec![Json::Int(i as i64), Json::Bool(v)]))
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![
        ("initial_latches", Json::Arr(latches)),
        ("inputs", Json::Arr(inputs)),
    ])
}

fn index_bool_pair(v: &Json) -> Result<(u32, bool), ReadError> {
    match v.as_arr() {
        Some([i, b]) => {
            let i = i
                .as_int()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ReadError::Schema("bad index in trace pair".into()))?;
            let b = b
                .as_bool()
                .ok_or_else(|| ReadError::Schema("bad value in trace pair".into()))?;
            Ok((i, b))
        }
        _ => schema_err("trace pair is not [index, bool]"),
    }
}

fn trace_from_value(v: &Json) -> Result<Trace, ReadError> {
    let initial_latches = v
        .get("initial_latches")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReadError::Schema("missing initial_latches".into()))?
        .iter()
        .map(index_bool_pair)
        .collect::<Result<Vec<_>, _>>()?;
    let inputs = v
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReadError::Schema("missing inputs".into()))?
        .iter()
        .map(|cycle| {
            cycle
                .as_arr()
                .ok_or_else(|| ReadError::Schema("cycle is not an array".into()))?
                .iter()
                .map(index_bool_pair)
                .collect::<Result<HashMap<u32, bool>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Trace {
        initial_latches,
        inputs,
        bad_name: String::new(),
    })
}

/// A finished campaign under the session API: one [`Report`] per cell, in
/// matrix order, plus the measured wall clock.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    pub reports: Vec<Report>,
    pub wall: Duration,
}

impl CampaignReport {
    /// Looks up a cell's report.
    pub fn get(&self, scheme: Scheme, design: DesignKind, contract: Contract) -> Option<&Report> {
        self.reports
            .iter()
            .find(|r| r.scheme == scheme && r.design == design && r.contract == contract)
    }

    /// Sum of per-cell elapsed times — what a sequential loop would have
    /// paid (modulo early exits); compare with `wall` for the speedup.
    pub fn cpu_time(&self) -> Duration {
        self.reports.iter().map(|r| r.elapsed).sum()
    }

    /// Renders the paper-style result table: one block per contract, one
    /// row per scheme, one column per design, cells as `VERDICT(elapsed)`.
    /// Every column is padded to its own widest entry (label or cell), so
    /// mixed-length design/scheme names stay aligned.
    pub fn render_table(&self) -> String {
        let cells: Vec<TableCell> = self
            .reports
            .iter()
            .map(|r| TableCell {
                scheme: r.scheme,
                design: r.design,
                contract: r.contract,
                text: format!("{}({:.1}s)", r.cell(), r.elapsed.as_secs_f64()),
            })
            .collect();
        render_matrix_table(&cells, self.wall, self.cpu_time(), self.reports.len())
    }

    /// Serializes to the canonical `csl-campaign-v1` JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// The campaign as a [`Json`] value — the embedding form used when a
    /// whole campaign travels inside a larger document (the `csl-serve`
    /// wire protocol nests it in its `done` message).
    pub fn to_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("csl-campaign-v1".into())),
            ("wall", duration_to_value(self.wall)),
            (
                "reports",
                Json::Arr(self.reports.iter().map(Report::to_value).collect()),
            ),
        ])
    }

    /// Parses a document written by [`CampaignReport::to_json`].
    pub fn from_json(text: &str) -> Result<CampaignReport, ReadError> {
        CampaignReport::from_value(&Json::parse(text)?)
    }

    /// Parses an embedded campaign value (inverse of
    /// [`CampaignReport::to_value`]).
    pub fn from_value(v: &Json) -> Result<CampaignReport, ReadError> {
        match v.get("schema").and_then(Json::as_str) {
            Some("csl-campaign-v1") => {}
            other => return schema_err(format!("unsupported campaign schema {other:?}")),
        }
        let wall = duration_from_value(
            v.get("wall")
                .ok_or_else(|| ReadError::Schema("missing wall".into()))?,
        )?;
        let reports = v
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReadError::Schema("missing reports".into()))?
            .iter()
            .map(Report::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignReport { reports, wall })
    }

    /// Flat CSV: header plus one row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.reports.len() + 1));
        out.push_str(Report::csv_header());
        out.push('\n');
        for r in &self.reports {
            out.push_str(&r.csv_row());
            out.push('\n');
        }
        out
    }

    /// Compares this run (before) against `other` (after), pairing cells
    /// by scheme × design × contract and flagging verdict changes.
    pub fn diff(&self, other: &CampaignReport) -> CampaignDiff {
        let mut changes = Vec::new();
        let mut missing_after = Vec::new();
        for before in &self.reports {
            match other.get(before.scheme, before.design, before.contract) {
                None => missing_after.push(before.label()),
                Some(after) if before.cell() != after.cell() => {
                    let decisive = |cell: &str| cell == "CEX" || cell == "PROOF";
                    changes.push(VerdictChange {
                        label: before.label(),
                        before: before.cell(),
                        after: after.cell(),
                        // Losing a decisive verdict — or flipping one
                        // decisive kind into the other — is a regression;
                        // UNK <-> T/O churn and new decisiveness are not.
                        regression: decisive(before.cell()),
                    });
                }
                Some(_) => {}
            }
        }
        let missing_before = other
            .reports
            .iter()
            .filter(|r| self.get(r.scheme, r.design, r.contract).is_none())
            .map(|r| r.label())
            .collect();
        CampaignDiff {
            changes,
            missing_before,
            missing_after,
        }
    }
}

/// The result of [`CampaignReport::diff`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignDiff {
    /// Cells whose verdict kind changed between the runs.
    pub changes: Vec<VerdictChange>,
    /// Cells present only in the `after` run.
    pub missing_before: Vec<String>,
    /// Cells present only in the `before` run.
    pub missing_after: Vec<String>,
}

/// One changed cell in a [`CampaignDiff`].
#[derive(Clone, Debug, PartialEq)]
pub struct VerdictChange {
    /// `Scheme/Design/contract` cell label.
    pub label: String,
    /// Verdict cell text in the `before` run.
    pub before: &'static str,
    /// Verdict cell text in the `after` run.
    pub after: &'static str,
    /// True when the change loses or flips a decisive verdict.
    pub regression: bool,
}

impl CampaignDiff {
    /// No changes at all (identical verdict landscape, same cell set).
    pub fn is_clean(&self) -> bool {
        self.changes.is_empty() && self.missing_before.is_empty() && self.missing_after.is_empty()
    }

    /// Any change that loses or flips a decisive verdict.
    pub fn has_regressions(&self) -> bool {
        self.changes.iter().any(|c| c.regression)
    }

    /// Human-readable summary, one line per change.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if self.is_clean() {
            return "no verdict changes\n".to_string();
        }
        let mut out = String::new();
        for c in &self.changes {
            let _ = writeln!(
                out,
                "{} {}: {} -> {}",
                if c.regression { "REGRESSION" } else { "change" },
                c.label,
                c.before,
                c.after
            );
        }
        for label in &self.missing_after {
            let _ = writeln!(out, "removed {label}");
        }
        for label in &self.missing_before {
            let _ = writeln!(out, "added {label}");
        }
        out
    }
}

/// One positioned cell of a rendered result table.
pub(crate) struct TableCell {
    pub scheme: Scheme,
    pub design: DesignKind,
    pub contract: Contract,
    pub text: String,
}

/// Shared renderer for the paper-style table behind
/// [`CampaignReport::render_table`]. Row and
/// column order follow first appearance in `cells` — deterministic for
/// matrix-ordered input — and every column is padded to its own widest
/// entry rather than a fixed width.
pub(crate) fn render_matrix_table(
    cells: &[TableCell],
    wall: Duration,
    cpu: Duration,
    cell_count: usize,
) -> String {
    use std::fmt::Write as _;

    let mut contracts: Vec<Contract> = Vec::new();
    let mut schemes: Vec<Scheme> = Vec::new();
    let mut designs: Vec<DesignKind> = Vec::new();
    for c in cells {
        if !contracts.contains(&c.contract) {
            contracts.push(c.contract);
        }
        if !schemes.contains(&c.scheme) {
            schemes.push(c.scheme);
        }
        if !designs.contains(&c.design) {
            designs.push(c.design);
        }
    }
    let text_of = |scheme: Scheme, design: DesignKind, contract: Contract| -> String {
        cells
            .iter()
            .find(|c| c.scheme == scheme && c.design == design && c.contract == contract)
            .map_or_else(|| "-".to_string(), |c| c.text.clone())
    };
    // Pad every column to its own widest entry (header or cell).
    let scheme_w = schemes
        .iter()
        .map(|s| s.name().len())
        .max()
        .unwrap_or(0)
        .max("scheme".len());
    let design_w: Vec<usize> = designs
        .iter()
        .map(|&d| {
            contracts
                .iter()
                .flat_map(|&ct| schemes.iter().map(move |&s| text_of(s, d, ct).len()))
                .max()
                .unwrap_or(0)
                .max(d.name().len())
        })
        .collect();
    let mut out = String::new();
    for &contract in &contracts {
        let _ = writeln!(out, "contract: {}", contract.name());
        let _ = write!(out, "{:<scheme_w$}", "scheme");
        for (&design, w) in designs.iter().zip(&design_w) {
            let _ = write!(out, " {:<w$}", design.name());
        }
        let _ = writeln!(out);
        for &scheme in &schemes {
            let _ = write!(out, "{:<scheme_w$}", scheme.name());
            for (&design, w) in designs.iter().zip(&design_w) {
                let _ = write!(out, " {:<w$}", text_of(scheme, design, contract));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "wall {:.1}s, cpu {:.1}s, {} cells",
        wall.as_secs_f64(),
        cpu.as_secs_f64(),
        cell_count
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_cpu::Defense;

    fn sample_reports() -> Vec<Report> {
        let trace = Trace {
            initial_latches: vec![(3, true), (1, false)],
            inputs: vec![
                [(2u32, true), (0u32, false)].into_iter().collect(),
                [(5u32, true)].into_iter().collect(),
            ],
            bad_name: "no_leakage".into(),
        };
        vec![
            Report {
                scheme: Scheme::Shadow,
                design: DesignKind::SimpleOoo(Defense::None),
                contract: Contract::Sandboxing,
                verdict: Verdict::Attack(Box::new(trace)),
                elapsed: Duration::new(3, 141_592_653),
                notes: vec!["netlist: x".into(), "cex, with \"quotes\"".into()],
                exchange: vec![
                    ExchangeStats {
                        lane: Lane::Bmc,
                        imports: 2,
                        exports: 17,
                        obligations: 0,
                        policy_len: 6,
                        policy_lbd: 4,
                        adaptive: false,
                    },
                    ExchangeStats {
                        lane: Lane::KInduction,
                        imports: 9,
                        exports: 0,
                        obligations: 3,
                        policy_len: 12,
                        policy_lbd: 6,
                        adaptive: true,
                    },
                ],
                prepare: vec![
                    PassStats {
                        pass: "coi".into(),
                        before: Shape {
                            nodes: 1200,
                            ands: 900,
                            latches: 200,
                            inputs: 40,
                        },
                        after: Shape {
                            nodes: 1000,
                            ands: 800,
                            latches: 150,
                            inputs: 30,
                        },
                    },
                    PassStats {
                        pass: "const-sweep".into(),
                        before: Shape {
                            nodes: 1000,
                            ands: 800,
                            latches: 150,
                            inputs: 30,
                        },
                        after: Shape {
                            nodes: 900,
                            ands: 710,
                            latches: 140,
                            inputs: 30,
                        },
                    },
                ],
                fuzz: Some(FuzzStats {
                    trials: 832,
                    corpus_trials: 512,
                    random_trials: 320,
                    sim_cycles: 19_968,
                    wall: Duration::from_millis(413),
                    leak_cycle: Some(11),
                    seed: 0xF0_55,
                    lanes: 64,
                }),
                coverage: Some(CoverageStats {
                    latches_toggled: 141,
                    latches_total: 200,
                    signatures: 57,
                    new_coverage_trials: 61,
                    corpus_size: 48,
                    obligations_exported: 9,
                    stimuli_rejected: 17,
                }),
                solver: Vec::new(),
                certificate: None,
            },
            Report {
                scheme: Scheme::Leave,
                design: DesignKind::SingleCycle,
                contract: Contract::Sandboxing,
                verdict: Verdict::Proof(ProofEngine::Houdini { invariants: 12 }),
                elapsed: Duration::from_millis(250),
                notes: vec![],
                exchange: vec![],
                prepare: vec![],
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: Some(Certificate {
                    restored: vec![(7, false), (2, true)],
                    survivors: vec![0, 3, 11],
                    kind: CertKind::Inductive {
                        blocked: vec![vec![(4, true)], vec![(1, false), (9, true)]],
                    },
                }),
            },
            Report {
                scheme: Scheme::Upec,
                design: DesignKind::InOrder,
                contract: Contract::ConstantTime,
                verdict: Verdict::Unknown {
                    reason: InconclusiveReason::InductionGap { max_k: 1 },
                },
                elapsed: Duration::from_secs(60),
                notes: vec!["note".into()],
                exchange: vec![],
                prepare: vec![],
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            },
            Report {
                scheme: Scheme::Baseline,
                design: DesignKind::BigOoo,
                contract: Contract::ConstantTime,
                verdict: Verdict::Timeout,
                elapsed: Duration::from_secs(600),
                notes: vec![],
                exchange: vec![],
                prepare: vec![],
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            },
            Report {
                scheme: Scheme::Shadow,
                design: DesignKind::SuperOoo,
                contract: Contract::Sandboxing,
                verdict: Verdict::Unknown {
                    reason: InconclusiveReason::Other("operator aborted".into()),
                },
                elapsed: Duration::from_secs(1),
                notes: vec![],
                exchange: vec![],
                prepare: vec![],
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            },
        ]
    }

    #[test]
    fn report_json_round_trip_is_lossless_and_byte_stable() {
        for r in sample_reports() {
            let text = r.to_json();
            let parsed = Report::from_json(&text).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(parsed.to_json(), text, "re-serialization must be canonical");
        }
    }

    #[test]
    fn campaign_json_and_csv_round_trip() {
        let campaign = CampaignReport {
            reports: sample_reports(),
            wall: Duration::new(12, 5),
        };
        let text = campaign.to_json();
        let parsed = CampaignReport::from_json(&text).unwrap();
        assert_eq!(parsed, campaign);
        assert_eq!(parsed.to_json(), text);

        let csv = campaign.to_csv();
        assert_eq!(csv.lines().count(), campaign.reports.len() + 1);
        assert!(csv.lines().next().unwrap().starts_with("scheme,design"));
        assert!(csv.contains("CEX"), "{csv}");
    }

    #[test]
    fn legacy_string_reason_and_missing_exchange_still_parse() {
        // Documents written before the typed-reason/exchange fields must
        // keep loading (the CI reportdiff gate reads older artifacts).
        let legacy = "{\"schema\": \"csl-report-v1\", \"scheme\": \"UPEC\", \
                      \"design\": \"InOrder(Sodor)\", \"contract\": \"constant-time\", \
                      \"verdict\": {\"kind\": \"unknown\", \"reason\": \"old text\"}, \
                      \"elapsed\": {\"secs\": 1, \"nanos\": 0}, \"notes\": []}";
        let report = Report::from_json(legacy).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Unknown {
                reason: InconclusiveReason::Other("old text".into())
            }
        );
        assert!(report.exchange.is_empty());
        assert!(
            report.prepare.is_empty(),
            "documents without a prepare block must parse leniently"
        );
        assert!(
            report.fuzz.is_none(),
            "documents without a fuzz block must parse leniently"
        );
    }

    #[test]
    fn pre_coverage_artifacts_parse_and_diff_cleanly() {
        // A report archived before the coverage subsystem existed: the
        // fuzz block has no trial-provenance split, the exchange stats
        // carry no obligation/policy keys, and there is no coverage
        // block. It must load leniently (zeros/false/None) and diff
        // cleanly against a re-serialization of itself — the CI
        // reportdiff gate reads exactly such artifacts.
        let legacy = "{\"schema\": \"csl-report-v1\", \"scheme\": \"UPEC\", \
                      \"design\": \"InOrder(Sodor)\", \"contract\": \"constant-time\", \
                      \"verdict\": {\"kind\": \"timeout\"}, \
                      \"elapsed\": {\"secs\": 2, \"nanos\": 0}, \"notes\": [], \
                      \"exchange\": [{\"lane\": \"bmc\", \"imports\": 4, \"exports\": 9}], \
                      \"fuzz\": {\"trials\": 640, \"sim_cycles\": 12800, \
                       \"wall\": {\"secs\": 1, \"nanos\": 0}, \"seed\": 7, \"lanes\": 64}}";
        let report = Report::from_json(legacy).unwrap();
        assert_eq!(report.fuzz.as_ref().unwrap().trials, 640);
        assert_eq!(report.fuzz.as_ref().unwrap().corpus_trials, 0);
        assert_eq!(report.fuzz.as_ref().unwrap().random_trials, 0);
        assert_eq!(report.exchange[0].imports, 4);
        assert_eq!(report.exchange[0].obligations, 0);
        assert_eq!(report.exchange[0].policy_len, 0);
        assert!(!report.exchange[0].adaptive);
        assert!(
            report.coverage.is_none(),
            "documents without a coverage block must parse leniently"
        );
        // The round trip is stable from the new serialization onwards,
        // and a campaign diff against the reparsed report is clean.
        let reserialized = report.to_json();
        let reparsed = Report::from_json(&reserialized).unwrap();
        assert_eq!(reparsed, report);
        assert_eq!(reparsed.to_json(), reserialized);
        let before = CampaignReport {
            reports: vec![report],
            wall: Duration::from_secs(2),
        };
        let after = CampaignReport {
            reports: vec![reparsed],
            wall: Duration::from_secs(3),
        };
        assert!(before.diff(&after).is_clean());
    }

    #[test]
    fn coverage_block_stays_absent_for_blind_campaigns() {
        let mut r = sample_reports()[0].clone();
        r.coverage = None;
        let text = r.to_json();
        assert!(
            !text.contains("coverage"),
            "blind-campaign reports must not write the block"
        );
        assert!(Report::from_json(&text).unwrap().coverage.is_none());
    }

    #[test]
    fn fuzz_block_round_trips_with_and_without_leak() {
        // With a leak cycle (sample 0) the block is exercised by the
        // canonical round-trip test above; here the exhausted shape.
        let mut r = sample_reports()[1].clone();
        r.fuzz = Some(FuzzStats {
            trials: 2000,
            corpus_trials: 0,
            random_trials: 2000,
            sim_cycles: 48_000,
            wall: Duration::from_secs(2),
            leak_cycle: None,
            seed: u64::MAX - 3, // exercises the signed-integer cast
            lanes: 1,
        });
        let text = r.to_json();
        let parsed = Report::from_json(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn solver_block_round_trips_and_stays_absent_when_empty() {
        let base = sample_reports()[1].clone();
        let without = base.to_json();
        assert!(
            !without.contains("solver"),
            "reports with no solver stats must not write the block"
        );

        let mut r = base;
        r.solver = vec![
            LaneSolverStats {
                lane: Lane::Bmc,
                propagations: 123_456,
                conflicts: 789,
                decisions: 4321,
                restarts: 7,
                reduced_clauses: 2,
                warm_hits: 1,
                warm_misses: 0,
            },
            LaneSolverStats {
                lane: Lane::KInduction,
                propagations: 9,
                conflicts: 0,
                decisions: 3,
                restarts: 0,
                reduced_clauses: 0,
                warm_hits: 0,
                warm_misses: 1,
            },
        ];
        let text = r.to_json();
        let parsed = Report::from_json(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);

        // Pre-warm-start documents (no solver key) parse leniently.
        assert!(Report::from_json(&without).unwrap().solver.is_empty());
    }

    #[test]
    fn certificate_block_round_trips_and_stays_absent_when_none() {
        // The proof sample carries an inductive certificate; exercised by
        // the canonical round-trip test above. Here: the k-induction kind,
        // plus the absence convention and lenient parsing.
        let mut r = sample_reports()[1].clone();
        r.verdict = Verdict::Proof(ProofEngine::KInduction { k: 5 });
        r.certificate = Some(Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::KInduction { k: 5 },
        });
        let text = r.to_json();
        assert!(text.contains("k-induction"));
        let parsed = Report::from_json(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);

        r.certificate = None;
        let without = r.to_json();
        assert!(
            !without.contains("certificate"),
            "certificate-free reports must not write the block"
        );
        // Pre-certificate documents (no certificate key) parse leniently.
        assert!(Report::from_json(&without).unwrap().certificate.is_none());
    }

    #[test]
    fn pdr_fixpoint_level_round_trips_and_defaults_to_frames() {
        let mut r = sample_reports()[1].clone();
        r.certificate = None;
        r.verdict = Verdict::Proof(ProofEngine::Pdr {
            frames: 9,
            clauses: 31,
            fixpoint_level: 7,
        });
        let text = r.to_json();
        let parsed = Report::from_json(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);

        // Documents written before the field default it to the frame
        // count (the CI reportdiff gate reads older artifacts).
        let legacy = "{\"schema\": \"csl-report-v1\", \"scheme\": \"LEAVE\", \
                      \"design\": \"SingleCycle(ISA)\", \"contract\": \"sandboxing\", \
                      \"verdict\": {\"kind\": \"proof\", \"engine\": \"pdr\", \
                       \"frames\": 9, \"clauses\": 31}, \
                      \"elapsed\": {\"secs\": 1, \"nanos\": 0}, \"notes\": []}";
        let report = Report::from_json(legacy).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Proof(ProofEngine::Pdr {
                frames: 9,
                clauses: 31,
                fixpoint_level: 9,
            })
        );
    }

    #[test]
    fn typed_reasons_round_trip_through_json() {
        let reasons = vec![
            InconclusiveReason::BoundedClean { depth: 12 },
            InconclusiveReason::InductionGap { max_k: 6 },
            InconclusiveReason::FrameCap { frames: 40 },
            InconclusiveReason::ReplayFailed {
                engine: "pdr".into(),
            },
            InconclusiveReason::NoInvariants,
            InconclusiveReason::InvariantsInsufficient { survivors: 3 },
            InconclusiveReason::NoAttackWithinDepth { depth: 20 },
            InconclusiveReason::FuzzExhausted { trials: 2000 },
            InconclusiveReason::WorkerCrashed {
                detail: "signal 9".into(),
            },
            InconclusiveReason::AllInconclusive,
            InconclusiveReason::Other("free text".into()),
        ];
        for reason in reasons {
            let mut r = sample_reports()[2].clone();
            r.verdict = Verdict::Unknown {
                reason: reason.clone(),
            };
            let parsed = Report::from_json(&r.to_json()).unwrap();
            assert_eq!(parsed.verdict, Verdict::Unknown { reason });
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(matches!(
            Report::from_json("{\"schema\": \"bogus\"}"),
            Err(ReadError::Schema(_))
        ));
        assert!(matches!(
            Report::from_json("not json"),
            Err(ReadError::Json(_))
        ));
        let r = &sample_reports()[0];
        let tampered = r.to_json().replace("SimpleOoO", "NoSuchDesign");
        assert!(matches!(
            Report::from_json(&tampered),
            Err(ReadError::Schema(_))
        ));
    }

    #[test]
    fn diff_flags_lost_decisive_verdicts_as_regressions() {
        let before = CampaignReport {
            reports: sample_reports(),
            wall: Duration::from_secs(12),
        };
        let mut after = before.clone();
        // PROOF -> T/O: regression. UNK -> PROOF: change, not regression.
        after.reports[1].verdict = Verdict::Timeout;
        after.reports[2].verdict = Verdict::Proof(ProofEngine::KInduction { k: 2 });
        let diff = before.diff(&after);
        assert!(!diff.is_clean());
        assert!(diff.has_regressions());
        assert_eq!(diff.changes.len(), 2);
        let proof_loss = diff.changes.iter().find(|c| c.before == "PROOF").unwrap();
        assert!(proof_loss.regression);
        let improvement = diff.changes.iter().find(|c| c.after == "PROOF").unwrap();
        assert!(!improvement.regression);
        assert!(diff.render().contains("REGRESSION"));

        // Identical runs diff clean even when timings differ.
        let mut same = before.clone();
        same.reports[0].elapsed = Duration::from_secs(999);
        assert!(before.diff(&same).is_clean());
    }

    #[test]
    fn table_columns_pad_to_widest_label() {
        let campaign = CampaignReport {
            reports: sample_reports(),
            wall: Duration::from_secs(12),
        };
        let table = campaign.render_table();
        // Every row of a contract block must be equally wide: the longest
        // scheme name (ContractShadowLogic) sets the first column.
        let lines: Vec<&str> = table.lines().collect();
        let header = lines[1];
        assert!(header.starts_with("scheme"));
        let first_cell_col = header.find("SimpleOoO").unwrap();
        assert!(first_cell_col >= "ContractShadowLogic".len());
        assert!(table.contains("wall 12.0s"));
    }
}

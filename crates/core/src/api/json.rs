//! A minimal, dependency-free JSON value with a deterministic writer and
//! a strict parser.
//!
//! Reports are persisted as JSON so CI can diff verification runs across
//! commits; the container has no crates.io access, so the writer/parser
//! are hand-rolled. Two properties matter more than generality:
//!
//! * **Determinism** — objects keep their insertion order and the writer
//!   emits a canonical two-space-indented layout, so serializing the same
//!   report twice (or a parsed copy of it) is byte-for-byte identical.
//! * **Integers only** — every number a report carries is an integer
//!   (depths, counts, split `secs`/`nanos` durations), so the parser
//!   rejects floats outright rather than round-tripping them lossily.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (no map), which is what
/// makes re-serialization deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All report numbers are integers; floats are rejected by the parser.
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub msg: String,
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the canonical two-space-indented form (the persistence
    /// format: stable under parse → render round trips).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Renders the compact single-line form (no newlines, no spaces) —
    /// the framing used by line-delimited protocols and journals, where
    /// one value must occupy exactly one line. Parsing and re-rendering
    /// is byte-stable, same as [`Json::render`].
    pub fn render_line(&self) -> String {
        let mut out = String::new();
        self.write_line(&mut out);
        out
    }

    fn write_line(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_line(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_line(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of the report format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Reports only escape control characters, which
                            // are never surrogate halves.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_is_byte_stable() {
        let v = Json::obj(vec![
            ("name", Json::Str("cex \"quoted\"\nline".into())),
            ("count", Json::Int(-42)),
            ("flag", Json::Bool(true)),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Null,
                    Json::obj(vec![("k", Json::Int(2))]),
                ]),
            ),
        ]);
        let text = v.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn render_line_is_single_line_and_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::Str("multi\nline \"text\"".into())),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("obj", Json::obj(vec![("k", Json::Bool(false))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let line = v.render_line();
        assert!(!line.contains('\n'), "{line:?}");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render_line(), line);
    }

    #[test]
    fn parser_rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_unicode() {
        let v = Json::parse("  { \"k\" : [ 1 , \"δ\" , null ] }  ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("δ"));
    }
}

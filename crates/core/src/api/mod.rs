//! The unified verification session API.
//!
//! The paper's workflow is one conceptual operation — *check a scheme ×
//! design × contract cell under a budget* — and this module is its one
//! entry point. A fluent [`Verifier`] builder produces a typed [`Query`];
//! running the query yields a structured [`Report`] that can be persisted
//! (JSON/CSV), reloaded, and diffed against another run. The same builder
//! fans out to a whole matrix via [`Verifier::matrix`], which subsumes
//! the old campaign runner.
//!
//! ```no_run
//! use std::time::Duration;
//! use csl_contracts::Contract;
//! use csl_core::api::{Budget, Lane, LaneBudget, Mode, Verifier};
//! use csl_core::{DesignKind, Scheme};
//! use csl_cpu::Defense;
//!
//! let report = Verifier::new()
//!     .design(DesignKind::SimpleOoo(Defense::None))
//!     .contract(Contract::Sandboxing)
//!     .scheme(Scheme::Shadow)
//!     .mode(Mode::Portfolio)
//!     .budget(
//!         Budget::wall(Duration::from_secs(30))
//!             .lane(Lane::Bmc, LaneBudget::depths(&[4, 8, 16])),
//!     )
//!     .query()
//!     .unwrap()
//!     .run();
//! println!("{}", report.cell()); // "CEX": Spectre found
//! std::fs::write("report.json", report.to_json()).unwrap();
//! ```
//!
//! Decided verdicts carry independently checkable evidence by default:
//! proofs an inductive-invariant certificate and attacks a replayable
//! witness, both in raw-netlist vocabulary, re-validated by the
//! `csl-certify` crate. The same evidence gates the result cache —
//! [`Query::run_cached`] and [`Matrix::run_all`] re-check a served
//! entry against a freshly built instance before trusting it
//! (verify-on-load), evicting and re-solving anything that fails.

pub(crate) mod cache;
mod json;
mod report;

use std::path::PathBuf;
use std::time::Duration;

use csl_contracts::Contract;
use csl_cpu::CpuConfig;
use csl_mc::{CheckOptions, SafetyCheck};

use crate::campaign::{matrix, run_cells, CampaignCell};
use crate::fuzz::fuzz_lane;
use crate::harness::{DesignKind, ExcludeRule, InstanceConfig};
use crate::shadow::ShadowOptions;
use crate::verify::{instance_for, run_scheme, Scheme};

pub use crate::fuzz::FuzzPlan;
pub use cache::{CacheStats, ReportCache};
pub use csl_mc::{
    CoverageStats, ExchangeConfig, ExchangeStats, ExecMode as Mode, FuzzStats, InconclusiveReason,
    Lane, LaneBudget, LaneExchange, LanePlan, PrepareConfig, PrepareStats, PreparedInstance,
};
pub use json::{Json, JsonError};
pub use report::{CampaignDiff, CampaignReport, ReadError, Report, VerdictChange};

/// The verification budget: a total wall clock (standing in for the
/// paper's 7-day timeout) plus optional per-lane shaping — wall caps per
/// engine lane and a depth schedule for the BMC attack search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Total wall-clock budget shared by all lanes.
    pub total: Duration,
    /// Per-lane caps and schedules (empty = every lane on the shared
    /// clock).
    pub lanes: LanePlan,
}

impl Budget {
    /// A plain wall-clock budget.
    pub fn wall(total: Duration) -> Budget {
        Budget {
            total,
            lanes: LanePlan::default(),
        }
    }

    /// Shapes one lane (builder style): give BMC a depth schedule or a
    /// short fuse, give PDR the full clock, and so on.
    pub fn lane(mut self, lane: Lane, budget: LaneBudget) -> Budget {
        self.lanes.set(lane, budget);
        self
    }
}

impl Default for Budget {
    /// Matches the engine default (60 s, no lane shaping).
    fn default() -> Budget {
        Budget::wall(CheckOptions::default().total_budget)
    }
}

/// A [`Verifier`] that is not yet a well-formed query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No design under verification was given.
    MissingDesign,
    /// No contract to verify against was given.
    MissingContract,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingDesign => write!(f, "Verifier::design was never called"),
            BuildError::MissingContract => write!(f, "Verifier::contract was never called"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for verification sessions: pick a design, a contract,
/// a scheme and a budget, then [`Verifier::query`] for one cell or
/// [`Verifier::matrix`] for a whole campaign.
///
/// Every knob of the old `CheckOptions`/`InstanceConfig` pair is
/// reachable from here; the defaults match theirs (Contract Shadow Logic
/// scheme, sequential mode, 60 s budget, candidates enabled).
#[derive(Clone, Debug)]
pub struct Verifier {
    design: Option<DesignKind>,
    contract: Option<Contract>,
    scheme: Scheme,
    mode: Mode,
    budget: Budget,
    attack_only: bool,
    bmc_depth: usize,
    kind_max_k: usize,
    use_pdr: bool,
    pdr_max_frames: usize,
    keep_probes: bool,
    excludes: Vec<ExcludeRule>,
    cpu_override: Option<CpuConfig>,
    shadow: ShadowOptions,
    with_candidates: bool,
    threads: usize,
    exchange: ExchangeConfig,
    prepare: PrepareConfig,
    fuzz: Option<FuzzPlan>,
    warm_start: bool,
    certify: bool,
}

impl Default for Verifier {
    fn default() -> Verifier {
        let opts = CheckOptions::default();
        Verifier {
            design: None,
            contract: None,
            scheme: Scheme::Shadow,
            mode: opts.mode,
            budget: Budget::default(),
            attack_only: opts.attack_only,
            bmc_depth: opts.bmc_depth,
            kind_max_k: opts.kind_max_k,
            use_pdr: opts.use_pdr,
            pdr_max_frames: opts.pdr_max_frames,
            keep_probes: opts.keep_probes,
            excludes: Vec::new(),
            cpu_override: None,
            shadow: ShadowOptions::default(),
            with_candidates: true,
            threads: 0,
            exchange: opts.exchange,
            prepare: opts.prepare,
            fuzz: None,
            warm_start: opts.warm_start,
            certify: opts.certify,
        }
    }
}

impl Verifier {
    /// A fresh builder with the default options.
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// The design under verification (required).
    pub fn design(mut self, design: DesignKind) -> Verifier {
        self.design = Some(design);
        self
    }

    /// The software-hardware contract to verify against (required).
    pub fn contract(mut self, contract: Contract) -> Verifier {
        self.contract = Some(contract);
        self
    }

    /// The verification scheme (default: Contract Shadow Logic).
    pub fn scheme(mut self, scheme: Scheme) -> Verifier {
        self.scheme = scheme;
        self
    }

    /// Sequential engine pipeline or thread-racing portfolio.
    pub fn mode(mut self, mode: Mode) -> Verifier {
        self.mode = mode;
        self
    }

    /// Wall clock and per-lane shaping.
    pub fn budget(mut self, budget: Budget) -> Verifier {
        self.budget = budget;
        self
    }

    /// Configures the cross-lane clause/lemma exchange bus (portfolio
    /// mode): `ExchangeConfig::on()` lets BMC's learnt clauses seed
    /// k-induction, streams Houdini survivors into the running proof
    /// lanes, and records per-lane import/export counts in the report.
    pub fn exchange(mut self, exchange: ExchangeConfig) -> Verifier {
        self.exchange = exchange;
        self
    }

    /// Configures instance preparation — the netlist reduction pipeline
    /// every engine runs behind (cone-of-influence, constant sweep with
    /// cross-copy re-strash, dead-latch elimination, compaction).
    /// Default on; [`PrepareConfig::off()`] is the escape hatch that
    /// hands the engines the raw instance. Counterexamples are always
    /// expressed in raw-netlist vocabulary regardless.
    pub fn prepare(mut self, prepare: PrepareConfig) -> Verifier {
        self.prepare = prepare;
        self
    }

    /// Adds a differential-fuzzing lane to the check (off by default):
    /// the plan's campaign runs on the 64-way bit-parallel simulator as
    /// one more attack-finding engine. In portfolio mode it races the
    /// solver lanes — a concrete leak is decisive and cancels them — and
    /// in sequential mode it runs first. Findings come back as ordinary
    /// attack traces (replayable, lifted to raw-netlist vocabulary) and
    /// the campaign statistics land in the report's `fuzz` block.
    ///
    /// Fuzzing applies to the engine-pipeline schemes (`Shadow`,
    /// `Baseline`); the LEAVE and UPEC scheme runners have fixed engine
    /// scripts and ignore it.
    pub fn fuzz(mut self, plan: FuzzPlan) -> Verifier {
        self.fuzz = Some(plan);
        self
    }

    /// Removes a previously configured fuzzing lane.
    pub fn no_fuzz(mut self) -> Verifier {
        self.fuzz = None;
        self
    }

    /// Reuses solver sessions across engine calls and across repeated
    /// checks on the same netlist (off by default): undecided BMC
    /// unrollings and k-induction base/step pairs are parked in a
    /// process-wide pool and resumed by the next structurally identical
    /// query, skipping the re-encode/re-learn cost. Verdicts are
    /// unaffected; per-lane warm-hit/miss counts land in the report's
    /// `solver` block.
    pub fn warm(mut self, on: bool) -> Verifier {
        self.warm_start = on;
        self
    }

    /// Emits a checkable certificate with every proof and gates the
    /// result cache on re-validation (default on): proofs carry their
    /// inductive invariant in raw-netlist vocabulary, attacks their
    /// replayable trace, and [`Query::run_cached`] / [`Matrix::run_all`]
    /// re-check a cache-served verdict against a freshly built instance
    /// before serving it — a failed check evicts the entry and the cell
    /// re-solves. Turning it off skips both the emission and the
    /// verify-on-load pass (trust-the-cache mode).
    pub fn certify(mut self, on: bool) -> Verifier {
        self.certify = on;
        self
    }

    /// Shorthand for setting the total wall clock; lane shaping already
    /// configured via [`Verifier::budget`] is preserved.
    pub fn wall(mut self, total: Duration) -> Verifier {
        self.budget.total = total;
        self
    }

    /// Skip the proof engines entirely (pure attack hunting).
    pub fn attack_only(mut self, on: bool) -> Verifier {
        self.attack_only = on;
        self
    }

    /// Maximum BMC depth for the attack search.
    pub fn bmc_depth(mut self, depth: usize) -> Verifier {
        self.bmc_depth = depth;
        self
    }

    /// Maximum k for k-induction (0 disables the engine).
    pub fn kind_max_k(mut self, k: usize) -> Verifier {
        self.kind_max_k = k;
        self
    }

    /// Run PDR when earlier engines are inconclusive.
    pub fn use_pdr(mut self, on: bool) -> Verifier {
        self.use_pdr = on;
        self
    }

    /// PDR frame cap.
    pub fn pdr_max_frames(mut self, frames: usize) -> Verifier {
        self.pdr_max_frames = frames;
        self
    }

    /// Keep probe logic alive (larger encodings, readable traces).
    pub fn keep_probes(mut self, on: bool) -> Verifier {
        self.keep_probes = on;
        self
    }

    /// Adds one program-space exclusion assumption (§7.1.4's "exclude the
    /// first attack we found" workflow); callable repeatedly.
    pub fn exclude(mut self, rule: ExcludeRule) -> Verifier {
        if !self.excludes.contains(&rule) {
            self.excludes.push(rule);
        }
        self
    }

    /// Replaces the whole exclusion set.
    pub fn excludes(mut self, rules: &[ExcludeRule]) -> Verifier {
        self.excludes = rules.to_vec();
        self
    }

    /// Structure-size override for Figure-2 style sweeps.
    pub fn cpu_override(mut self, cfg: CpuConfig) -> Verifier {
        self.cpu_override = Some(cfg);
        self
    }

    /// Shadow-logic knobs (sync/drain requirements, FIFO depth).
    pub fn shadow(mut self, opts: ShadowOptions) -> Verifier {
        self.shadow = opts;
        self
    }

    /// Generate LEAVE-style relational invariant candidates (default on).
    pub fn with_candidates(mut self, on: bool) -> Verifier {
        self.with_candidates = on;
        self
    }

    /// Worker threads for matrix runs (0 = sized from the core count).
    pub fn threads(mut self, threads: usize) -> Verifier {
        self.threads = threads;
        self
    }

    /// Resolves the builder into a typed single-cell [`Query`].
    pub fn query(self) -> Result<Query, BuildError> {
        let design = self.design.ok_or(BuildError::MissingDesign)?;
        let contract = self.contract.ok_or(BuildError::MissingContract)?;
        let cfg = self.instance_config(design, contract);
        let opts = self.check_options_for(design, contract);
        Ok(Query {
            scheme: self.scheme,
            design,
            contract,
            cfg,
            opts,
        })
    }

    /// A whole scheme × design × contract campaign sharing this builder's
    /// options. The associated-function form
    /// `Verifier::matrix(schemes, designs, contracts)` starts from the
    /// defaults; chain the usual builder calls on the result.
    pub fn matrix(schemes: &[Scheme], designs: &[DesignKind], contracts: &[Contract]) -> Matrix {
        Verifier::new().into_matrix(schemes, designs, contracts)
    }

    /// Fans this configured builder out over a cell matrix (design,
    /// contract and scheme settings on `self` are superseded by the
    /// matrix axes).
    pub fn into_matrix(
        self,
        schemes: &[Scheme],
        designs: &[DesignKind],
        contracts: &[Contract],
    ) -> Matrix {
        Matrix {
            cells: matrix(schemes, designs, contracts),
            base: self,
            cache_dir: None,
            cache_max_entries: None,
        }
    }

    fn check_options(&self) -> CheckOptions {
        CheckOptions {
            total_budget: self.budget.total,
            bmc_depth: self.bmc_depth,
            attack_only: self.attack_only,
            kind_max_k: self.kind_max_k,
            use_pdr: self.use_pdr,
            pdr_max_frames: self.pdr_max_frames,
            keep_probes: self.keep_probes,
            mode: self.mode,
            lanes: self.budget.lanes.clone(),
            exchange: self.exchange.clone(),
            prepare: self.prepare.clone(),
            warm_start: self.warm_start,
            certify: self.certify,
            extra_lanes: Vec::new(),
        }
    }

    /// The engine options for one resolved cell. The fuzzing lane needs
    /// the cell's ISA configuration (stimulus sizes follow the design),
    /// so the factory is built here rather than in [`check_options`].
    fn check_options_for(&self, design: DesignKind, contract: Contract) -> CheckOptions {
        let mut opts = self.check_options();
        if let Some(plan) = &self.fuzz {
            let isa = self.instance_config(design, contract).cpu_config().isa;
            opts.extra_lanes.push(fuzz_lane(isa, plan.clone()));
        }
        opts
    }

    fn instance_config(&self, design: DesignKind, contract: Contract) -> InstanceConfig {
        InstanceConfig {
            design,
            cpu_override: self.cpu_override,
            contract,
            shadow: self.shadow,
            excludes: self.excludes.clone(),
            with_candidates: self.with_candidates,
        }
    }
}

/// A fully-resolved single-cell verification task. Cheap to clone and
/// rerun; [`Query::run`] executes the scheme to a [`Report`], and
/// [`Query::instance`] exposes the underlying model-checking instance for
/// engine-level experiments.
#[derive(Clone, Debug)]
pub struct Query {
    scheme: Scheme,
    design: DesignKind,
    contract: Contract,
    cfg: InstanceConfig,
    opts: CheckOptions,
}

impl Query {
    /// The scheme this query runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The design under verification.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// The contract being verified.
    pub fn contract(&self) -> Contract {
        self.contract
    }

    /// The resolved instance configuration.
    pub fn config(&self) -> &InstanceConfig {
        &self.cfg
    }

    /// The resolved engine options.
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Runs the scheme to a verdict.
    pub fn run(&self) -> Report {
        let check = run_scheme(self.scheme, &self.cfg, &self.opts);
        Report::from_check(self.scheme, self.design, self.contract, check)
    }

    /// Builds and *prepares* the model-checking instance without running
    /// it (the typed replacement for the `build_*_instance` free
    /// functions): the reduced netlist the engines would run on, the
    /// [`csl_hdl::xform::Reconstruction`] that lifts traces back to the
    /// raw netlist, and the per-pass reduction statistics. With
    /// [`PrepareConfig::off()`] configured this is the raw instance
    /// under an identity reconstruction.
    pub fn instance(&self) -> PreparedInstance {
        csl_mc::prepare(
            &self.raw_instance(),
            &self.opts.prepare,
            self.opts.keep_probes,
        )
    }

    /// Builds the raw (unprepared) model-checking instance.
    pub fn raw_instance(&self) -> SafetyCheck {
        instance_for(self.scheme, &self.cfg)
    }

    /// Stable fingerprint of this query for the session result cache:
    /// scheme × design × contract × every engine option (the preparation
    /// pipeline included) × a structural hash of the built netlist and
    /// its invariant candidates. Two queries with the same key decide
    /// the same problem. The raw netlist is hashed — preparation is
    /// deterministic, so raw netlist + prepare config determine the
    /// reduced instance — and building it costs netlist-construction
    /// time, trivial next to any solving the key would spare.
    pub fn cache_key(&self) -> u64 {
        let mut h = cache::Fingerprint::new();
        h.str(self.scheme.name());
        h.str(&self.design.name());
        h.str(&self.contract.name());
        cache::options_fingerprint(&mut h, &self.opts);
        cache::instance_fingerprint(&mut h, &self.raw_instance());
        h.finish()
    }

    /// [`Query::run`], consulting (and feeding) a [`ReportCache`]: a hit
    /// skips solving entirely and returns the stored report with a note
    /// appended; a decided miss is stored for next time.
    ///
    /// With certification on (the default, see [`Verifier::certify`]) a
    /// hit is served only after *verify-on-load*: the stored proof
    /// certificate is re-checked — or the stored attack trace replayed —
    /// against a freshly built instance, so a stale, corrupted, or
    /// forged entry can never launder an unaudited verdict. A failed
    /// check evicts the entry (counted in [`CacheStats::rejected`]) and
    /// the cell re-solves.
    pub fn run_cached(&self, cache: &ReportCache) -> Report {
        let key = self.cache_key();
        if let Some(hit) = cache.serve(key) {
            if !self.opts.certify || self.cached_report_is_sound(&hit) {
                return hit;
            }
            cache.reject(key);
        }
        let report = self.run();
        let _ = cache.store(key, &report);
        report
    }

    /// The verify-on-load check: does this cache-served report's
    /// evidence re-check against the freshly built raw instance? Attacks
    /// must replay to a bad state with every assume held; proofs must
    /// carry a certificate whose three obligations pass. A proof with no
    /// certificate fails — under certification the cache only trusts
    /// what it can audit.
    fn cached_report_is_sound(&self, report: &Report) -> bool {
        use csl_certify::{check_certificate, check_witness, Witness};
        match &report.verdict {
            csl_mc::Verdict::Attack(trace) => {
                let task = self.raw_instance();
                check_witness(&task.aig, &Witness::new((**trace).clone())).is_ok()
            }
            csl_mc::Verdict::Proof(_) => match &report.certificate {
                Some(cert) => check_certificate(&self.raw_instance(), cert).is_ok(),
                None => false,
            },
            // Undecided verdicts are never stored; if one slips in, it
            // carries no claim worth auditing.
            _ => true,
        }
    }
}

/// A campaign: a cell matrix plus the shared per-cell options, run on a
/// worker pool. Produced by [`Verifier::matrix`] /
/// [`Verifier::into_matrix`].
#[derive(Clone, Debug)]
pub struct Matrix {
    base: Verifier,
    cells: Vec<CampaignCell>,
    cache_dir: Option<PathBuf>,
    cache_max_entries: Option<usize>,
}

impl Matrix {
    /// The cells, in deterministic matrix order.
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    /// Per-cell wall clock and lane shaping.
    pub fn budget(mut self, budget: Budget) -> Matrix {
        self.base = self.base.budget(budget);
        self
    }

    /// Per-cell execution mode (sequential or portfolio).
    pub fn mode(mut self, mode: Mode) -> Matrix {
        self.base = self.base.mode(mode);
        self
    }

    /// Per-cell exchange-bus configuration.
    pub fn exchange(mut self, exchange: ExchangeConfig) -> Matrix {
        self.base = self.base.exchange(exchange);
        self
    }

    /// Per-cell instance-preparation configuration.
    pub fn prepare(mut self, prepare: PrepareConfig) -> Matrix {
        self.base = self.base.prepare(prepare);
        self
    }

    /// Adds a per-cell differential-fuzzing lane (see
    /// [`Verifier::fuzz`]); the stimulus sizes follow each cell's
    /// design configuration.
    pub fn fuzz(mut self, plan: FuzzPlan) -> Matrix {
        self.base = self.base.fuzz(plan);
        self
    }

    /// Enables the session result cache rooted at `dir`: `run_all` skips
    /// cells whose [`Query::cache_key`] already has a decided report on
    /// disk and stores newly decided ones. Timeouts/unknowns always
    /// rerun.
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Matrix {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Caps the on-disk cache at `n` reports: after each store the
    /// oldest entries (LRU by file mtime — hits refresh it) are pruned
    /// until the directory fits. The `cache --max-entries` knob of the
    /// bench bins lands here.
    pub fn cache_max_entries(mut self, n: usize) -> Matrix {
        self.cache_max_entries = Some(n);
        self
    }

    /// Drops a previously configured cache (the `--no-cache` escape
    /// hatch).
    pub fn no_cache(mut self) -> Matrix {
        self.cache_dir = None;
        self
    }

    /// Worker threads (0 = sized from the core count and mode).
    pub fn threads(mut self, threads: usize) -> Matrix {
        self.base = self.base.threads(threads);
        self
    }

    /// Skip proof engines in every cell.
    pub fn attack_only(mut self, on: bool) -> Matrix {
        self.base = self.base.attack_only(on);
        self
    }

    /// Per-cell BMC depth.
    pub fn bmc_depth(mut self, depth: usize) -> Matrix {
        self.base = self.base.bmc_depth(depth);
        self
    }

    /// Per-cell certificate emission and cache verify-on-load (see
    /// [`Verifier::certify`]).
    pub fn certify(mut self, on: bool) -> Matrix {
        self.base = self.base.certify(on);
        self
    }

    /// Arbitrary builder access for the remaining knobs.
    pub fn configure(mut self, f: impl FnOnce(Verifier) -> Verifier) -> Matrix {
        self.base = f(self.base);
        self
    }

    /// The fully-resolved query one cell of this matrix runs.
    fn cell_query(&self, cell: &CampaignCell) -> Query {
        self.base
            .clone()
            .design(cell.design)
            .contract(cell.contract)
            .scheme(cell.scheme)
            .query()
            .expect("matrix cells always carry a design and a contract")
    }

    /// Runs every cell on the worker pool and returns the reports in
    /// matrix order (never completion order). With a cache configured
    /// (see [`Matrix::cache`]), cells whose query fingerprint already has
    /// a decided report on disk are skipped and served from it.
    pub fn run_all(&self) -> CampaignReport {
        let start = std::time::Instant::now();
        let cache = self
            .cache_dir
            .as_ref()
            .map(|dir| ReportCache::new(dir).with_max_entries_opt(self.cache_max_entries));
        let mut slots: Vec<Option<Report>> = vec![None; self.cells.len()];
        let mut keys: Vec<Option<u64>> = vec![None; self.cells.len()];
        if let Some(cache) = &cache {
            // Serial key pass: cache_key builds each cell's instance once
            // more than the pool will. Netlist construction is
            // milliseconds against multi-second per-cell SAT budgets, so
            // the lookup stays simple rather than threading key
            // computation through the worker pool.
            for (i, cell) in self.cells.iter().enumerate() {
                let query = self.cell_query(cell);
                let key = query.cache_key();
                keys[i] = Some(key);
                // Verify-on-load (see `Query::run_cached`): a served
                // entry whose certificate or witness fails to re-check
                // is evicted and the cell re-solves on the pool.
                slots[i] = match cache.serve(key) {
                    Some(hit) if !query.options().certify || query.cached_report_is_sound(&hit) => {
                        Some(hit)
                    }
                    Some(_) => {
                        cache.reject(key);
                        None
                    }
                    None => None,
                };
            }
        }
        let to_run: Vec<usize> = (0..self.cells.len())
            .filter(|&i| slots[i].is_none())
            .collect();
        let pending: Vec<CampaignCell> = to_run.iter().map(|&i| self.cells[i]).collect();
        let make_cfg = |cell: &CampaignCell| self.base.instance_config(cell.design, cell.contract);
        // Options are resolved per cell: the fuzzing lane's stimulus
        // generator is sized from each cell's design configuration.
        let make_opts =
            |cell: &CampaignCell| self.base.check_options_for(cell.design, cell.contract);
        let (checks, _pool_wall) = run_cells(&pending, &make_cfg, &make_opts, self.base.threads);
        for (&i, check) in to_run.iter().zip(checks) {
            let cell = self.cells[i];
            let report = Report::from_check(cell.scheme, cell.design, cell.contract, check);
            if let (Some(cache), Some(key)) = (&cache, keys[i]) {
                let _ = cache.store(key, &report);
            }
            slots[i] = Some(report);
        }
        CampaignReport {
            reports: slots
                .into_iter()
                .map(|r| r.expect("every cell either cached or ran"))
                .collect(),
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_design_and_contract() {
        assert_eq!(
            Verifier::new().query().unwrap_err(),
            BuildError::MissingDesign
        );
        assert_eq!(
            Verifier::new()
                .design(DesignKind::SingleCycle)
                .query()
                .unwrap_err(),
            BuildError::MissingContract
        );
        let q = Verifier::new()
            .design(DesignKind::SingleCycle)
            .contract(Contract::Sandboxing)
            .query()
            .unwrap();
        assert_eq!(q.scheme(), Scheme::Shadow);
        assert_eq!(q.design(), DesignKind::SingleCycle);
    }

    #[test]
    fn builder_threads_options_through() {
        let q = Verifier::new()
            .design(DesignKind::SingleCycle)
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Upec)
            .mode(Mode::Portfolio)
            .budget(
                Budget::wall(Duration::from_secs(7)).lane(Lane::Bmc, LaneBudget::depths(&[2, 4])),
            )
            .attack_only(true)
            .bmc_depth(9)
            .exclude(ExcludeRule::TakenBranches)
            .exclude(ExcludeRule::TakenBranches)
            .query()
            .unwrap();
        assert_eq!(q.options().total_budget, Duration::from_secs(7));
        assert_eq!(q.options().mode, Mode::Portfolio);
        assert!(q.options().attack_only);
        assert_eq!(q.options().bmc_depth, 9);
        assert_eq!(q.options().lanes.get(Lane::Bmc).depth_schedule, vec![2, 4]);
        // Duplicate excludes collapse.
        assert_eq!(q.config().excludes, vec![ExcludeRule::TakenBranches]);
        // `wall` only replaces the total clock, never the lane shaping.
        let q2 = Verifier::new()
            .design(DesignKind::SingleCycle)
            .contract(Contract::Sandboxing)
            .budget(Budget::wall(Duration::from_secs(7)).lane(Lane::Bmc, LaneBudget::depths(&[2])))
            .wall(Duration::from_secs(9))
            .query()
            .unwrap();
        assert_eq!(q2.options().total_budget, Duration::from_secs(9));
        assert_eq!(q2.options().lanes.get(Lane::Bmc).depth_schedule, vec![2]);
        // UPEC adds its fault exclusion at instance-build time, not here.
        let task = q.instance();
        assert!(task.aig().num_ands() > 0);
    }

    #[test]
    fn run_cached_rejects_tampered_entries_and_resolves() {
        use csl_mc::Verdict;

        let dir = std::env::temp_dir().join(format!("csl-verify-on-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let q = Verifier::new()
            .design(DesignKind::SingleCycle)
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Leave)
            .wall(Duration::from_secs(60))
            .query()
            .unwrap();
        let first = q.run_cached(&cache);
        assert!(
            first.verdict.is_attack() || first.verdict.is_proof(),
            "smoke cell must decide: {:?}",
            first.verdict
        );

        // A genuine entry passes verify-on-load and is served.
        let second = q.run_cached(&cache);
        assert!(second.notes.iter().any(|n| n.contains("served from cache")));
        assert_eq!(cache.stats().rejected, 0);

        // Forge the entry: strip a proof's certificate / gut an attack's
        // trace. Either way the evidence no longer re-checks.
        let mut forged = first.clone();
        match &mut forged.verdict {
            Verdict::Proof(_) => forged.certificate = None,
            Verdict::Attack(trace) => trace.inputs.clear(),
            _ => unreachable!("decided cells only"),
        }
        let key = q.cache_key();
        cache.store(key, &forged).unwrap();

        let third = q.run_cached(&cache);
        assert_eq!(
            cache.stats().rejected,
            1,
            "the forged entry must be rejected"
        );
        assert_eq!(
            third.verdict.cell(),
            first.verdict.cell(),
            "the cell re-solves to the same verdict"
        );
        assert!(
            !third.notes.iter().any(|n| n.contains("served from cache")),
            "a rejected entry must not be served"
        );

        // The re-solve stored a fresh, valid entry.
        let fourth = q.run_cached(&cache);
        assert!(fourth.notes.iter().any(|n| n.contains("served from cache")));
        assert_eq!(cache.stats().rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrix_cells_follow_matrix_order() {
        let m = Verifier::matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
        .threads(2);
        assert_eq!(m.cells().len(), Scheme::ALL.len());
        assert_eq!(m.cells()[0].scheme, Scheme::ALL[0]);
    }
}

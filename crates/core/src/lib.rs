//! `csl-core` — Contract Shadow Logic: RTL verification for secure
//! speculation (reproduction of the ASPLOS'25 paper).
//!
//! The crate assembles everything below it into the paper's verification
//! methodology:
//!
//! * [`record`] — RTL-side `O_ISA` record extraction from commit ports
//!   (§5.1's shadow metadata),
//! * [`fifo`] — commit-record skid FIFOs (§5.3's superscalar trace
//!   buffering),
//! * [`shadow`] — the two-phase shadow monitor: divergence detection,
//!   pause-based re-alignment (synchronisation requirement) and drain
//!   tracking (instruction-inclusion requirement),
//! * [`harness`] — verification-instance construction for the two-machine
//!   (Fig. 1b) and four-machine baseline (Fig. 1a) setups,
//! * [`verify`] — the four schemes of Table 2 (Baseline, LEAVE, UPEC,
//!   Contract Shadow Logic) run to one of the paper's verdicts: an attack
//!   counterexample, an unbounded proof, UNKNOWN, or a timeout,
//! * [`campaign`] — the scheme × design × contract matrix evaluated on a
//!   worker pool with per-cell budgets and a deterministic result table
//!   (the Table-2 reproduction engine).
//!
//! # Quickstart
//!
//! ```no_run
//! use csl_contracts::Contract;
//! use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
//! use csl_cpu::Defense;
//! use csl_mc::CheckOptions;
//!
//! // Is the insecure SimpleOoO core safe under the sandboxing contract?
//! let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
//! let report = verify(Scheme::Shadow, &cfg, &CheckOptions::default());
//! assert!(report.verdict.is_attack()); // Spectre-style leak found
//! ```

pub mod campaign;
pub mod fifo;
pub mod fuzz;
pub mod harness;
pub mod record;
pub mod shadow;
pub mod verify;

pub use campaign::{
    matrix, run_campaign, CampaignCell, CampaignOptions, CampaignReport, CellResult,
};
pub use fifo::{FifoPlan, RecordFifo};
pub use fuzz::{fuzz_design, replay_finding, FuzzFinding, FuzzOptions, FuzzOutcome};
pub use harness::{
    build_baseline_instance, build_leave_instance, build_shadow_instance, DesignKind, ExcludeRule,
    InstanceConfig,
};
pub use record::{extract_record, pack_isa_record};
pub use shadow::{uarch_trace_diff, ShadowOptions, ShadowPre};
pub use verify::{build_instance, verify, Scheme};

//! `csl-core` — Contract Shadow Logic: RTL verification for secure
//! speculation (reproduction of the ASPLOS'25 paper).
//!
//! The crate assembles everything below it into the paper's verification
//! methodology:
//!
//! * [`record`] — RTL-side `O_ISA` record extraction from commit ports
//!   (§5.1's shadow metadata),
//! * [`fifo`] — commit-record skid FIFOs (§5.3's superscalar trace
//!   buffering),
//! * [`shadow`] — the two-phase shadow monitor: divergence detection,
//!   pause-based re-alignment (synchronisation requirement) and drain
//!   tracking (instruction-inclusion requirement),
//! * [`harness`] — verification-instance construction for the two-machine
//!   (Fig. 1b) and four-machine baseline (Fig. 1a) setups,
//! * [`verify`] — the four schemes of Table 2 (Baseline, LEAVE, UPEC,
//!   Contract Shadow Logic) run to one of the paper's verdicts: an attack
//!   counterexample, an unbounded proof, UNKNOWN, or a timeout,
//! * [`fuzz`] — differential fuzzing as a first-class backend (§9's
//!   contrast class): a [`FuzzPlan`] runs on the 64-way bit-parallel
//!   simulator, races the solver lanes through [`FuzzBackend`] (a
//!   `csl_mc::Backend`), and reports findings as replayable
//!   counterexample traces; with `FuzzPlan::coverage(true)` the
//!   campaign is coverage-guided (see `csl_cover`): latch-toggle
//!   coverage drives a mutation corpus, and the exchange bus carries
//!   fuzz-reached frontier states to PDR and proven-unreachable
//!   clauses back as a stimulus rejection filter,
//! * [`campaign`] — the scheme × design × contract matrix evaluated on a
//!   worker pool with per-cell budgets and a deterministic result table
//!   (the Table-2 reproduction engine),
//! * [`api`] — **the unified entry point**: the fluent [`api::Verifier`]
//!   session builder (including the portfolio exchange-bus knob,
//!   `.exchange(..)`, and the instance-preparation knob,
//!   `.prepare(..)`), typed [`api::Query`]s with stable cache keys
//!   whose `.instance()` yields a prepared (reduced) instance with a
//!   trace back-map, a persistent [`api::ReportCache`] with optional
//!   LRU size caps, and persistable
//!   [`api::Report`]/[`api::CampaignReport`] results (JSON/CSV writers,
//!   round-trip parsing, cross-run diffing, per-lane exchange traffic,
//!   per-pass preparation stats), with proof certificates and attack
//!   witnesses carried alongside for independent re-checking via
//!   `csl-certify`.
//!
//! # Quickstart
//!
//! ```no_run
//! use csl_contracts::Contract;
//! use csl_core::api::Verifier;
//! use csl_core::DesignKind;
//! use csl_cpu::Defense;
//!
//! // Is the insecure SimpleOoO core safe under the sandboxing contract?
//! let report = Verifier::new()
//!     .design(DesignKind::SimpleOoo(Defense::None))
//!     .contract(Contract::Sandboxing)
//!     .query()
//!     .unwrap()
//!     .run();
//! assert!(report.verdict.is_attack()); // Spectre-style leak found
//! ```

pub mod api;
pub mod campaign;
pub mod fifo;
pub mod fuzz;
pub mod harness;
pub mod record;
pub mod shadow;
pub mod verify;

pub use campaign::{matrix, CampaignCell};
pub use fifo::{FifoPlan, RecordFifo};
pub use fuzz::{
    fuzz_lane, run_fuzz, run_fuzz_shared, FuzzBackend, FuzzFinding, FuzzOutcome, FuzzPlan,
    FuzzReport,
};
pub use harness::{DesignKind, ExcludeRule, InstanceConfig};
pub use record::{extract_record, pack_isa_record, RecordTooWide};
pub use shadow::{uarch_trace_diff, ShadowOptions, ShadowPre};
pub use verify::Scheme;

//! Campaign runner: the scheme × design × contract matrix on a thread pool.
//!
//! Table 2 of the paper evaluates every verification scheme against every
//! processor design under a contract, each cell with its own wall-clock
//! budget. The cells are independent, so a campaign is embarrassingly
//! parallel: [`run_campaign`] executes them on a pool of worker threads
//! (each cell may itself be a portfolio race — the per-cell
//! [`CheckOptions::mode`] controls that) and reassembles the results in
//! matrix order, so the output table is deterministic regardless of which
//! worker finished first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use csl_contracts::Contract;
use csl_mc::{CheckOptions, CheckReport, ExecMode};

use crate::harness::{DesignKind, InstanceConfig};
use crate::verify::{verify, Scheme};

/// One cell of the evaluation matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignCell {
    pub scheme: Scheme,
    pub design: DesignKind,
    pub contract: Contract,
}

impl CampaignCell {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.scheme.name(),
            self.design.name(),
            self.contract.name()
        )
    }
}

/// The full cross product in deterministic (scheme-major) order.
pub fn matrix(
    schemes: &[Scheme],
    designs: &[DesignKind],
    contracts: &[Contract],
) -> Vec<CampaignCell> {
    let mut cells = Vec::with_capacity(schemes.len() * designs.len() * contracts.len());
    for &contract in contracts {
        for &scheme in schemes {
            for &design in designs {
                cells.push(CampaignCell {
                    scheme,
                    design,
                    contract,
                });
            }
        }
    }
    cells
}

/// Options for [`run_campaign`].
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 = sized from the core count, accounting for the
    /// engine lanes each cell spawns in portfolio mode).
    pub threads: usize,
    /// Per-cell check options; `total_budget` is the per-cell budget and
    /// `mode` selects sequential or portfolio execution inside each cell.
    pub cell: CheckOptions,
}

impl CampaignOptions {
    fn worker_count(&self, cells: usize) -> usize {
        let n = if self.threads == 0 {
            let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
            // A portfolio cell spawns up to four engine lanes of its own;
            // sizing the pool to the core count would oversubscribe the CPU
            // 4x and let wall-clock contention flip borderline cells to
            // timeouts. Budget cores to total threads, not to cells.
            match self.cell.mode {
                ExecMode::Portfolio => (hw / 4).max(1),
                ExecMode::Sequential => hw,
            }
        } else {
            self.threads
        };
        n.clamp(1, cells.max(1))
    }
}

/// One finished cell.
#[derive(Debug)]
pub struct CellResult {
    pub cell: CampaignCell,
    pub report: CheckReport,
}

/// A finished campaign: results in the same order as the input cells
/// (never completion order), plus the measured wall clock.
#[derive(Debug)]
pub struct CampaignReport {
    pub results: Vec<CellResult>,
    pub wall: Duration,
}

impl CampaignReport {
    /// Looks up a cell's report.
    pub fn get(
        &self,
        scheme: Scheme,
        design: DesignKind,
        contract: Contract,
    ) -> Option<&CheckReport> {
        self.results
            .iter()
            .find(|r| {
                r.cell.scheme == scheme && r.cell.design == design && r.cell.contract == contract
            })
            .map(|r| &r.report)
    }

    /// Sum of per-cell elapsed times — what a sequential loop would have
    /// paid (modulo early exits); compare with `wall` for the speedup.
    pub fn cpu_time(&self) -> Duration {
        self.results.iter().map(|r| r.report.elapsed).sum()
    }

    /// Renders the paper-style result table: one block per contract, one
    /// row per scheme, one column per design, cells as
    /// `VERDICT(elapsed)`. Row/column order follows first appearance in
    /// the result list, which follows the input matrix — deterministic.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;

        let mut contracts: Vec<Contract> = Vec::new();
        let mut schemes: Vec<Scheme> = Vec::new();
        let mut designs: Vec<DesignKind> = Vec::new();
        for r in &self.results {
            if !contracts.contains(&r.cell.contract) {
                contracts.push(r.cell.contract);
            }
            if !schemes.contains(&r.cell.scheme) {
                schemes.push(r.cell.scheme);
            }
            if !designs.contains(&r.cell.design) {
                designs.push(r.cell.design);
            }
        }
        let mut out = String::new();
        for &contract in &contracts {
            let _ = writeln!(out, "contract: {}", contract.name());
            let _ = write!(out, "{:<22}", "scheme");
            for &design in &designs {
                let _ = write!(out, " {:<18}", design.name());
            }
            let _ = writeln!(out);
            for &scheme in &schemes {
                let _ = write!(out, "{:<22}", scheme.name());
                for &design in &designs {
                    let cell = match self.get(scheme, design, contract) {
                        Some(report) => format!(
                            "{}({:.1}s)",
                            report.verdict.cell(),
                            report.elapsed.as_secs_f64()
                        ),
                        None => "-".to_string(),
                    };
                    let _ = write!(out, " {cell:<18}");
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(
            out,
            "wall {:.1}s, cpu {:.1}s, {} cells",
            self.wall.as_secs_f64(),
            self.cpu_time().as_secs_f64(),
            self.results.len()
        );
        out
    }
}

/// Runs every cell on a worker pool and returns the results in matrix
/// order. Workers pull cells from a shared queue, so long cells don't
/// serialize behind each other; each cell runs `verify` with the shared
/// per-cell options.
pub fn run_campaign(cells: &[CampaignCell], opts: &CampaignOptions) -> CampaignReport {
    let start = Instant::now();
    let workers = opts.worker_count(cells.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellResult>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = cells[i];
                let cfg = InstanceConfig::new(cell.design, cell.contract);
                let report = verify(cell.scheme, &cfg, &opts.cell);
                slots.lock().unwrap()[i] = Some(CellResult { cell, report });
            });
        }
    });

    let results = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect();
    CampaignReport {
        results,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_mc::ExecMode;

    fn smoke_cells() -> Vec<CampaignCell> {
        matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
    }

    #[test]
    fn matrix_order_is_deterministic_and_complete() {
        let cells = matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle, DesignKind::InOrder],
            &[Contract::Sandboxing],
        );
        assert_eq!(cells.len(), 8);
        // Scheme-major within a contract: all designs of a scheme first.
        assert_eq!(cells[0].scheme, cells[1].scheme);
        assert_ne!(cells[0].design, cells[1].design);
        assert_eq!(
            cells,
            matrix(
                &Scheme::ALL,
                &[DesignKind::SingleCycle, DesignKind::InOrder],
                &[Contract::Sandboxing],
            )
        );
    }

    #[test]
    fn campaign_results_follow_input_order_regardless_of_workers() {
        let cells = smoke_cells();
        let opts = CampaignOptions {
            threads: 4,
            cell: CheckOptions {
                total_budget: Duration::from_secs(8),
                bmc_depth: 4,
                mode: ExecMode::Portfolio,
                ..Default::default()
            },
        };
        let report = run_campaign(&cells, &opts);
        assert_eq!(report.results.len(), cells.len());
        for (r, c) in report.results.iter().zip(&cells) {
            assert_eq!(r.cell, *c);
        }
        let table = report.render_table();
        assert!(table.contains("ContractShadowLogic"), "{table}");
        assert!(table.contains("SingleCycle"), "{table}");
    }
}

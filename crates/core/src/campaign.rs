//! Campaign runner: the scheme × design × contract matrix on a thread pool.
//!
//! Table 2 of the paper evaluates every verification scheme against every
//! processor design under a contract, each cell with its own wall-clock
//! budget. The cells are independent, so a campaign is embarrassingly
//! parallel: `run_cells` (driving `api::Matrix::run_all`) executes them
//! on a pool of worker threads (each cell may itself be a portfolio race
//! — the per-cell [`CheckOptions::mode`] controls that) and reassembles
//! the results in matrix order, so the output table is deterministic
//! regardless of which worker finished first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use csl_contracts::Contract;
use csl_mc::{CheckOptions, CheckReport, ExecMode};

use crate::harness::{DesignKind, InstanceConfig};
use crate::verify::{run_scheme, Scheme};

/// One cell of the evaluation matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignCell {
    pub scheme: Scheme,
    pub design: DesignKind,
    pub contract: Contract,
}

impl CampaignCell {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.scheme.name(),
            self.design.name(),
            self.contract.name()
        )
    }
}

/// The full cross product in deterministic (scheme-major) order.
pub fn matrix(
    schemes: &[Scheme],
    designs: &[DesignKind],
    contracts: &[Contract],
) -> Vec<CampaignCell> {
    let mut cells = Vec::with_capacity(schemes.len() * designs.len() * contracts.len());
    for &contract in contracts {
        for &scheme in schemes {
            for &design in designs {
                cells.push(CampaignCell {
                    scheme,
                    design,
                    contract,
                });
            }
        }
    }
    cells
}

/// Sizes the worker pool: 0 = derive from the core count, accounting for
/// the engine lanes each cell spawns in portfolio mode.
fn worker_count(threads: usize, mode: ExecMode, cells: usize) -> usize {
    let n = if threads == 0 {
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        // A portfolio cell spawns up to four engine lanes of its own;
        // sizing the pool to the core count would oversubscribe the CPU
        // 4x and let wall-clock contention flip borderline cells to
        // timeouts. Budget cores to total threads, not to cells.
        match mode {
            ExecMode::Portfolio => (hw / 4).max(1),
            ExecMode::Sequential => hw,
        }
    } else {
        threads
    };
    n.clamp(1, cells.max(1))
}

/// The worker-pool core behind `api::Matrix::run_all`: runs every cell,
/// returns the engine reports in input order plus the measured wall
/// clock. Options are
/// resolved per cell (`make_opts`) because extra lanes — the fuzzing
/// backend — are configured against each cell's design.
pub(crate) fn run_cells(
    cells: &[CampaignCell],
    make_cfg: &(dyn Fn(&CampaignCell) -> InstanceConfig + Sync),
    make_opts: &(dyn Fn(&CampaignCell) -> CheckOptions + Sync),
    threads: usize,
) -> (Vec<CheckReport>, Duration) {
    let start = Instant::now();
    let mode = cells
        .first()
        .map_or(ExecMode::default(), |c| make_opts(c).mode);
    let workers = worker_count(threads, mode, cells.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CheckReport>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = cells[i];
                let cfg = make_cfg(&cell);
                let report = run_scheme(cell.scheme, &cfg, &make_opts(&cell));
                slots.lock().unwrap()[i] = Some(report);
            });
        }
    });

    let reports = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect();
    (reports, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_mc::ExecMode;

    fn smoke_cells() -> Vec<CampaignCell> {
        matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
    }

    #[test]
    fn matrix_order_is_deterministic_and_complete() {
        let cells = matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle, DesignKind::InOrder],
            &[Contract::Sandboxing],
        );
        assert_eq!(cells.len(), 8);
        // Scheme-major within a contract: all designs of a scheme first.
        assert_eq!(cells[0].scheme, cells[1].scheme);
        assert_ne!(cells[0].design, cells[1].design);
        assert_eq!(
            cells,
            matrix(
                &Scheme::ALL,
                &[DesignKind::SingleCycle, DesignKind::InOrder],
                &[Contract::Sandboxing],
            )
        );
    }

    #[test]
    fn campaign_results_follow_input_order_regardless_of_workers() {
        let cells = smoke_cells();
        let opts = CheckOptions {
            total_budget: Duration::from_secs(8),
            bmc_depth: 4,
            mode: ExecMode::Portfolio,
            ..Default::default()
        };
        let make_cfg = |cell: &CampaignCell| InstanceConfig::new(cell.design, cell.contract);
        let make_opts = |_: &CampaignCell| opts.clone();
        let (reports, _wall) = run_cells(&cells, &make_cfg, &make_opts, 4);
        assert_eq!(reports.len(), cells.len());
    }
}

//! Differential fuzzing as a first-class verification backend — the
//! paper's §9 contrast class (SpecDoctor, Revizor, SpeechMiner…).
//!
//! Instead of model checking, run the two-machine product on the concrete
//! netlist simulator over random programs and random secret pairs, and
//! compare the microarchitectural observation traces directly. Finding a
//! divergence on a program whose ISA observation traces match is a
//! concrete attack — no solver involved. The trade-off the paper draws is
//! reproduced here measurably: fuzzing can be fast per trial and needs no
//! formal machinery, but offers no coverage guarantee (secure designs get
//! "no attack found after N trials", never a proof).
//!
//! The fuzzer reuses the shadow instance's netlist: the `no_leakage`
//! assertion firing with all contract assumes held *is* the oracle, so
//! the fuzzing and formal flows check the identical property.
//!
//! # Architecture
//!
//! A [`FuzzPlan`] describes a campaign (trials, cycles, seed, scalar or
//! 64-way bit-parallel execution). Three ways to run one:
//!
//! * **Portfolio lane** — [`FuzzBackend`] implements [`csl_mc::Backend`],
//!   so a fuzzing lane races BMC / k-induction / PDR inside
//!   `check_safety`: a concrete leak is a decisive verdict that cancels
//!   the solver lanes, and the campaign statistics land in
//!   [`csl_mc::CheckReport::fuzz`] like any lane's. Register it via
//!   [`fuzz_lane`] on [`csl_mc::CheckOptions::extra_lanes`], or one
//!   level up with `api::Verifier::fuzz(plan)`.
//! * **Direct** — [`run_fuzz`] drives a campaign against any
//!   instrumented netlist under a [`Budget`] and returns the typed
//!   [`FuzzReport`].
//! * **Deprecated shim** — [`fuzz_design`] keeps the pre-backend free
//!   function compiling for one release.
//!
//! Findings are expressed in the shared counterexample vocabulary: every
//! [`FuzzFinding`] carries a [`Trace`] that replays through
//! [`csl_mc::Sim::replay`] and lifts through
//! [`csl_hdl::xform::Reconstruction`] exactly like a formal
//! counterexample — which is how a leak found on the *prepared* (reduced)
//! netlist comes back in raw-netlist vocabulary.
//!
//! Throughput comes from [`csl_mc::BatchSim`]: the AIG is evaluated over
//! `u64` words, one bit per stimulus lane, so one topological pass
//! advances 64 independent trials by a cycle. The `fuzzprobe` bench bin
//! measures the resulting trials/second against the scalar path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csl_hdl::{Aig, Init};
use csl_isa::progen::{self, OpMix, StimulusPair};
use csl_isa::IsaConfig;
use csl_mc::{
    BatchSim, BatchState, EngineOutcome, FuzzStats, InconclusiveReason, Lane, LaneFactory, Sim,
    SimState, Trace, TransitionSystem,
};
use csl_sat::Budget;

/// A fuzzing campaign description: how many program/secret pairs to try,
/// how many cycles to simulate each, the RNG seed, and whether to run
/// the 64-way bit-parallel simulator (the default) or the scalar one.
///
/// Identical seeds produce identical stimulus streams in both execution
/// modes — batching changes throughput, never findings.
#[derive(Clone, Debug)]
pub struct FuzzPlan {
    /// Program/secret pairs to try before giving up.
    pub trials: usize,
    /// Cycles to simulate per trial.
    pub cycles: usize,
    /// Seed for the stimulus stream.
    pub seed: u64,
    /// Evaluate 64 trials per simulator pass (see [`csl_mc::BatchSim`]).
    pub batch: bool,
    /// Opcode weights for the structured half of the program stream.
    pub mix: OpMix,
}

impl Default for FuzzPlan {
    /// Matches the historical `FuzzOptions` defaults, batched.
    fn default() -> FuzzPlan {
        FuzzPlan {
            trials: 2000,
            cycles: 24,
            seed: 0xF0_55,
            batch: true,
            mix: OpMix::default(),
        }
    }
}

impl FuzzPlan {
    /// The default plan.
    pub fn new() -> FuzzPlan {
        FuzzPlan::default()
    }

    /// Sets the trial budget (builder style).
    pub fn trials(mut self, trials: usize) -> FuzzPlan {
        self.trials = trials;
        self
    }

    /// Sets the per-trial cycle count (builder style).
    pub fn cycles(mut self, cycles: usize) -> FuzzPlan {
        self.cycles = cycles;
        self
    }

    /// Sets the stimulus seed (builder style).
    pub fn seed(mut self, seed: u64) -> FuzzPlan {
        self.seed = seed;
        self
    }

    /// Selects the scalar simulator (one trial per pass) — the baseline
    /// the `fuzzprobe` bin compares the batch path against.
    pub fn scalar(mut self) -> FuzzPlan {
        self.batch = false;
        self
    }

    /// Sets the opcode mix (builder style).
    pub fn mix(mut self, mix: OpMix) -> FuzzPlan {
        self.mix = mix;
        self
    }

    /// Stable description of this plan, used as the lane label and as a
    /// session cache-key component — it must change whenever the
    /// campaign the plan describes does.
    pub fn label(&self) -> String {
        let m = &self.mix;
        format!(
            "fuzz(trials={},cycles={},seed={},batch={},mix={}/{}/{}/{}/{}/{})",
            self.trials, self.cycles, self.seed, self.batch, m.li, m.add, m.ld, m.bnz, m.mul, m.nop
        )
    }
}

/// One reproducible finding: the program and secret pair that leaked,
/// plus the equivalent [`Trace`] in the shared counterexample
/// vocabulary (replayable via [`Sim::replay`], liftable via
/// [`Trace::lifted`] when found on a prepared netlist).
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    pub imem: Vec<u32>,
    pub public: Vec<u32>,
    pub secret_a: Vec<u32>,
    pub secret_b: Vec<u32>,
    /// Cycle at which the leakage assertion fired.
    pub cycle: usize,
    /// Trials executed before (and including) the finding.
    pub trials: usize,
    /// The finding as a counterexample trace on the fuzzed netlist.
    pub trace: Trace,
}

/// Outcome of a fuzzing campaign.
#[derive(Clone, Debug)]
pub enum FuzzOutcome {
    /// A leak was observed (and is replayable from the finding).
    Leak(Box<FuzzFinding>),
    /// No leak — *not* a security proof. Wall time and simulated
    /// trial-cycles ride along so throughput is computable without
    /// re-running the campaign.
    Exhausted {
        /// Trials executed (may be short of the plan when the budget
        /// expired first).
        trials: usize,
        /// Wall time the campaign took.
        wall: Duration,
        /// Total trial-cycles simulated.
        sim_cycles: u64,
    },
}

/// A finished campaign: the outcome plus the statistics every outcome
/// carries (the [`FuzzStats`] that land in reports).
#[derive(Clone, Debug)]
pub struct FuzzReport {
    pub outcome: FuzzOutcome,
    pub stats: FuzzStats,
    /// The campaign stopped because the budget (wall clock or stop
    /// flag), not the trial count, ran out.
    pub out_of_budget: bool,
}

/// Parses a memory-latch name of the form `prefix[word][bit]`.
fn parse_mem_name(name: &str) -> Option<(&str, usize, usize)> {
    let open = name.rfind("][")?;
    let bit: usize = name[open + 2..name.len() - 1].parse().ok()?;
    let head = &name[..open + 1];
    let open2 = head.rfind('[')?;
    let word: usize = head[open2 + 1..head.len() - 1].parse().ok()?;
    Some((&head[..open2], word, bit))
}

/// The bit of `stim` that latch `name` should reset to, or `None` when
/// the latch is not a stimulus memory bit (stays at the lane default).
fn stimulus_bit(stim: &StimulusPair, name: &str) -> Option<bool> {
    let (prefix, word, bit) = parse_mem_name(name)?;
    let v = match prefix {
        "imem" => *stim.imem.get(word)?,
        "dmem_pub" => *stim.public.get(word)?,
        "cpu1.dmem_sec" => *stim.secret_a.get(word)?,
        "cpu2.dmem_sec" => *stim.secret_b.get(word)?,
        _ => return None,
    };
    Some((v >> bit) & 1 == 1)
}

/// Scalar reset state for one stimulus.
fn load_scalar(aig: &Aig, stim: &StimulusPair) -> SimState {
    SimState::reset_with(aig, |_, name| stimulus_bit(stim, name).unwrap_or(false))
}

/// Batch reset state: lane `l` loads `stims[l]`; lanes beyond the batch
/// reset to zero.
fn load_batch(aig: &Aig, stims: &[StimulusPair]) -> BatchState {
    BatchState::reset_with(aig, |_, name| {
        stims.iter().enumerate().fold(0u64, |acc, (lane, stim)| {
            acc | ((stimulus_bit(stim, name).unwrap_or(false) as u64) << lane)
        })
    })
}

/// Builds the [`Trace`] equivalent of a leak: the stimulus becomes the
/// symbolic-latch initial assignment, the inputs are the all-zero drive
/// the fuzzer uses, and the trace ends on the leaking cycle.
fn finding_trace(aig: &Aig, stim: &StimulusPair, cycle: usize, bad_name: &str) -> Trace {
    let state = load_scalar(aig, stim);
    let initial_latches = aig
        .latches()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.init == Init::Symbolic)
        .map(|(i, _)| (i as u32, state.latch(i)))
        .collect();
    Trace {
        initial_latches,
        inputs: vec![HashMap::new(); cycle + 1],
        bad_name: bad_name.to_string(),
    }
}

/// Bad bits the campaign treats as the leakage oracle: the `no_leakage`
/// assertion(s) when present, every bad bit otherwise (so the backend
/// stays meaningful on generic safety instances).
fn leak_bads(aig: &Aig) -> Vec<usize> {
    let named: Vec<usize> = aig
        .bads()
        .iter()
        .enumerate()
        .filter(|(_, b)| b.name.contains("no_leakage"))
        .map(|(i, _)| i)
        .collect();
    if named.is_empty() {
        (0..aig.bads().len()).collect()
    } else {
        named
    }
}

/// Runs a fuzzing campaign against an instrumented netlist under a
/// budget. Each trial draws a random program, random public memory, and
/// two random (differing) secrets, then simulates the product machine.
/// A trial counts as a leak only if the leakage assertion fires while
/// every contract assume held up to and including that cycle — the same
/// validity condition the model checker enforces.
///
/// With `plan.batch` (the default), 64 trials advance per simulator
/// pass; findings are identical to the scalar path for the same seed
/// (earliest leaking trial, earliest leaking cycle), only faster.
pub fn run_fuzz(aig: &Aig, isa: &IsaConfig, plan: &FuzzPlan, budget: &Budget) -> FuzzReport {
    let start = Instant::now();
    let oracle = leak_bads(aig);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(plan.seed);
    let mut trials = 0usize;
    let mut sim_cycles = 0u64;
    let mut leak: Option<(StimulusPair, usize, usize, String)> = None; // stim, cycle, trial, bad
    let mut out_of_budget = false;

    if plan.batch {
        let mut sim = BatchSim::new(aig);
        while trials < plan.trials && !out_of_budget {
            if budget.out_of_time() {
                out_of_budget = true;
                break;
            }
            let width = BatchSim::LANES.min(plan.trials - trials);
            let stims = progen::random_stimulus_batch(isa, &plan.mix, &mut rng, width);
            let mut state = load_batch(aig, &stims);
            let mut alive: u64 = if width == 64 { !0 } else { (1u64 << width) - 1 };
            let mut first_leak: Vec<Option<(usize, usize)>> = vec![None; width];
            let mut cycles_run = 0usize;
            for cycle in 0..plan.cycles {
                if budget.out_of_time() {
                    // Fall through to the leak scan: a leak a lane
                    // recorded in an earlier cycle still counts.
                    out_of_budget = true;
                    break;
                }
                let r = sim.step_masks(&state, |_, _| 0);
                cycles_run = cycle + 1;
                sim_cycles += width as u64;
                // A violated assume invalidates the lane's trial from
                // this cycle on — before the leak check, matching the
                // scalar trial loop.
                alive &= !r.violated_lanes();
                for &bi in &oracle {
                    let fired = r.fired_bads[bi] & alive;
                    if fired != 0 {
                        for (lane, slot) in first_leak.iter_mut().enumerate() {
                            if (fired >> lane) & 1 == 1 && slot.is_none() {
                                *slot = Some((cycle, bi));
                            }
                        }
                    }
                }
                // A leaked lane is decided; stop tracking it.
                for (lane, slot) in first_leak.iter().enumerate() {
                    if slot.is_some() {
                        alive &= !(1u64 << lane);
                    }
                }
                if alive == 0 {
                    break;
                }
                state = r.next;
            }
            if let Some(lane) = (0..width).find(|&l| first_leak[l].is_some()) {
                let (cycle, bi) = first_leak[lane].expect("lane just matched");
                leak = Some((
                    stims[lane].clone(),
                    cycle,
                    trials + lane + 1,
                    aig.bads()[bi].name.clone(),
                ));
                trials += lane + 1;
                break;
            }
            // Count the batch only if it actually simulated: a budget
            // expiry before the first cycle must not inflate the trial
            // count (and hence trials/sec) the probes report.
            if cycles_run > 0 {
                trials += width;
            }
        }
        // A leak recorded before the clock ran out is still a leak.
        if leak.is_some() {
            out_of_budget = false;
        }
    } else {
        let mut sim = Sim::new(aig);
        'scalar: for trial in 0..plan.trials {
            if budget.out_of_time() {
                out_of_budget = true;
                break;
            }
            let stim = progen::random_stimulus(isa, &plan.mix, &mut rng, trial % 2 == 1);
            let mut state = load_scalar(aig, &stim);
            trials = trial + 1;
            for cycle in 0..plan.cycles {
                let r = sim.step(&state, |_, _| false);
                sim_cycles += 1;
                if !r.violated_assumes.is_empty() {
                    break; // invalid program for this contract: next trial
                }
                if let Some(&bi) = oracle
                    .iter()
                    .find(|&&bi| r.fired_bads.contains(&aig.bads()[bi].name))
                {
                    leak = Some((stim, cycle, trial + 1, aig.bads()[bi].name.clone()));
                    break 'scalar;
                }
                state = r.next;
            }
        }
    }

    let wall = start.elapsed();
    let stats = FuzzStats {
        trials,
        sim_cycles,
        wall,
        leak_cycle: leak.as_ref().map(|(_, cycle, _, _)| *cycle),
        seed: plan.seed,
        lanes: if plan.batch { BatchSim::LANES } else { 1 },
    };
    let outcome = match leak {
        Some((stim, cycle, trial, bad_name)) => {
            let trace = finding_trace(aig, &stim, cycle, &bad_name);
            FuzzOutcome::Leak(Box::new(FuzzFinding {
                imem: stim.imem,
                public: stim.public,
                secret_a: stim.secret_a,
                secret_b: stim.secret_b,
                cycle,
                trials: trial,
                trace,
            }))
        }
        None => FuzzOutcome::Exhausted {
            trials,
            wall,
            sim_cycles,
        },
    };
    FuzzReport {
        outcome,
        stats,
        out_of_budget,
    }
}

/// The fuzzing lane of the engine portfolio: a [`csl_mc::Backend`] that
/// runs a [`FuzzPlan`] against whatever instance the race is deciding.
/// A validated leak reports as [`EngineOutcome::Attack`] — decisive, so
/// it cancels the solver lanes; an exhausted campaign is
/// [`InconclusiveReason::FuzzExhausted`]. Campaign statistics surface
/// through [`csl_mc::Backend::fuzz_stats`] into the lane result and the
/// check report.
pub struct FuzzBackend {
    isa: IsaConfig,
    plan: FuzzPlan,
    stats: Mutex<Option<FuzzStats>>,
}

impl FuzzBackend {
    pub fn new(isa: IsaConfig, plan: FuzzPlan) -> FuzzBackend {
        FuzzBackend {
            isa,
            plan,
            stats: Mutex::new(None),
        }
    }
}

impl csl_mc::Backend for FuzzBackend {
    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn lane(&self) -> Lane {
        Lane::Fuzz
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        _ctx: &mut csl_mc::SharedContext,
    ) -> EngineOutcome {
        let report = run_fuzz(ts.aig(), &self.isa, &self.plan, &budget);
        *self.stats.lock().unwrap() = Some(report.stats.clone());
        match report.outcome {
            FuzzOutcome::Leak(finding) => {
                // The Backend contract: validate counterexamples before
                // reporting them decisive.
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&finding.trace);
                if assumes_ok && bad {
                    EngineOutcome::Attack(Box::new(finding.trace))
                } else {
                    EngineOutcome::Inconclusive(InconclusiveReason::ReplayFailed {
                        engine: "fuzz".to_string(),
                    })
                }
            }
            FuzzOutcome::Exhausted { trials, .. } => {
                if report.out_of_budget {
                    EngineOutcome::Timeout
                } else {
                    EngineOutcome::Inconclusive(InconclusiveReason::FuzzExhausted { trials })
                }
            }
        }
    }

    fn fuzz_stats(&self) -> Option<FuzzStats> {
        self.stats.lock().unwrap().clone()
    }
}

/// A [`LaneFactory`] producing [`FuzzBackend`]s for
/// [`csl_mc::CheckOptions::extra_lanes`] — the registration the session
/// API's `Verifier::fuzz(plan)` performs. The label embeds the plan, so
/// session cache keys change with the campaign.
pub fn fuzz_lane(isa: IsaConfig, plan: FuzzPlan) -> LaneFactory {
    LaneFactory::new(plan.label(), move || {
        Box::new(FuzzBackend::new(isa, plan.clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{shadow_instance, DesignKind, InstanceConfig};
    use csl_contracts::Contract;
    use csl_cpu::Defense;
    use csl_mc::SafetyCheck;

    fn insecure_task() -> (SafetyCheck, IsaConfig) {
        let mut cfg =
            InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
        cfg.with_candidates = false;
        let isa = cfg.cpu_config().isa;
        (shadow_instance(&cfg), isa)
    }

    fn secure_task() -> (SafetyCheck, IsaConfig) {
        let mut cfg = InstanceConfig::new(
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::Sandboxing,
        );
        cfg.with_candidates = false;
        let isa = cfg.cpu_config().isa;
        (shadow_instance(&cfg), isa)
    }

    #[test]
    fn fuzzer_finds_the_simple_ooo_leak_and_finding_replays() {
        let (task, isa) = insecure_task();
        // The debug-profile simulator is an order of magnitude slower,
        // but the batch path advances 64 trials per pass, so the full
        // release-scale campaign stays affordable.
        let trials = if cfg!(debug_assertions) { 1500 } else { 5000 };
        let plan = FuzzPlan::new().trials(trials).cycles(20).seed(7);
        let report = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
        match report.outcome {
            FuzzOutcome::Leak(f) => {
                assert_eq!(report.stats.leak_cycle, Some(f.cycle));
                assert!(report.stats.trials <= trials);
                let (assumes_ok, bad) = Sim::new(&task.aig).replay(&f.trace);
                assert!(assumes_ok && bad, "finding must replay as a trace");
            }
            FuzzOutcome::Exhausted { trials, .. } => {
                panic!("no leak in {trials} trials on an insecure design")
            }
        }
    }

    #[test]
    fn batched_and_scalar_campaigns_agree_per_seed() {
        let (task, isa) = insecure_task();
        let trials = if cfg!(debug_assertions) { 192 } else { 1024 };
        for seed in [7u64, 9, 23] {
            let base = FuzzPlan::new().trials(trials).cycles(12).seed(seed);
            let batched = run_fuzz(&task.aig, &isa, &base, &Budget::unlimited());
            let scalar = run_fuzz(
                &task.aig,
                &isa,
                &base.clone().scalar(),
                &Budget::unlimited(),
            );
            match (&batched.outcome, &scalar.outcome) {
                (FuzzOutcome::Leak(b), FuzzOutcome::Leak(s)) => {
                    assert_eq!(b.trials, s.trials, "seed {seed}: leak trial differs");
                    assert_eq!(b.cycle, s.cycle, "seed {seed}: leak cycle differs");
                    assert_eq!(b.imem, s.imem, "seed {seed}: stimulus differs");
                }
                (FuzzOutcome::Exhausted { .. }, FuzzOutcome::Exhausted { .. }) => {}
                (b, s) => panic!("seed {seed}: batch {b:?} vs scalar {s:?}"),
            }
        }
    }

    #[test]
    fn fuzzer_silent_on_secure_design_and_reports_throughput() {
        let (task, isa) = secure_task();
        let trials = if cfg!(debug_assertions) { 256 } else { 640 };
        let plan = FuzzPlan::new().trials(trials).cycles(20).seed(9);
        let report = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
        match report.outcome {
            FuzzOutcome::Exhausted {
                trials: done,
                wall,
                sim_cycles,
            } => {
                assert_eq!(done, trials);
                assert!(sim_cycles > 0, "exhausted outcome must carry cycles");
                assert_eq!(report.stats.wall, wall);
                assert!(report.stats.trials_per_sec() > 0.0);
                assert_eq!(report.stats.leak_cycle, None);
            }
            FuzzOutcome::Leak(f) => panic!("false leak on secure design: {f:?}"),
        }
    }

    #[test]
    fn zero_budget_campaign_reports_out_of_budget() {
        let (task, isa) = insecure_task();
        let budget = Budget::until(Instant::now());
        let report = run_fuzz(&task.aig, &isa, &FuzzPlan::new(), &budget);
        assert!(report.out_of_budget);
        assert!(matches!(report.outcome, FuzzOutcome::Exhausted { .. }));
    }
}

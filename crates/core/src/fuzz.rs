//! Differential fuzzing as a first-class verification backend — the
//! paper's §9 contrast class (SpecDoctor, Revizor, SpeechMiner…).
//!
//! Instead of model checking, run the two-machine product on the concrete
//! netlist simulator over random programs and random secret pairs, and
//! compare the microarchitectural observation traces directly. Finding a
//! divergence on a program whose ISA observation traces match is a
//! concrete attack — no solver involved. The trade-off the paper draws is
//! reproduced here measurably: fuzzing can be fast per trial and needs no
//! formal machinery, but offers no coverage guarantee (secure designs get
//! "no attack found after N trials", never a proof).
//!
//! The fuzzer reuses the shadow instance's netlist: the `no_leakage`
//! assertion firing with all contract assumes held *is* the oracle, so
//! the fuzzing and formal flows check the identical property.
//!
//! # Architecture
//!
//! A [`FuzzPlan`] describes a campaign (trials, cycles, seed, scalar or
//! 64-way bit-parallel execution). Three ways to run one:
//!
//! * **Portfolio lane** — [`FuzzBackend`] implements [`csl_mc::Backend`],
//!   so a fuzzing lane races BMC / k-induction / PDR inside
//!   `check_safety`: a concrete leak is a decisive verdict that cancels
//!   the solver lanes, and the campaign statistics land in
//!   [`csl_mc::CheckReport::fuzz`] like any lane's. Register it via
//!   [`fuzz_lane`] on [`csl_mc::CheckOptions::extra_lanes`], or one
//!   level up with `api::Verifier::fuzz(plan)`.
//! * **Direct** — [`run_fuzz`] drives a campaign against any
//!   instrumented netlist under a [`Budget`] and returns the typed
//!   [`FuzzReport`].
//! * **Deprecated shim** — [`fuzz_design`] keeps the pre-backend free
//!   function compiling for one release.
//!
//! Findings are expressed in the shared counterexample vocabulary: every
//! [`FuzzFinding`] carries a [`Trace`] that replays through
//! [`csl_mc::Sim::replay`] and lifts through
//! [`csl_hdl::xform::Reconstruction`] exactly like a formal
//! counterexample — which is how a leak found on the *prepared* (reduced)
//! netlist comes back in raw-netlist vocabulary.
//!
//! Throughput comes from [`csl_mc::BatchSim`]: the AIG is evaluated over
//! `u64` words, one bit per stimulus lane, so one topological pass
//! advances 64 independent trials by a cycle. The `fuzzprobe` bench bin
//! measures the resulting trials/second against the scalar path.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csl_cover::{BatchCoverage, Corpus, CorpusEntry, CoverageMap, RejectionFilter, ScalarCoverage};
use csl_hdl::{Aig, Bit, Init, Node};
use csl_isa::progen::{self, OpMix, StimulusPair};
use csl_isa::IsaConfig;
use csl_mc::{
    BatchSim, BatchState, CoverageStats, EngineOutcome, ExchangeItem, FuzzStats,
    InconclusiveReason, Lane, LaneFactory, SharedContext, Sim, SimState, Trace, TransitionSystem,
};
use csl_sat::Budget;

/// A fuzzing campaign description: how many program/secret pairs to try,
/// how many cycles to simulate each, the RNG seed, and whether to run
/// the 64-way bit-parallel simulator (the default) or the scalar one.
///
/// Identical seeds produce identical stimulus streams in both execution
/// modes — batching changes throughput, never findings.
#[derive(Clone, Debug)]
pub struct FuzzPlan {
    /// Program/secret pairs to try before giving up.
    pub trials: usize,
    /// Cycles to simulate per trial.
    pub cycles: usize,
    /// Seed for the stimulus stream.
    pub seed: u64,
    /// Evaluate 64 trials per simulator pass (see [`csl_mc::BatchSim`]).
    pub batch: bool,
    /// Opcode weights for the structured half of the program stream.
    pub mix: OpMix,
    /// Coverage-guided mode (see the `csl_cover` crate): track per-trial
    /// latch-toggle coverage, evolve a mutation corpus from trials that
    /// reached new coverage, exchange frontier states with the proof
    /// lanes, and skip stimuli the formal side proved dead. `false`
    /// keeps the campaign bit-identical to the blind fuzzer.
    pub coverage: bool,
    /// Directory for corpus persistence across campaigns (keyed by plan
    /// label + netlist fingerprint, like the session report cache).
    /// `None` keeps the corpus in memory only.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzPlan {
    /// Matches the historical `FuzzOptions` defaults, batched.
    fn default() -> FuzzPlan {
        FuzzPlan {
            trials: 2000,
            cycles: 24,
            seed: 0xF0_55,
            batch: true,
            mix: OpMix::default(),
            coverage: false,
            corpus_dir: None,
        }
    }
}

impl FuzzPlan {
    /// The default plan.
    pub fn new() -> FuzzPlan {
        FuzzPlan::default()
    }

    /// Sets the trial budget (builder style).
    pub fn trials(mut self, trials: usize) -> FuzzPlan {
        self.trials = trials;
        self
    }

    /// Sets the per-trial cycle count (builder style).
    pub fn cycles(mut self, cycles: usize) -> FuzzPlan {
        self.cycles = cycles;
        self
    }

    /// Sets the stimulus seed (builder style).
    pub fn seed(mut self, seed: u64) -> FuzzPlan {
        self.seed = seed;
        self
    }

    /// Selects the scalar simulator (one trial per pass) — the baseline
    /// the `fuzzprobe` bin compares the batch path against.
    pub fn scalar(mut self) -> FuzzPlan {
        self.batch = false;
        self
    }

    /// Sets the opcode mix (builder style).
    pub fn mix(mut self, mix: OpMix) -> FuzzPlan {
        self.mix = mix;
        self
    }

    /// Enables/disables coverage-guided mode (builder style).
    pub fn coverage(mut self, coverage: bool) -> FuzzPlan {
        self.coverage = coverage;
        self
    }

    /// Sets the corpus persistence directory (builder style); implies
    /// nothing unless coverage mode is on.
    pub fn corpus_dir(mut self, dir: impl Into<PathBuf>) -> FuzzPlan {
        self.corpus_dir = Some(dir.into());
        self
    }

    /// Stable description of this plan, used as the lane label and as a
    /// session cache-key component — it must change whenever the
    /// campaign the plan describes does. Coverage knobs only appear when
    /// coverage mode is on, so pre-existing blind-campaign keys are
    /// unchanged.
    pub fn label(&self) -> String {
        let m = &self.mix;
        let cov = if self.coverage {
            format!(",cov=1,corpus={}", self.corpus_dir.is_some() as u8)
        } else {
            String::new()
        };
        format!(
            "fuzz(trials={},cycles={},seed={},batch={},mix={}/{}/{}/{}/{}/{}{cov})",
            self.trials, self.cycles, self.seed, self.batch, m.li, m.add, m.ld, m.bnz, m.mul, m.nop
        )
    }
}

/// One reproducible finding: the program and secret pair that leaked,
/// plus the equivalent [`Trace`] in the shared counterexample
/// vocabulary (replayable via [`Sim::replay`], liftable via
/// [`Trace::lifted`] when found on a prepared netlist).
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    pub imem: Vec<u32>,
    pub public: Vec<u32>,
    pub secret_a: Vec<u32>,
    pub secret_b: Vec<u32>,
    /// Cycle at which the leakage assertion fired.
    pub cycle: usize,
    /// Trials executed before (and including) the finding.
    pub trials: usize,
    /// The finding as a counterexample trace on the fuzzed netlist.
    pub trace: Trace,
}

/// Outcome of a fuzzing campaign.
#[derive(Clone, Debug)]
pub enum FuzzOutcome {
    /// A leak was observed (and is replayable from the finding).
    Leak(Box<FuzzFinding>),
    /// No leak — *not* a security proof. Wall time and simulated
    /// trial-cycles ride along so throughput is computable without
    /// re-running the campaign.
    Exhausted {
        /// Trials executed (may be short of the plan when the budget
        /// expired first).
        trials: usize,
        /// Wall time the campaign took.
        wall: Duration,
        /// Total trial-cycles simulated.
        sim_cycles: u64,
    },
}

/// A finished campaign: the outcome plus the statistics every outcome
/// carries (the [`FuzzStats`] that land in reports).
#[derive(Clone, Debug)]
pub struct FuzzReport {
    pub outcome: FuzzOutcome,
    pub stats: FuzzStats,
    /// Coverage accounting, present when the plan ran coverage-guided.
    pub coverage: Option<CoverageStats>,
    /// The campaign stopped because the budget (wall clock or stop
    /// flag), not the trial count, ran out.
    pub out_of_budget: bool,
}

/// Parses a memory-latch name of the form `prefix[word][bit]`.
fn parse_mem_name(name: &str) -> Option<(&str, usize, usize)> {
    let open = name.rfind("][")?;
    let bit: usize = name[open + 2..name.len() - 1].parse().ok()?;
    let head = &name[..open + 1];
    let open2 = head.rfind('[')?;
    let word: usize = head[open2 + 1..head.len() - 1].parse().ok()?;
    Some((&head[..open2], word, bit))
}

/// The bit of `stim` that latch `name` should reset to, or `None` when
/// the latch is not a stimulus memory bit (stays at the lane default).
fn stimulus_bit(stim: &StimulusPair, name: &str) -> Option<bool> {
    let (prefix, word, bit) = parse_mem_name(name)?;
    let v = match prefix {
        "imem" => *stim.imem.get(word)?,
        "dmem_pub" => *stim.public.get(word)?,
        "cpu1.dmem_sec" => *stim.secret_a.get(word)?,
        "cpu2.dmem_sec" => *stim.secret_b.get(word)?,
        _ => return None,
    };
    Some((v >> bit) & 1 == 1)
}

/// Scalar reset state for one stimulus.
fn load_scalar(aig: &Aig, stim: &StimulusPair) -> SimState {
    SimState::reset_with(aig, |_, name| stimulus_bit(stim, name).unwrap_or(false))
}

/// Batch reset state: lane `l` loads `stims[l]`; lanes beyond the batch
/// reset to zero.
fn load_batch(aig: &Aig, stims: &[StimulusPair]) -> BatchState {
    BatchState::reset_with(aig, |_, name| {
        stims.iter().enumerate().fold(0u64, |acc, (lane, stim)| {
            acc | ((stimulus_bit(stim, name).unwrap_or(false) as u64) << lane)
        })
    })
}

/// Builds the [`Trace`] equivalent of a leak: the stimulus becomes the
/// symbolic-latch initial assignment, the inputs are the all-zero drive
/// the fuzzer uses, and the trace ends on the leaking cycle.
fn finding_trace(aig: &Aig, stim: &StimulusPair, cycle: usize, bad_name: &str) -> Trace {
    let state = load_scalar(aig, stim);
    let initial_latches = aig
        .latches()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.init == Init::Symbolic)
        .map(|(i, _)| (i as u32, state.latch(i)))
        .collect();
    Trace {
        initial_latches,
        inputs: vec![HashMap::new(); cycle + 1],
        bad_name: bad_name.to_string(),
    }
}

/// Bad bits the campaign treats as the leakage oracle: the `no_leakage`
/// assertion(s) when present, every bad bit otherwise (so the backend
/// stays meaningful on generic safety instances).
fn leak_bads(aig: &Aig) -> Vec<usize> {
    let named: Vec<usize> = aig
        .bads()
        .iter()
        .enumerate()
        .filter(|(_, b)| b.name.contains("no_leakage"))
        .map(|(i, _)| i)
        .collect();
    if named.is_empty() {
        (0..aig.bads().len()).collect()
    } else {
        named
    }
}

/// Marks the latches in the combinational fan-in cone of the leakage
/// oracle. A trial that toggles these came close to exciting the
/// property logic; the campaign uses the per-trial count as the *heat*
/// rank when selecting mutation parents, so the corpus — which by
/// construction holds only surviving (non-leaking) stimuli — still
/// steers mutants toward the attack surface rather than away from it.
fn bad_cone_latches(aig: &Aig, oracle: &[usize]) -> Vec<bool> {
    let mut in_cone = vec![false; aig.latches().len()];
    let mut seen = vec![false; aig.num_nodes()];
    let mut stack: Vec<Bit> = oracle.iter().map(|&bi| aig.bads()[bi].bit).collect();
    while let Some(b) = stack.pop() {
        let idx = b.node() as usize;
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        match aig.node(b) {
            Node::And(x, y) => {
                stack.push(x);
                stack.push(y);
            }
            Node::Latch(l) => in_cone[l as usize] = true,
            Node::Const | Node::Input(_) => {}
        }
    }
    in_cone
}

/// Runs a fuzzing campaign against an instrumented netlist under a
/// budget. Each trial draws a random program, random public memory, and
/// two random (differing) secrets, then simulates the product machine.
/// A trial counts as a leak only if the leakage assertion fires while
/// every contract assume held up to and including that cycle — the same
/// validity condition the model checker enforces.
///
/// With `plan.batch` (the default), 64 trials advance per simulator
/// pass; findings are identical to the scalar path for the same seed
/// (earliest leaking trial, earliest leaking cycle), only faster.
pub fn run_fuzz(aig: &Aig, isa: &IsaConfig, plan: &FuzzPlan, budget: &Budget) -> FuzzReport {
    let mut ctx = SharedContext::disabled(Lane::Fuzz);
    run_fuzz_shared(aig, isa, plan, budget, &mut ctx)
}

/// [`run_fuzz`] with an exchange-bus handle: a coverage-guided campaign
/// imports PDR frontier clauses into its rejection filter and exports
/// fuzz-reached states as proof obligations through `ctx`. A blind plan
/// never touches the bus, so this is exactly [`run_fuzz`] for it.
pub fn run_fuzz_shared(
    aig: &Aig,
    isa: &IsaConfig,
    plan: &FuzzPlan,
    budget: &Budget,
    ctx: &mut SharedContext,
) -> FuzzReport {
    if plan.coverage {
        return run_fuzz_coverage(aig, isa, plan, budget, ctx);
    }
    let start = Instant::now();
    let oracle = leak_bads(aig);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(plan.seed);
    let mut trials = 0usize;
    let mut sim_cycles = 0u64;
    let mut leak: Option<(StimulusPair, usize, usize, String)> = None; // stim, cycle, trial, bad
    let mut out_of_budget = false;

    if plan.batch {
        let mut sim = BatchSim::new(aig);
        while trials < plan.trials && !out_of_budget {
            if budget.out_of_time() {
                out_of_budget = true;
                break;
            }
            let width = BatchSim::LANES.min(plan.trials - trials);
            let stims = progen::random_stimulus_batch(isa, &plan.mix, &mut rng, width);
            let mut state = load_batch(aig, &stims);
            let mut alive: u64 = if width == 64 { !0 } else { (1u64 << width) - 1 };
            let mut first_leak: Vec<Option<(usize, usize)>> = vec![None; width];
            let mut cycles_run = 0usize;
            for cycle in 0..plan.cycles {
                if budget.out_of_time() {
                    // Fall through to the leak scan: a leak a lane
                    // recorded in an earlier cycle still counts.
                    out_of_budget = true;
                    break;
                }
                let r = sim.step_masks(&state, |_, _| 0);
                cycles_run = cycle + 1;
                sim_cycles += width as u64;
                // A violated assume invalidates the lane's trial from
                // this cycle on — before the leak check, matching the
                // scalar trial loop.
                alive &= !r.violated_lanes();
                for &bi in &oracle {
                    let fired = r.fired_bads[bi] & alive;
                    if fired != 0 {
                        for (lane, slot) in first_leak.iter_mut().enumerate() {
                            if (fired >> lane) & 1 == 1 && slot.is_none() {
                                *slot = Some((cycle, bi));
                            }
                        }
                    }
                }
                // A leaked lane is decided; stop tracking it.
                for (lane, slot) in first_leak.iter().enumerate() {
                    if slot.is_some() {
                        alive &= !(1u64 << lane);
                    }
                }
                if alive == 0 {
                    break;
                }
                state = r.next;
            }
            if let Some(lane) = (0..width).find(|&l| first_leak[l].is_some()) {
                let (cycle, bi) = first_leak[lane].expect("lane just matched");
                leak = Some((
                    stims[lane].clone(),
                    cycle,
                    trials + lane + 1,
                    aig.bads()[bi].name.clone(),
                ));
                trials += lane + 1;
                break;
            }
            // Count the batch only if it actually simulated: a budget
            // expiry before the first cycle must not inflate the trial
            // count (and hence trials/sec) the probes report.
            if cycles_run > 0 {
                trials += width;
            }
        }
        // A leak recorded before the clock ran out is still a leak.
        if leak.is_some() {
            out_of_budget = false;
        }
    } else {
        let mut sim = Sim::new(aig);
        'scalar: for trial in 0..plan.trials {
            if budget.out_of_time() {
                out_of_budget = true;
                break;
            }
            let stim = progen::random_stimulus(isa, &plan.mix, &mut rng, trial % 2 == 1);
            let mut state = load_scalar(aig, &stim);
            trials = trial + 1;
            for cycle in 0..plan.cycles {
                let r = sim.step(&state, |_, _| false);
                sim_cycles += 1;
                if !r.violated_assumes.is_empty() {
                    break; // invalid program for this contract: next trial
                }
                if let Some(&bi) = oracle
                    .iter()
                    .find(|&&bi| r.fired_bads.contains(&aig.bads()[bi].name))
                {
                    leak = Some((stim, cycle, trial + 1, aig.bads()[bi].name.clone()));
                    break 'scalar;
                }
                state = r.next;
            }
        }
    }

    let wall = start.elapsed();
    let stats = FuzzStats {
        trials,
        corpus_trials: 0,
        random_trials: trials,
        sim_cycles,
        wall,
        leak_cycle: leak.as_ref().map(|(_, cycle, _, _)| *cycle),
        seed: plan.seed,
        lanes: if plan.batch { BatchSim::LANES } else { 1 },
    };
    let outcome = match leak {
        Some((stim, cycle, trial, bad_name)) => {
            let trace = finding_trace(aig, &stim, cycle, &bad_name);
            FuzzOutcome::Leak(Box::new(FuzzFinding {
                imem: stim.imem,
                public: stim.public,
                secret_a: stim.secret_a,
                secret_b: stim.secret_b,
                cycle,
                trials: trial,
                trace,
            }))
        }
        None => FuzzOutcome::Exhausted {
            trials,
            wall,
            sim_cycles,
        },
    };
    FuzzReport {
        outcome,
        stats,
        coverage: None,
        out_of_budget,
    }
}

/// What one coverage-guided generation (≤64 trials drawn at a fixed
/// boundary) produced, identical between the batch and scalar
/// executors so the corpus evolves the same way under both.
struct Generation {
    /// Per-lane earliest `(cycle, bad index)` leak, assumes held.
    first_leak: Vec<Option<(usize, usize)>>,
    /// Per-lane coverage record; `None` for filter-rejected lanes.
    coverage: Vec<Option<csl_cover::TrialCoverage>>,
    /// Per-lane reached latch state, for lanes that survived every
    /// cycle with assumes held (obligation / corpus material).
    exit: Vec<Option<Vec<(u32, bool)>>>,
    /// Lanes skipped by the rejection filter.
    rejected: usize,
    /// Trial-cycles actually simulated (alive lanes only).
    sim_cycles: u64,
    /// Whether any cycle ran (budget-expiry accounting).
    simulated: bool,
    out_of_budget: bool,
}

fn run_generation_batch(
    aig: &Aig,
    sim: &mut BatchSim,
    stims: &[StimulusPair],
    cycles: usize,
    oracle: &[usize],
    filter: &RejectionFilter,
    budget: &Budget,
) -> Generation {
    let width = stims.len();
    let latches = aig.latches().len();
    let mut state = load_batch(aig, stims);
    let width_mask: u64 = if width == 64 { !0 } else { (1u64 << width) - 1 };
    let reject = filter.reject_mask(&state) & width_mask;
    let mut alive = width_mask & !reject;
    let mut cov = BatchCoverage::new(latches);
    let mut first_leak: Vec<Option<(usize, usize)>> = vec![None; width];
    let mut sim_cycles = 0u64;
    let mut simulated = false;
    let mut out_of_budget = false;
    for _cycle in 0..cycles {
        if budget.out_of_time() {
            out_of_budget = true;
            break;
        }
        if alive == 0 {
            break;
        }
        let r = sim.step_masks(&state, |_, _| 0);
        simulated = true;
        sim_cycles += alive.count_ones() as u64;
        // A violated assume invalidates the lane from this cycle on —
        // its toggles this cycle do not count, matching the scalar
        // executor's break-before-record.
        alive &= !r.violated_lanes();
        cov.step(&state, &r.next, alive);
        for &bi in oracle {
            let fired = r.fired_bads[bi] & alive;
            if fired != 0 {
                for (lane, slot) in first_leak.iter_mut().enumerate() {
                    if (fired >> lane) & 1 == 1 && slot.is_none() {
                        *slot = Some((_cycle, bi));
                    }
                }
            }
        }
        for (lane, slot) in first_leak.iter().enumerate() {
            if slot.is_some() {
                alive &= !(1u64 << lane);
            }
        }
        state = r.next;
    }
    let coverage = (0..width)
        .map(|l| ((reject >> l) & 1 == 0).then(|| cov.lane(l)))
        .collect();
    // Only lanes that survived the whole window with assumes held carry
    // a reached state the formal side may treat as a true frontier.
    let exit = (0..width)
        .map(|l| {
            ((alive >> l) & 1 == 1 && !out_of_budget).then(|| {
                let s = state.lane(l);
                (0..latches).map(|i| (i as u32, s.latch(i))).collect()
            })
        })
        .collect();
    Generation {
        first_leak,
        coverage,
        exit,
        rejected: reject.count_ones() as usize,
        sim_cycles,
        simulated,
        out_of_budget,
    }
}

fn run_generation_scalar(
    aig: &Aig,
    sim: &mut Sim,
    stims: &[StimulusPair],
    cycles: usize,
    oracle: &[usize],
    filter: &RejectionFilter,
    budget: &Budget,
) -> Generation {
    let width = stims.len();
    let latches = aig.latches().len();
    let mut first_leak: Vec<Option<(usize, usize)>> = vec![None; width];
    let mut coverage: Vec<Option<csl_cover::TrialCoverage>> = vec![None; width];
    let mut exit: Vec<Option<Vec<(u32, bool)>>> = vec![None; width];
    let mut rejected = 0usize;
    let mut sim_cycles = 0u64;
    let mut simulated = false;
    let mut out_of_budget = false;
    'lanes: for (l, stim) in stims.iter().enumerate() {
        let mut state = load_scalar(aig, stim);
        if filter.rejects(&state) {
            rejected += 1;
            continue;
        }
        let mut sc = ScalarCoverage::new(latches);
        let mut survived = true;
        for cycle in 0..cycles {
            if budget.out_of_time() {
                out_of_budget = true;
                coverage[l] = Some(sc.finish());
                break 'lanes;
            }
            let r = sim.step(&state, |_, _| false);
            simulated = true;
            sim_cycles += 1;
            if !r.violated_assumes.is_empty() {
                survived = false;
                break;
            }
            sc.step(&state, &r.next);
            if let Some(&bi) = oracle
                .iter()
                .find(|&&bi| r.fired_bads.contains(&aig.bads()[bi].name))
            {
                first_leak[l] = Some((cycle, bi));
                survived = false;
                break;
            }
            state = r.next;
        }
        if survived {
            exit[l] = Some((0..latches).map(|i| (i as u32, state.latch(i))).collect());
        }
        coverage[l] = Some(sc.finish());
    }
    Generation {
        first_leak,
        coverage,
        exit,
        rejected,
        sim_cycles,
        simulated,
        out_of_budget,
    }
}

/// The coverage-guided campaign (see the `csl_cover` crate and the
/// module docs). Trials are drawn and ingested at fixed ≤64-trial
/// generation boundaries regardless of execution width, and every RNG
/// draw happens in trial order, so a fixed seed evolves the identical
/// corpus batched or scalar.
fn run_fuzz_coverage(
    aig: &Aig,
    isa: &IsaConfig,
    plan: &FuzzPlan,
    budget: &Budget,
    ctx: &mut SharedContext,
) -> FuzzReport {
    /// Fraction (out of 4) of trials drawn as corpus mutants once the
    /// corpus is non-empty.
    const MUTANT_NUM: u32 = 1;
    /// Campaign-wide cap on exported proof obligations — the proof
    /// lanes only need a few representative frontier states.
    const MAX_OBLIGATIONS: usize = 32;

    let start = Instant::now();
    let oracle = leak_bads(aig);
    let cone = bad_cone_latches(aig, &oracle);
    let latches = aig.latches().len();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(plan.seed);
    let corpus_path = plan.corpus_dir.as_ref().map(|dir| {
        let key = corpus_key(aig, plan);
        dir.join(format!("{key:016x}.corpus"))
    });
    let mut corpus = corpus_path
        .as_ref()
        .and_then(|p| Corpus::load(p).ok())
        .unwrap_or_default();
    let mut map = CoverageMap::new(latches);
    let mut filter = RejectionFilter::new(latches);
    let mut batch_sim = plan.batch.then(|| BatchSim::new(aig));
    let mut scalar_sim = (!plan.batch).then(|| Sim::new(aig));

    let mut trials = 0usize;
    let mut corpus_trials = 0usize;
    let mut random_trials = 0usize;
    let mut sim_cycles = 0u64;
    let mut rejected = 0usize;
    let mut obligations = 0usize;
    let mut leak: Option<(StimulusPair, usize, usize, String)> = None;
    let mut out_of_budget = false;

    while trials < plan.trials && !out_of_budget {
        if budget.out_of_time() {
            out_of_budget = true;
            break;
        }
        // Import frontier clauses published by PDR since the last
        // generation; other item kinds are not for this lane.
        for item in ctx.poll() {
            if let ExchangeItem::Frontier(f) = &*item {
                if filter.add(f) {
                    ctx.note_imported(1);
                }
            }
        }
        // Draw the generation, one RNG decision + draw per trial in
        // trial order. Mutant selection sees the corpus as frozen at
        // this boundary.
        let width = BatchSim::LANES.min(plan.trials - trials);
        let frozen = corpus.len();
        let mut stims = Vec::with_capacity(width);
        let mut is_mutant = Vec::with_capacity(width);
        for t in 0..width {
            use rand::Rng;
            let mutate = frozen > 0 && rng.gen_range(0..4u32) < MUTANT_NUM;
            is_mutant.push(mutate);
            if mutate {
                // Tournament of two by heat: the corpus holds only
                // surviving stimuli, so uniform selection would breed
                // from benign programs; preferring the hotter candidate
                // keeps mutants near the property cone.
                let (a, b) = (rng.gen_range(0..frozen), rng.gen_range(0..frozen));
                let base = if corpus.get(a).heat >= corpus.get(b).heat {
                    a
                } else {
                    b
                };
                let donor = rng.gen_range(0..frozen);
                let (m, _) = progen::mutate_stimulus(
                    isa,
                    &mut rng,
                    &corpus.get(base).stim,
                    &corpus.get(donor).stim,
                );
                stims.push(m);
            } else {
                stims.push(progen::random_stimulus(
                    isa,
                    &plan.mix,
                    &mut rng,
                    (trials + t) % 2 == 1,
                ));
            }
        }
        let generation = match (&mut batch_sim, &mut scalar_sim) {
            (Some(sim), _) => {
                run_generation_batch(aig, sim, &stims, plan.cycles, &oracle, &filter, budget)
            }
            (_, Some(sim)) => {
                run_generation_scalar(aig, sim, &stims, plan.cycles, &oracle, &filter, budget)
            }
            _ => unreachable!("one executor is always configured"),
        };
        sim_cycles += generation.sim_cycles;
        rejected += generation.rejected;
        out_of_budget |= generation.out_of_budget;
        // Provenance tracks *counted* trials only, so the split always
        // sums to the trial count even when a leak ends the generation
        // early or a budget expiry discards it entirely.
        let counted = if let Some(lane) = (0..width).find(|&l| generation.first_leak[l].is_some()) {
            let (cycle, bi) = generation.first_leak[lane].expect("lane just matched");
            leak = Some((
                stims[lane].clone(),
                cycle,
                trials + lane + 1,
                aig.bads()[bi].name.clone(),
            ));
            lane + 1
        } else if generation.simulated || generation.rejected > 0 {
            width
        } else {
            0
        };
        trials += counted;
        corpus_trials += is_mutant[..counted].iter().filter(|&&m| m).count();
        random_trials += is_mutant[..counted].iter().filter(|&&m| !m).count();
        if leak.is_some() {
            break;
        }
        // Ingest coverage in lane order; trials that reached new
        // coverage *and* survived the window join the corpus, and their
        // reached states travel to the proof lanes as obligations.
        let new_before = map.new_coverage_trials();
        for (l, stim) in stims.iter().enumerate() {
            let Some(trial_cov) = &generation.coverage[l] else {
                continue;
            };
            let new = map.ingest(trial_cov);
            if !new {
                continue;
            }
            if let Some(frontier) = &generation.exit[l] {
                let heat = (0..latches)
                    .filter(|&i| cone[i] && trial_cov.toggled(i))
                    .count() as u32;
                corpus.push(CorpusEntry {
                    stim: stim.clone(),
                    signature: trial_cov.signature(),
                    depth: trial_cov.depth,
                    heat,
                    frontier: frontier.clone(),
                });
                if obligations < MAX_OBLIGATIONS {
                    ctx.publish_obligation(frontier.clone(), trial_cov.depth);
                    obligations += 1;
                }
            }
        }
        ctx.note_coverage_delta(map.new_coverage_trials() - new_before);
    }
    if leak.is_some() {
        out_of_budget = false;
    }
    if let Some(path) = &corpus_path {
        // Persistence is best-effort: an unwritable corpus directory
        // must not fail the campaign.
        let _ = corpus.save(path);
    }

    let wall = start.elapsed();
    let stats = FuzzStats {
        trials,
        corpus_trials,
        random_trials,
        sim_cycles,
        wall,
        leak_cycle: leak.as_ref().map(|(_, cycle, _, _)| *cycle),
        seed: plan.seed,
        lanes: if plan.batch { BatchSim::LANES } else { 1 },
    };
    let coverage = Some(map.stats(corpus.len(), obligations, rejected));
    let outcome = match leak {
        Some((stim, cycle, trial, bad_name)) => {
            let trace = finding_trace(aig, &stim, cycle, &bad_name);
            FuzzOutcome::Leak(Box::new(FuzzFinding {
                imem: stim.imem,
                public: stim.public,
                secret_a: stim.secret_a,
                secret_b: stim.secret_b,
                cycle,
                trials: trial,
                trace,
            }))
        }
        None => FuzzOutcome::Exhausted {
            trials,
            wall,
            sim_cycles,
        },
    };
    FuzzReport {
        outcome,
        stats,
        coverage,
        out_of_budget,
    }
}

/// Corpus persistence key: plan label + netlist fingerprint, mirroring
/// the session report cache's keying so one directory can serve many
/// designs without collisions.
fn corpus_key(aig: &Aig, plan: &FuzzPlan) -> u64 {
    crate::api::cache::corpus_fingerprint(aig, &plan.label())
}

/// The fuzzing lane of the engine portfolio: a [`csl_mc::Backend`] that
/// runs a [`FuzzPlan`] against whatever instance the race is deciding.
/// A validated leak reports as [`EngineOutcome::Attack`] — decisive, so
/// it cancels the solver lanes; an exhausted campaign is
/// [`InconclusiveReason::FuzzExhausted`]. Campaign statistics surface
/// through [`csl_mc::Backend::fuzz_stats`] into the lane result and the
/// check report.
pub struct FuzzBackend {
    isa: IsaConfig,
    plan: FuzzPlan,
    stats: Mutex<Option<FuzzStats>>,
    coverage: Mutex<Option<CoverageStats>>,
}

impl FuzzBackend {
    pub fn new(isa: IsaConfig, plan: FuzzPlan) -> FuzzBackend {
        FuzzBackend {
            isa,
            plan,
            stats: Mutex::new(None),
            coverage: Mutex::new(None),
        }
    }
}

impl csl_mc::Backend for FuzzBackend {
    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn lane(&self) -> Lane {
        Lane::Fuzz
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut csl_mc::SharedContext,
    ) -> EngineOutcome {
        let report = run_fuzz_shared(ts.aig(), &self.isa, &self.plan, &budget, ctx);
        *self.stats.lock().unwrap() = Some(report.stats.clone());
        *self.coverage.lock().unwrap() = report.coverage;
        match report.outcome {
            FuzzOutcome::Leak(finding) => {
                // The Backend contract: validate counterexamples before
                // reporting them decisive.
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&finding.trace);
                if assumes_ok && bad {
                    EngineOutcome::Attack(Box::new(finding.trace))
                } else {
                    EngineOutcome::Inconclusive(InconclusiveReason::ReplayFailed {
                        engine: "fuzz".to_string(),
                    })
                }
            }
            FuzzOutcome::Exhausted { trials, .. } => {
                if report.out_of_budget {
                    EngineOutcome::Timeout
                } else {
                    EngineOutcome::Inconclusive(InconclusiveReason::FuzzExhausted { trials })
                }
            }
        }
    }

    fn fuzz_stats(&self) -> Option<FuzzStats> {
        self.stats.lock().unwrap().clone()
    }

    fn coverage_stats(&self) -> Option<CoverageStats> {
        *self.coverage.lock().unwrap()
    }
}

/// A [`LaneFactory`] producing [`FuzzBackend`]s for
/// [`csl_mc::CheckOptions::extra_lanes`] — the registration the session
/// API's `Verifier::fuzz(plan)` performs. The label embeds the plan, so
/// session cache keys change with the campaign.
pub fn fuzz_lane(isa: IsaConfig, plan: FuzzPlan) -> LaneFactory {
    LaneFactory::new(plan.label(), move || {
        Box::new(FuzzBackend::new(isa, plan.clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{shadow_instance, DesignKind, InstanceConfig};
    use csl_contracts::Contract;
    use csl_cpu::Defense;
    use csl_mc::SafetyCheck;

    fn insecure_task() -> (SafetyCheck, IsaConfig) {
        let mut cfg =
            InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
        cfg.with_candidates = false;
        let isa = cfg.cpu_config().isa;
        (shadow_instance(&cfg), isa)
    }

    fn secure_task() -> (SafetyCheck, IsaConfig) {
        let mut cfg = InstanceConfig::new(
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::Sandboxing,
        );
        cfg.with_candidates = false;
        let isa = cfg.cpu_config().isa;
        (shadow_instance(&cfg), isa)
    }

    #[test]
    fn fuzzer_finds_the_simple_ooo_leak_and_finding_replays() {
        let (task, isa) = insecure_task();
        // The debug-profile simulator is an order of magnitude slower,
        // but the batch path advances 64 trials per pass, so the full
        // release-scale campaign stays affordable.
        let trials = if cfg!(debug_assertions) { 1500 } else { 5000 };
        let plan = FuzzPlan::new().trials(trials).cycles(20).seed(7);
        let report = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
        match report.outcome {
            FuzzOutcome::Leak(f) => {
                assert_eq!(report.stats.leak_cycle, Some(f.cycle));
                assert!(report.stats.trials <= trials);
                let (assumes_ok, bad) = Sim::new(&task.aig).replay(&f.trace);
                assert!(assumes_ok && bad, "finding must replay as a trace");
            }
            FuzzOutcome::Exhausted { trials, .. } => {
                panic!("no leak in {trials} trials on an insecure design")
            }
        }
    }

    #[test]
    fn batched_and_scalar_campaigns_agree_per_seed() {
        let (task, isa) = insecure_task();
        let trials = if cfg!(debug_assertions) { 192 } else { 1024 };
        for seed in [7u64, 9, 23] {
            let base = FuzzPlan::new().trials(trials).cycles(12).seed(seed);
            let batched = run_fuzz(&task.aig, &isa, &base, &Budget::unlimited());
            let scalar = run_fuzz(
                &task.aig,
                &isa,
                &base.clone().scalar(),
                &Budget::unlimited(),
            );
            match (&batched.outcome, &scalar.outcome) {
                (FuzzOutcome::Leak(b), FuzzOutcome::Leak(s)) => {
                    assert_eq!(b.trials, s.trials, "seed {seed}: leak trial differs");
                    assert_eq!(b.cycle, s.cycle, "seed {seed}: leak cycle differs");
                    assert_eq!(b.imem, s.imem, "seed {seed}: stimulus differs");
                }
                (FuzzOutcome::Exhausted { .. }, FuzzOutcome::Exhausted { .. }) => {}
                (b, s) => panic!("seed {seed}: batch {b:?} vs scalar {s:?}"),
            }
        }
    }

    #[test]
    fn fuzzer_silent_on_secure_design_and_reports_throughput() {
        let (task, isa) = secure_task();
        let trials = if cfg!(debug_assertions) { 256 } else { 640 };
        let plan = FuzzPlan::new().trials(trials).cycles(20).seed(9);
        let report = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
        match report.outcome {
            FuzzOutcome::Exhausted {
                trials: done,
                wall,
                sim_cycles,
            } => {
                assert_eq!(done, trials);
                assert!(sim_cycles > 0, "exhausted outcome must carry cycles");
                assert_eq!(report.stats.wall, wall);
                assert!(report.stats.trials_per_sec() > 0.0);
                assert_eq!(report.stats.leak_cycle, None);
            }
            FuzzOutcome::Leak(f) => panic!("false leak on secure design: {f:?}"),
        }
    }

    #[test]
    fn zero_budget_campaign_reports_out_of_budget() {
        let (task, isa) = insecure_task();
        let budget = Budget::until(Instant::now());
        let report = run_fuzz(&task.aig, &isa, &FuzzPlan::new(), &budget);
        assert!(report.out_of_budget);
        assert!(matches!(report.outcome, FuzzOutcome::Exhausted { .. }));
    }

    #[test]
    fn coverage_campaign_agrees_batched_vs_scalar_per_seed() {
        let (task, isa) = insecure_task();
        let trials = if cfg!(debug_assertions) { 192 } else { 768 };
        for seed in [7u64, 23] {
            let base = FuzzPlan::new()
                .trials(trials)
                .cycles(12)
                .seed(seed)
                .coverage(true);
            let batched = run_fuzz(&task.aig, &isa, &base, &Budget::unlimited());
            let scalar = run_fuzz(
                &task.aig,
                &isa,
                &base.clone().scalar(),
                &Budget::unlimited(),
            );
            match (&batched.outcome, &scalar.outcome) {
                (FuzzOutcome::Leak(b), FuzzOutcome::Leak(s)) => {
                    assert_eq!(b.trials, s.trials, "seed {seed}: leak trial differs");
                    assert_eq!(b.cycle, s.cycle, "seed {seed}: leak cycle differs");
                    assert_eq!(b.imem, s.imem, "seed {seed}: stimulus differs");
                }
                (FuzzOutcome::Exhausted { .. }, FuzzOutcome::Exhausted { .. }) => {}
                (b, s) => panic!("seed {seed}: batch {b:?} vs scalar {s:?}"),
            }
            // The corpus evolves identically: same trial provenance, same
            // coverage accounting, regardless of execution width.
            assert_eq!(batched.stats.corpus_trials, scalar.stats.corpus_trials);
            assert_eq!(batched.stats.random_trials, scalar.stats.random_trials);
            let (bc, sc) = (batched.coverage.unwrap(), scalar.coverage.unwrap());
            assert_eq!(bc.signatures, sc.signatures, "seed {seed}");
            assert_eq!(bc.latches_toggled, sc.latches_toggled, "seed {seed}");
            assert_eq!(bc.corpus_size, sc.corpus_size, "seed {seed}");
            assert_eq!(
                bc.new_coverage_trials, sc.new_coverage_trials,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn coverage_campaign_reports_stats_and_finds_the_leak() {
        let (task, isa) = insecure_task();
        let trials = if cfg!(debug_assertions) { 1500 } else { 5000 };
        let plan = FuzzPlan::new()
            .trials(trials)
            .cycles(20)
            .seed(7)
            .coverage(true);
        let report = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
        let cov = report.coverage.expect("coverage plan must report stats");
        assert!(cov.latches_toggled > 0, "trials must toggle latches");
        assert!(cov.latches_toggled <= cov.latches_total);
        assert!(cov.signatures > 0);
        assert_eq!(
            report.stats.corpus_trials + report.stats.random_trials,
            report.stats.trials
        );
        assert!(
            matches!(report.outcome, FuzzOutcome::Leak(_)),
            "coverage guidance must not lose the leak: {:?}",
            report.outcome
        );
    }

    #[test]
    fn corpus_persists_across_campaigns_via_corpus_dir() {
        let (task, isa) = insecure_task();
        let dir = std::env::temp_dir().join(format!("csl-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A secure-design campaign exhausts (no early leak exit), so the
        // corpus it banks is non-trivial.
        let (secure, secure_isa) = secure_task();
        let plan = FuzzPlan::new()
            .trials(128)
            .cycles(10)
            .seed(11)
            .coverage(true)
            .corpus_dir(&dir);
        let first = run_fuzz(&secure.aig, &secure_isa, &plan, &Budget::unlimited());
        let banked = first.coverage.unwrap().corpus_size;
        assert!(banked > 0, "campaign must bank corpus entries");
        let saved: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "corpus"))
            .collect();
        assert_eq!(saved.len(), 1, "one corpus file per plan x netlist key");
        // A second campaign on the same plan warm-starts from the saved
        // corpus: its very first generation can draw mutants.
        let second = run_fuzz(&secure.aig, &secure_isa, &plan, &Budget::unlimited());
        assert!(
            second.stats.corpus_trials > 0,
            "warm-started campaign must draw corpus mutants"
        );
        // A different netlist misses the key and starts cold — no
        // cross-design corpus pollution.
        let other = run_fuzz(
            &task.aig,
            &isa,
            &plan.clone().trials(64),
            &Budget::unlimited(),
        );
        drop(other);
        let files = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "corpus"))
            .count();
        assert_eq!(files, 2, "each netlist keys its own corpus file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frontier_imports_reject_stimuli_and_count_in_stats() {
        use csl_mc::{Exchange, ExchangeConfig};

        let (task, isa) = secure_task();
        let bus = Exchange::new(ExchangeConfig::on());
        let mut ctx = SharedContext::attached(bus.clone(), Lane::Fuzz, true, true);
        // Forge frontier clauses that no state can satisfy together: a
        // clause {l=0} rejects states where latch 0 is 1 and {l=1}
        // rejects states where it is 0, so every stimulus trips one.
        let publisher = SharedContext::attached(bus, Lane::Pdr, true, true);
        for val in [false, true] {
            publisher.publish_frontier(format!("test-front-{val}"), vec![(0, val)], 1);
        }
        let plan = FuzzPlan::new().trials(64).cycles(6).seed(3).coverage(true);
        let report = run_fuzz_shared(&task.aig, &isa, &plan, &Budget::unlimited(), &mut ctx);
        let cov = report.coverage.unwrap();
        assert!(
            cov.stimuli_rejected > 0,
            "opposed-polarity frontier clauses must reject every stimulus"
        );
        let stats = ctx.stats();
        assert!(stats.imports >= 1, "filter adds must count as imports");
    }

    #[test]
    fn coverage_campaign_exports_obligations_to_the_bus() {
        use csl_mc::{Exchange, ExchangeConfig};

        let (task, isa) = secure_task();
        let bus = Exchange::new(ExchangeConfig::on());
        let mut ctx = SharedContext::attached(bus.clone(), Lane::Fuzz, true, true);
        let plan = FuzzPlan::new()
            .trials(128)
            .cycles(10)
            .seed(5)
            .coverage(true);
        let report = run_fuzz_shared(&task.aig, &isa, &plan, &Budget::unlimited(), &mut ctx);
        let cov = report.coverage.unwrap();
        assert!(
            cov.obligations_exported > 0,
            "surviving new-coverage trials must export obligations"
        );
        // The obligations are visible to another lane.
        let mut consumer = SharedContext::attached(bus, Lane::Pdr, true, true);
        let seen = consumer
            .poll()
            .iter()
            .filter(|i| matches!(&***i, ExchangeItem::Obligation(_)))
            .count();
        assert!(seen >= 1, "obligations must reach the bus");
    }
}

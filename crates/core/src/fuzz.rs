//! Differential fuzzing — the paper's §9 contrast class (SpecDoctor,
//! Revizor, SpeechMiner…).
//!
//! Instead of model checking, run the two-machine product on the concrete
//! netlist simulator over random programs and random secret pairs, and
//! compare the microarchitectural observation traces directly. Finding a
//! divergence on a program whose ISA observation traces match is a
//! concrete attack — no solver involved. The trade-off the paper draws is
//! reproduced here measurably: fuzzing can be fast per trial and needs no
//! formal machinery, but offers no coverage guarantee (secure designs get
//! "no attack found after N trials", never a proof).
//!
//! The fuzzer reuses the shadow instance's netlist: the `no_leakage`
//! assertion firing with all contract assumes held *is* the oracle, so the
//! fuzzing and formal flows check the identical property.

use csl_isa::{progen, IsaConfig};
use csl_mc::{Sim, SimState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::{shadow_instance, InstanceConfig};

/// One reproducible finding: the program and secret pair that leaked.
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    pub imem: Vec<u32>,
    pub public: Vec<u32>,
    pub secret_a: Vec<u32>,
    pub secret_b: Vec<u32>,
    /// Cycle at which the leakage assertion fired.
    pub cycle: usize,
    /// Trials executed before the finding.
    pub trials: usize,
}

/// Outcome of a fuzzing campaign.
#[derive(Clone, Debug)]
pub enum FuzzOutcome {
    /// A leak was observed (and is replayable from the finding).
    Leak(Box<FuzzFinding>),
    /// No leak in the given number of trials — *not* a security proof.
    Exhausted { trials: usize },
}

/// Configuration for [`fuzz_design`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzOptions {
    pub trials: usize,
    /// Cycles to simulate per trial.
    pub cycles: usize,
    pub seed: u64,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            trials: 2000,
            cycles: 24,
            seed: 0xF0_55,
        }
    }
}

fn load_memories(
    aig: &csl_hdl::Aig,
    imem: &[u32],
    public: &[u32],
    sec_a: &[u32],
    sec_b: &[u32],
) -> SimState {
    SimState::reset_with(aig, |_, name| {
        fn parse(name: &str) -> Option<(&str, usize, usize)> {
            let open = name.rfind("][")?;
            let bit: usize = name[open + 2..name.len() - 1].parse().ok()?;
            let head = &name[..open + 1];
            let open2 = head.rfind('[')?;
            let word: usize = head[open2 + 1..head.len() - 1].parse().ok()?;
            Some((&head[..open2], word, bit))
        }
        let Some((prefix, word, bit)) = parse(name) else {
            return false;
        };
        let v = match prefix {
            "imem" => imem[word],
            "dmem_pub" => public[word],
            "cpu1.dmem_sec" => sec_a[word],
            "cpu2.dmem_sec" => sec_b[word],
            _ => return false,
        };
        (v >> bit) & 1 == 1
    })
}

/// Runs a fuzzing campaign against a design × contract.
///
/// Each trial draws a random program, random public memory, and two random
/// (differing) secrets, then simulates the instrumented product machine.
/// A trial counts as a leak only if the `no_leakage` assertion fires while
/// every contract assume held up to and including that cycle — the same
/// validity condition the model checker enforces.
pub fn fuzz_design(cfg: &InstanceConfig, opts: &FuzzOptions) -> FuzzOutcome {
    let mut shadow_cfg = cfg.clone();
    shadow_cfg.with_candidates = false;
    let task = shadow_instance(&shadow_cfg);
    let isa: IsaConfig = shadow_cfg.cpu_config().isa;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let half = isa.dmem_size / 2;
    let mut sim = Sim::new(&task.aig);
    for trial in 0..opts.trials {
        let imem = if trial % 2 == 0 {
            progen::random_program(&isa, &progen::OpMix::default(), &mut rng)
        } else {
            progen::random_imem(&isa, &mut rng)
        };
        let public: Vec<u32> = (0..half).map(|_| rng.gen::<u32>() & isa.xmask()).collect();
        let secret_a: Vec<u32> = (0..half).map(|_| rng.gen::<u32>() & isa.xmask()).collect();
        let mut secret_b: Vec<u32> = (0..half).map(|_| rng.gen::<u32>() & isa.xmask()).collect();
        if secret_a == secret_b {
            // Enforce the threat model's "differ in at least one location".
            secret_b[0] ^= 1;
        }
        let mut state = load_memories(&task.aig, &imem, &public, &secret_a, &secret_b);
        for cycle in 0..opts.cycles {
            let r = sim.step(&state, |_, _| false);
            if !r.violated_assumes.is_empty() {
                break; // invalid program for this contract: next trial
            }
            if r.fired_bads.iter().any(|b| b.contains("no_leakage")) {
                return FuzzOutcome::Leak(Box::new(FuzzFinding {
                    imem,
                    public,
                    secret_a,
                    secret_b,
                    cycle,
                    trials: trial + 1,
                }));
            }
            state = r.next;
        }
    }
    FuzzOutcome::Exhausted {
        trials: opts.trials,
    }
}

/// Replays a finding, returning true iff it still leaks (determinism /
/// regression guard for stored findings).
pub fn replay_finding(cfg: &InstanceConfig, finding: &FuzzFinding, cycles: usize) -> bool {
    let mut shadow_cfg = cfg.clone();
    shadow_cfg.with_candidates = false;
    let task = shadow_instance(&shadow_cfg);
    let mut sim = Sim::new(&task.aig);
    let mut state = load_memories(
        &task.aig,
        &finding.imem,
        &finding.public,
        &finding.secret_a,
        &finding.secret_b,
    );
    for _ in 0..cycles {
        let r = sim.step(&state, |_, _| false);
        if !r.violated_assumes.is_empty() {
            return false;
        }
        if r.fired_bads.iter().any(|b| b.contains("no_leakage")) {
            return true;
        }
        state = r.next;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::DesignKind;
    use csl_contracts::Contract;
    use csl_cpu::Defense;

    #[test]
    fn fuzzer_finds_the_simple_ooo_leak() {
        let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
        // The debug-profile simulator is an order of magnitude slower, so
        // scale the campaign; under `--release` insist on the find.
        let trials = if cfg!(debug_assertions) { 700 } else { 5000 };
        let opts = FuzzOptions {
            trials,
            cycles: 20,
            seed: 7,
        };
        match fuzz_design(&cfg, &opts) {
            FuzzOutcome::Leak(f) => {
                assert!(replay_finding(&cfg, &f, 24), "finding must replay");
            }
            FuzzOutcome::Exhausted { trials } => {
                if !cfg!(debug_assertions) {
                    panic!("no leak in {trials} trials on an insecure design");
                }
            }
        }
    }

    #[test]
    fn fuzzer_silent_on_secure_design() {
        let cfg = InstanceConfig::new(
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::Sandboxing,
        );
        let trials = if cfg!(debug_assertions) { 120 } else { 600 };
        let opts = FuzzOptions {
            trials,
            cycles: 20,
            seed: 9,
        };
        match fuzz_design(&cfg, &opts) {
            FuzzOutcome::Exhausted { .. } => {}
            FuzzOutcome::Leak(f) => panic!("false leak on secure design: {f:?}"),
        }
    }
}

//! The session API's contract with the rest of the repo:
//!
//! 1. **Certified evidence** — every decided verdict of the SingleCycle
//!    smoke matrix (the stable-verdict workhorse) carries evidence that
//!    re-checks independently via `csl_certify`: proofs an inductive
//!    certificate, attacks a replayable witness.
//! 2. **Persistence** — a report produced by a real verification run
//!    round-trips through JSON losslessly and byte-stably, and survives
//!    a file-system write/read cycle (what the `smoke --json` CI
//!    artifact does).
//! 3. **Regression diffing** — `CampaignReport::diff` flags an injected
//!    verdict flip and stays clean on an identical run.
//! 4. **Caching** — `Query::cache_key` is stable and option-sensitive,
//!    and a cached matrix serves decided cells from disk on the rerun.

use std::time::Duration;

use csl_certify::{check_certificate, check_witness, Witness};
use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, ExchangeConfig, Mode, Report, Verifier};
use csl_core::{DesignKind, Scheme};
use csl_mc::{ProofEngine, Verdict};

const BUDGET: Duration = Duration::from_secs(10);
const DEPTH: usize = 4;

fn builder(scheme: Scheme) -> Verifier {
    Verifier::new()
        .design(DesignKind::SingleCycle)
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
}

/// Every decided smoke-matrix verdict must carry evidence that an
/// independent checker accepts against the *unprepared* instance: an
/// attack replays to a bad state, a proof's certificate passes its
/// three obligations. A decided cell with no evidence is a failure —
/// that is the certificate subsystem's whole claim.
#[test]
fn every_decided_smoke_cell_carries_validatable_evidence() {
    let mut decided = 0;
    for scheme in Scheme::ALL {
        let query = builder(scheme).query().unwrap();
        let report = query.run();
        match &report.verdict {
            Verdict::Attack(trace) => {
                decided += 1;
                let task = query.raw_instance();
                let check = check_witness(&task.aig, &Witness::new((**trace).clone()));
                assert!(
                    check.is_ok(),
                    "{}: attack witness must replay: {:?}",
                    scheme.name(),
                    check
                );
            }
            Verdict::Proof(engine) => {
                decided += 1;
                let cert = report.certificate.as_ref().unwrap_or_else(|| {
                    panic!(
                        "{}: proof ({engine:?}) must carry a certificate",
                        scheme.name()
                    )
                });
                let check = check_certificate(&query.raw_instance(), cert);
                assert!(
                    check.is_ok(),
                    "{}: certificate must validate: {:?}",
                    scheme.name(),
                    check
                );
            }
            // Budget-dependent (a loaded machine can time any scheme
            // out): nothing decided means nothing to audit.
            _ => {}
        }
    }
    assert!(
        decided >= 2,
        "the smoke matrix must decide at least the fast cells (got {decided})"
    );
}

/// `Verifier::matrix(..).run_all()` agrees with running each cell's
/// query individually: same cells, same order, same verdict kinds.
#[test]
fn matrix_matches_per_cell_queries() {
    let session = Verifier::new()
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
        .mode(Mode::Portfolio)
        .threads(2)
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
        .run_all();
    assert_eq!(session.reports.len(), Scheme::ALL.len());
    for report in &session.reports {
        let single = builder(report.scheme)
            .mode(Mode::Portfolio)
            .query()
            .unwrap()
            .run();
        assert_eq!(
            single.cell(),
            report.cell(),
            "{}: single {:?} vs matrix {:?}",
            report.label(),
            single.verdict,
            report.verdict
        );
    }
}

/// A report from a real run (LEAVE proof on SingleCycle — decisive and
/// fast) round-trips through JSON losslessly and byte-for-byte stably,
/// including through a real file.
#[test]
fn real_report_json_round_trips() {
    let report = builder(Scheme::Leave).query().unwrap().run();
    assert!(report.verdict.is_proof(), "{:?}", report.verdict);

    let text = report.to_json();
    let parsed = Report::from_json(&text).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), text, "re-serialization must be canonical");

    let dir = std::env::temp_dir().join("csl-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(&path, &text).unwrap();
    let reread = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reread, report);
    let _ = std::fs::remove_file(&path);
}

/// An attack verdict (trace included) survives the campaign-level round
/// trip too: run the smoke matrix, persist, reload, compare.
#[test]
fn campaign_json_round_trips_with_live_verdicts() {
    let campaign = Verifier::new()
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
        .mode(Mode::Portfolio)
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
        .run_all();
    let text = campaign.to_json();
    let parsed = CampaignReport::from_json(&text).unwrap();
    assert_eq!(parsed, campaign);
    assert_eq!(parsed.to_json(), text);
    // CSV: one row per cell plus the header.
    assert_eq!(
        campaign.to_csv().lines().count(),
        campaign.reports.len() + 1
    );
}

/// Diffing two runs: identical verdicts diff clean (even with different
/// timings); an injected verdict flip is flagged, and losing the decisive
/// proof is a regression.
#[test]
fn diff_flags_injected_verdict_flip() {
    let report = builder(Scheme::Leave).query().unwrap().run();
    let before = CampaignReport {
        reports: vec![report],
        wall: Duration::from_secs(1),
    };

    let mut same = before.clone();
    same.reports[0].elapsed += Duration::from_secs(5);
    same.wall = Duration::from_secs(9);
    assert!(before.diff(&same).is_clean());

    let mut after = before.clone();
    after.reports[0].verdict = Verdict::Timeout;
    let diff = before.diff(&after);
    assert!(diff.has_regressions(), "{diff:?}");
    assert_eq!(diff.changes.len(), 1);
    assert_eq!(diff.changes[0].before, "PROOF");
    assert_eq!(diff.changes[0].after, "T/O");

    // The reverse direction (gaining a proof) is a change, not a
    // regression.
    let gain = after.diff(&before);
    assert!(!gain.is_clean());
    assert!(!gain.has_regressions());

    // Flipping one decisive kind into the other (a PROOF cell suddenly
    // reporting an attack) is a regression too: soundness changed.
    let mut flipped = before.clone();
    flipped.reports[0].verdict = Verdict::Attack(Box::new(csl_mc::Trace {
        initial_latches: vec![],
        inputs: vec![Default::default(); 3],
        bad_name: "no_leakage".into(),
    }));
    let flip = before.diff(&flipped);
    assert!(flip.has_regressions(), "{flip:?}");
    assert_eq!(flip.changes[0].after, "CEX");

    // An engine change inside the same verdict kind (k-induction proof
    // instead of Houdini) is not a verdict change at all.
    let mut same_kind = before.clone();
    same_kind.reports[0].verdict = Verdict::Proof(ProofEngine::KInduction { k: 1 });
    assert!(before.diff(&same_kind).is_clean());
}

/// The `.exchange(..)` builder knob reaches the engine options, and the
/// cache key distinguishes every axis it claims to cover while staying
/// stable for identical queries.
#[test]
fn exchange_knob_and_cache_key_cover_the_query_identity() {
    let q = builder(Scheme::Shadow)
        .exchange(ExchangeConfig::on())
        .query()
        .unwrap();
    assert!(q.options().exchange.enabled);

    let base = builder(Scheme::Shadow).query().unwrap();
    let again = builder(Scheme::Shadow).query().unwrap();
    assert_eq!(
        base.cache_key(),
        again.cache_key(),
        "identical queries must share a key"
    );
    let different: Vec<u64> = vec![
        builder(Scheme::Leave).query().unwrap().cache_key(),
        builder(Scheme::Shadow)
            .contract(Contract::ConstantTime)
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .bmc_depth(DEPTH + 1)
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .exchange(ExchangeConfig::on())
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .design(DesignKind::InOrder)
            .query()
            .unwrap()
            .cache_key(),
    ];
    for (i, key) in different.iter().enumerate() {
        assert_ne!(*key, base.cache_key(), "axis {i} must change the key");
    }
}

/// A cached matrix run serves decided cells from disk on the second
/// pass: LEAVE proves SingleCycle fast, so its rerun must be a cache hit
/// with the verdict intact.
#[test]
fn matrix_rerun_serves_decided_cells_from_cache() {
    let dir = std::env::temp_dir().join(format!("csl-matrix-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let matrix = || {
        Verifier::new()
            .budget(Budget::wall(BUDGET))
            .bmc_depth(DEPTH)
            .into_matrix(
                &[Scheme::Leave],
                &[DesignKind::SingleCycle],
                &[Contract::Sandboxing],
            )
            .cache(&dir)
    };
    let first = matrix().run_all();
    assert!(first.reports[0].verdict.is_proof());
    assert!(
        !first.reports[0].notes.iter().any(|n| n.contains("cache")),
        "first run must be a miss"
    );

    let second = matrix().run_all();
    assert!(second.reports[0].verdict.is_proof());
    assert!(
        second.reports[0]
            .notes
            .iter()
            .any(|n| n.starts_with("served from cache")),
        "second run must hit: {:?}",
        second.reports[0].notes
    );
    assert!(first.diff(&second).is_clean());

    // The escape hatch bypasses the populated cache.
    let bypass = matrix().no_cache().run_all();
    assert!(
        !bypass.reports[0].notes.iter().any(|n| n.contains("cache")),
        "no_cache must force a fresh run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

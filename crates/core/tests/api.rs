//! The session API's contract with the rest of the repo:
//!
//! 1. **Equivalence** — a `Verifier` query returns the same verdict kind
//!    as the deprecated `verify` free function, and `Verifier::matrix`
//!    the same verdicts as the deprecated `run_campaign`, on the
//!    SingleCycle smoke matrix (the stable-verdict workhorse).
//! 2. **Persistence** — a report produced by a real verification run
//!    round-trips through JSON losslessly and byte-stably, and survives
//!    a file-system write/read cycle (what the `smoke --json` CI
//!    artifact does).
//! 3. **Regression diffing** — `CampaignReport::diff` flags an injected
//!    verdict flip and stays clean on an identical run.
//! 4. **Caching** — `Query::cache_key` is stable and option-sensitive,
//!    and a cached matrix serves decided cells from disk on the rerun.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, ExchangeConfig, Mode, Report, Verifier};
use csl_core::{DesignKind, InstanceConfig, Scheme};
use csl_mc::{CheckOptions, ExecMode, ProofEngine, Verdict};

const BUDGET: Duration = Duration::from_secs(10);
const DEPTH: usize = 4;

fn builder(scheme: Scheme) -> Verifier {
    Verifier::new()
        .design(DesignKind::SingleCycle)
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
}

/// The builder and the deprecated `verify` free function must agree on
/// verdict kind for every scheme (same engines, same budgets underneath).
#[test]
#[allow(deprecated)]
fn builder_matches_legacy_verify() {
    let cfg = InstanceConfig::new(DesignKind::SingleCycle, Contract::Sandboxing);
    let opts = CheckOptions {
        total_budget: BUDGET,
        bmc_depth: DEPTH,
        ..Default::default()
    };
    for scheme in Scheme::ALL {
        let legacy = csl_core::verify(scheme, &cfg, &opts);
        let session = builder(scheme).query().unwrap().run();
        assert_eq!(
            legacy.verdict.cell(),
            session.cell(),
            "{}: legacy {:?} vs session {:?}",
            scheme.name(),
            legacy.verdict,
            session.verdict
        );
    }
}

/// `Verifier::matrix(..).run_all()` subsumes the deprecated
/// `run_campaign`: same cells, same order, same verdict kinds.
#[test]
#[allow(deprecated)]
fn matrix_matches_legacy_campaign() {
    let cells = csl_core::matrix(
        &Scheme::ALL,
        &[DesignKind::SingleCycle],
        &[Contract::Sandboxing],
    );
    let legacy = csl_core::run_campaign(
        &cells,
        &csl_core::CampaignOptions {
            threads: 2,
            cell: CheckOptions {
                total_budget: BUDGET,
                bmc_depth: DEPTH,
                mode: ExecMode::Portfolio,
                ..Default::default()
            },
        },
    );
    let session = Verifier::new()
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
        .mode(Mode::Portfolio)
        .threads(2)
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
        .run_all();
    assert_eq!(legacy.results.len(), session.reports.len());
    for (l, s) in legacy.results.iter().zip(&session.reports) {
        assert_eq!(l.cell.scheme, s.scheme);
        assert_eq!(l.cell.design, s.design);
        assert_eq!(l.cell.contract, s.contract);
        assert_eq!(
            l.report.verdict.cell(),
            s.cell(),
            "{}: legacy {:?} vs session {:?}",
            s.label(),
            l.report.verdict,
            s.verdict
        );
    }
}

/// A report from a real run (LEAVE proof on SingleCycle — decisive and
/// fast) round-trips through JSON losslessly and byte-for-byte stably,
/// including through a real file.
#[test]
fn real_report_json_round_trips() {
    let report = builder(Scheme::Leave).query().unwrap().run();
    assert!(report.verdict.is_proof(), "{:?}", report.verdict);

    let text = report.to_json();
    let parsed = Report::from_json(&text).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), text, "re-serialization must be canonical");

    let dir = std::env::temp_dir().join("csl-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(&path, &text).unwrap();
    let reread = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reread, report);
    let _ = std::fs::remove_file(&path);
}

/// An attack verdict (trace included) survives the campaign-level round
/// trip too: run the smoke matrix, persist, reload, compare.
#[test]
fn campaign_json_round_trips_with_live_verdicts() {
    let campaign = Verifier::new()
        .budget(Budget::wall(BUDGET))
        .bmc_depth(DEPTH)
        .mode(Mode::Portfolio)
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        )
        .run_all();
    let text = campaign.to_json();
    let parsed = CampaignReport::from_json(&text).unwrap();
    assert_eq!(parsed, campaign);
    assert_eq!(parsed.to_json(), text);
    // CSV: one row per cell plus the header.
    assert_eq!(
        campaign.to_csv().lines().count(),
        campaign.reports.len() + 1
    );
}

/// Diffing two runs: identical verdicts diff clean (even with different
/// timings); an injected verdict flip is flagged, and losing the decisive
/// proof is a regression.
#[test]
fn diff_flags_injected_verdict_flip() {
    let report = builder(Scheme::Leave).query().unwrap().run();
    let before = CampaignReport {
        reports: vec![report],
        wall: Duration::from_secs(1),
    };

    let mut same = before.clone();
    same.reports[0].elapsed += Duration::from_secs(5);
    same.wall = Duration::from_secs(9);
    assert!(before.diff(&same).is_clean());

    let mut after = before.clone();
    after.reports[0].verdict = Verdict::Timeout;
    let diff = before.diff(&after);
    assert!(diff.has_regressions(), "{diff:?}");
    assert_eq!(diff.changes.len(), 1);
    assert_eq!(diff.changes[0].before, "PROOF");
    assert_eq!(diff.changes[0].after, "T/O");

    // The reverse direction (gaining a proof) is a change, not a
    // regression.
    let gain = after.diff(&before);
    assert!(!gain.is_clean());
    assert!(!gain.has_regressions());

    // Flipping one decisive kind into the other (a PROOF cell suddenly
    // reporting an attack) is a regression too: soundness changed.
    let mut flipped = before.clone();
    flipped.reports[0].verdict = Verdict::Attack(Box::new(csl_mc::Trace {
        initial_latches: vec![],
        inputs: vec![Default::default(); 3],
        bad_name: "no_leakage".into(),
    }));
    let flip = before.diff(&flipped);
    assert!(flip.has_regressions(), "{flip:?}");
    assert_eq!(flip.changes[0].after, "CEX");

    // An engine change inside the same verdict kind (k-induction proof
    // instead of Houdini) is not a verdict change at all.
    let mut same_kind = before.clone();
    same_kind.reports[0].verdict = Verdict::Proof(ProofEngine::KInduction { k: 1 });
    assert!(before.diff(&same_kind).is_clean());
}

/// The `.exchange(..)` builder knob reaches the engine options, and the
/// cache key distinguishes every axis it claims to cover while staying
/// stable for identical queries.
#[test]
fn exchange_knob_and_cache_key_cover_the_query_identity() {
    let q = builder(Scheme::Shadow)
        .exchange(ExchangeConfig::on())
        .query()
        .unwrap();
    assert!(q.options().exchange.enabled);

    let base = builder(Scheme::Shadow).query().unwrap();
    let again = builder(Scheme::Shadow).query().unwrap();
    assert_eq!(
        base.cache_key(),
        again.cache_key(),
        "identical queries must share a key"
    );
    let different: Vec<u64> = vec![
        builder(Scheme::Leave).query().unwrap().cache_key(),
        builder(Scheme::Shadow)
            .contract(Contract::ConstantTime)
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .bmc_depth(DEPTH + 1)
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .exchange(ExchangeConfig::on())
            .query()
            .unwrap()
            .cache_key(),
        builder(Scheme::Shadow)
            .design(DesignKind::InOrder)
            .query()
            .unwrap()
            .cache_key(),
    ];
    for (i, key) in different.iter().enumerate() {
        assert_ne!(*key, base.cache_key(), "axis {i} must change the key");
    }
}

/// A cached matrix run serves decided cells from disk on the second
/// pass: LEAVE proves SingleCycle fast, so its rerun must be a cache hit
/// with the verdict intact.
#[test]
fn matrix_rerun_serves_decided_cells_from_cache() {
    let dir = std::env::temp_dir().join(format!("csl-matrix-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let matrix = || {
        Verifier::new()
            .budget(Budget::wall(BUDGET))
            .bmc_depth(DEPTH)
            .into_matrix(
                &[Scheme::Leave],
                &[DesignKind::SingleCycle],
                &[Contract::Sandboxing],
            )
            .cache(&dir)
    };
    let first = matrix().run_all();
    assert!(first.reports[0].verdict.is_proof());
    assert!(
        !first.reports[0].notes.iter().any(|n| n.contains("cache")),
        "first run must be a miss"
    );

    let second = matrix().run_all();
    assert!(second.reports[0].verdict.is_proof());
    assert!(
        second.reports[0]
            .notes
            .iter()
            .any(|n| n.starts_with("served from cache")),
        "second run must hit: {:?}",
        second.reports[0].notes
    );
    assert!(first.diff(&second).is_clean());

    // The escape hatch bypasses the populated cache.
    let bypass = matrix().no_cache().run_all();
    assert!(
        !bypass.reports[0].notes.iter().any(|n| n.contains("cache")),
        "no_cache must force a fresh run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Portfolio-vs-sequential agreement on real verification instances, and
//! the campaign runner's wall-clock sanity.
//!
//! The single-cycle design is the smallest instance in the matrix and its
//! verdict landscape is stable across budgets (measured in release:
//! LEAVE proves in under a second; Baseline, UPEC and Shadow all exhaust
//! any test-sized budget — the shadow instance's relational candidates do
//! not survive Houdini, so no fast proof exists). That stability is what
//! makes the cross-mode agreement checks below deterministic: each cell
//! is either decisively fast (LEAVE) or decisively out of reach (the
//! rest), never near the budget boundary.

use std::time::{Duration, Instant};

use csl_contracts::Contract;
use csl_core::api::{Budget, Mode, Report, Verifier};
use csl_core::{DesignKind, Scheme};

fn single_cycle(scheme: Scheme, mode: Mode) -> Report {
    Verifier::new()
        .design(DesignKind::SingleCycle)
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .mode(mode)
        .budget(Budget::wall(Duration::from_secs(10)))
        .bmc_depth(4)
        .query()
        .expect("design and contract are set")
        .run()
}

/// Every scheme on the single-cycle design: the portfolio must return the
/// same verdict kind as the sequential pipeline.
#[test]
fn portfolio_matches_sequential_on_single_cycle_for_all_schemes() {
    for scheme in Scheme::ALL {
        let seq = single_cycle(scheme, Mode::Sequential);
        let par = single_cycle(scheme, Mode::Portfolio);
        assert_eq!(
            seq.cell(),
            par.cell(),
            "{}: sequential {:?} vs portfolio {:?}\nseq notes: {:?}\npar notes: {:?}",
            scheme.name(),
            seq.verdict,
            par.verdict,
            seq.notes,
            par.notes
        );
    }
}

/// LEAVE on the speculation-free design is the decisive-proof anchor: its
/// Houdini candidates are all inductive and imply safety, so both modes
/// must return PROOF well inside the budget (not merely agree).
#[test]
fn single_cycle_leave_instance_is_proved_in_both_modes() {
    for mode in [Mode::Sequential, Mode::Portfolio] {
        let report = single_cycle(Scheme::Leave, mode);
        assert!(
            report.verdict.is_proof(),
            "{mode:?}: {:?} {:?}",
            report.verdict,
            report.notes
        );
    }
}

/// The campaign runner completes the smoke matrix no slower than running
/// the same cells in a plain sequential loop (modulo scheduling slack).
#[test]
fn campaign_wall_clock_no_worse_than_sequential_loop() {
    let matrix = Verifier::new()
        .mode(Mode::Portfolio)
        .budget(Budget::wall(Duration::from_secs(10)))
        .bmc_depth(4)
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[Contract::Sandboxing],
        );

    let seq_start = Instant::now();
    let mut seq_verdicts = Vec::new();
    for cell in matrix.cells() {
        seq_verdicts.push(single_cycle(cell.scheme, Mode::Portfolio).cell());
    }
    let seq_wall = seq_start.elapsed();

    let report = matrix.run_all();
    let par_verdicts: Vec<&str> = report.reports.iter().map(|r| r.cell()).collect();
    assert_eq!(seq_verdicts, par_verdicts);
    // "No worse" with slack for scheduler overhead and noisy-neighbour CI:
    // the pool must never be meaningfully slower than the loop.
    let limit = seq_wall.mul_f64(1.25) + Duration::from_secs(2);
    assert!(
        report.wall <= limit,
        "campaign wall {:?} exceeds sequential loop {:?} (limit {:?})",
        report.wall,
        seq_wall,
        limit
    );
}

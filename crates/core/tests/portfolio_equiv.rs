//! Portfolio-vs-sequential agreement on real verification instances, and
//! the campaign runner's wall-clock sanity.
//!
//! The single-cycle design is the smallest instance in the matrix and its
//! verdict landscape is stable across budgets (measured in release:
//! LEAVE proves in under a second; Baseline, UPEC and Shadow all exhaust
//! any test-sized budget — the shadow instance's relational candidates do
//! not survive Houdini, so no fast proof exists). That stability is what
//! makes the cross-mode agreement checks below deterministic: each cell
//! is either decisively fast (LEAVE) or decisively out of reach (the
//! rest), never near the budget boundary.

use std::time::{Duration, Instant};

use csl_contracts::Contract;
use csl_core::{matrix, run_campaign, verify, CampaignOptions, DesignKind, InstanceConfig, Scheme};
use csl_mc::{CheckOptions, ExecMode};

fn opts(mode: ExecMode) -> CheckOptions {
    CheckOptions {
        total_budget: Duration::from_secs(10),
        bmc_depth: 4,
        mode,
        ..Default::default()
    }
}

/// Every scheme on the single-cycle design: the portfolio must return the
/// same verdict kind as the sequential pipeline.
#[test]
fn portfolio_matches_sequential_on_single_cycle_for_all_schemes() {
    let cfg = InstanceConfig::new(DesignKind::SingleCycle, Contract::Sandboxing);
    for scheme in Scheme::ALL {
        let seq = verify(scheme, &cfg, &opts(ExecMode::Sequential));
        let par = verify(scheme, &cfg, &opts(ExecMode::Portfolio));
        assert_eq!(
            seq.verdict.cell(),
            par.verdict.cell(),
            "{}: sequential {:?} vs portfolio {:?}\nseq notes: {:?}\npar notes: {:?}",
            scheme.name(),
            seq.verdict,
            par.verdict,
            seq.notes,
            par.notes
        );
    }
}

/// LEAVE on the speculation-free design is the decisive-proof anchor: its
/// Houdini candidates are all inductive and imply safety, so both modes
/// must return PROOF well inside the budget (not merely agree).
#[test]
fn single_cycle_leave_instance_is_proved_in_both_modes() {
    let cfg = InstanceConfig::new(DesignKind::SingleCycle, Contract::Sandboxing);
    for mode in [ExecMode::Sequential, ExecMode::Portfolio] {
        let report = verify(Scheme::Leave, &cfg, &opts(mode));
        assert!(
            report.verdict.is_proof(),
            "{mode:?}: {:?} {:?}",
            report.verdict,
            report.notes
        );
    }
}

/// The campaign runner completes the smoke matrix no slower than running
/// the same cells in a plain sequential loop (modulo scheduling slack).
#[test]
fn campaign_wall_clock_no_worse_than_sequential_loop() {
    let cells = matrix(
        &Scheme::ALL,
        &[DesignKind::SingleCycle],
        &[Contract::Sandboxing],
    );
    let cell_opts = opts(ExecMode::Portfolio);

    let seq_start = Instant::now();
    let mut seq_verdicts = Vec::new();
    for cell in &cells {
        let cfg = InstanceConfig::new(cell.design, cell.contract);
        seq_verdicts.push(verify(cell.scheme, &cfg, &cell_opts).verdict.cell());
    }
    let seq_wall = seq_start.elapsed();

    let report = run_campaign(
        &cells,
        &CampaignOptions {
            threads: 0,
            cell: cell_opts,
        },
    );
    let par_verdicts: Vec<&str> = report
        .results
        .iter()
        .map(|r| r.report.verdict.cell())
        .collect();
    assert_eq!(seq_verdicts, par_verdicts);
    // "No worse" with slack for scheduler overhead and noisy-neighbour CI:
    // the pool must never be meaningfully slower than the loop.
    let limit = seq_wall.mul_f64(1.25) + Duration::from_secs(2);
    assert!(
        report.wall <= limit,
        "campaign wall {:?} exceeds sequential loop {:?} (limit {:?})",
        report.wall,
        seq_wall,
        limit
    );
}

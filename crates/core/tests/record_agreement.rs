//! The shadow logic's RTL record extraction must agree with the ISA-side
//! record projection: for random programs, run the single-cycle machine on
//! the simulator, extract its records through the shadow path, and compare
//! with the interpreter's records bit for bit. This validates the §5.4
//! "shadow logic correctness" assumption for the record-extraction half.

use csl_contracts::{isa_record, Contract};
use csl_core::{extract_record, pack_isa_record};
use csl_cpu::{build_single_cycle, SecretMem, SharedMem};
use csl_hdl::{Bit, Design};
use csl_isa::{interp, progen, ArchState, IsaConfig};
use csl_mc::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_contract(contract: Contract, cfg: IsaConfig, seed: u64) {
    let mut d = Design::new("t");
    let shared = SharedMem::new(&mut d, &cfg);
    d.push_scope("cpu");
    let secret = SecretMem::new(&mut d, &cfg);
    d.pop_scope();
    let ports = build_single_cycle(&mut d, &cfg, "cpu", &shared, &secret, Bit::TRUE);
    let record = extract_record(&mut d, contract, &cfg, &ports.commits[0]);
    d.probe("record", &record);
    shared.seal(&mut d);
    let aig = d.finish();
    let record_bits = aig
        .probes()
        .iter()
        .find(|p| p.name == "record")
        .unwrap()
        .bits
        .clone();

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..40 {
        let imem = progen::random_program(&cfg, &progen::OpMix::default(), &mut rng);
        let dmem = progen::random_dmem(&cfg, &mut rng);
        let mut sim = Sim::new(&aig);
        let mut state = csl_cpu::cosim::initial_state(&aig, &cfg, &imem, &dmem);
        let mut arch = ArchState::reset(&cfg);
        for cycle in 0..24 {
            let r = sim.step(&state, |_, _| false);
            let hw = r.values.word(&record_bits);
            let info = interp::step(&cfg, &mut arch, &imem, &dmem);
            let sw = pack_isa_record(contract, &cfg, &isa_record(contract, &cfg, &info))
                .expect("default-config layouts fit u64");
            assert_eq!(
                hw, sw,
                "cycle {cycle}: rtl record {hw:#x} != isa record {sw:#x} for {:?}",
                info
            );
            state = r.next;
        }
    }
}

#[test]
fn sandboxing_records_agree() {
    check_contract(Contract::Sandboxing, IsaConfig::default(), 101);
}

#[test]
fn constant_time_records_agree() {
    check_contract(Contract::ConstantTime, IsaConfig::default(), 102);
}

#[test]
fn sandboxing_records_agree_with_exceptions() {
    let cfg = IsaConfig {
        exceptions: true,
        ..IsaConfig::default()
    };
    check_contract(Contract::Sandboxing, cfg, 103);
}

#[test]
fn constant_time_records_agree_with_exceptions() {
    let cfg = IsaConfig {
        exceptions: true,
        ..IsaConfig::default()
    };
    check_contract(Contract::ConstantTime, cfg, 104);
}

#[test]
fn constant_time_records_agree_with_mul() {
    let cfg = IsaConfig {
        enable_mul: true,
        ..IsaConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(105);
    let _ = &mut rng;
    check_contract(Contract::ConstantTime, cfg, 105);
}

/// Synthesized (custom) observation sets go through the same atom-driven
/// extraction; spot-check the RTL/ISA agreement across the lattice,
/// including the degenerate empty set and the new atoms.
#[test]
fn custom_set_records_agree() {
    use csl_contracts::{ObsAtom, ObsSet};
    for (seed, set) in [
        (201, ObsSet::EMPTY),
        (202, ObsSet::of(&[ObsAtom::MemWord])),
        (203, ObsSet::of(&[ObsAtom::MemWord, ObsAtom::BranchTaken])),
        (204, ObsSet::of(&[ObsAtom::LoadAddr, ObsAtom::MemIsStore])),
        (205, ObsSet::full()),
    ] {
        check_contract(Contract::Custom(set), IsaConfig::default(), seed);
    }
}

/// A custom set equal to a named contract's must canonicalise to the
/// named variant and extract the identical record bits.
#[test]
fn named_sets_canonicalise_and_agree() {
    let sb = Contract::from_obs(Contract::sandboxing_set());
    assert_eq!(sb, Contract::Sandboxing);
    let ct = Contract::from_obs(Contract::constant_time_set());
    assert_eq!(ct, Contract::ConstantTime);
    check_contract(sb, IsaConfig::default(), 301);
}

//! Verifying the verifier: model-check the shadow logic's own internal
//! invariants, and demonstrate the §5.2 requirement ablations.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme, ShadowOptions};
use csl_cpu::Defense;
use csl_mc::{bmc, BmcResult, TransitionSystem, Verdict};
use csl_sat::Budget;

fn short_budget(secs: u64) -> Budget {
    Budget::until(std::time::Instant::now() + Duration::from_secs(secs))
}

/// With synchronisation enabled, the record FIFOs must never overflow:
/// BMC over the full product machine finds no overflow within the bound.
#[test]
fn fifo_overflow_unreachable_with_sync() {
    // The insecure core has reachable leaks, so counterexamples exist; but
    // every counterexample BMC surfaces must be a genuine `no_leakage`
    // violation — the shadow's internal overflow assertions stay quiet.
    let task = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .with_candidates(false)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts = TransitionSystem::shared(task.aig().clone(), false);
    let depth = if cfg!(debug_assertions) { 7 } else { 10 };
    match bmc(&ts, depth, short_budget(240)) {
        BmcResult::Cex(trace) => {
            assert!(
                trace.bad_name.contains("no_leakage"),
                "shadow internal assertion fired: {}",
                trace.bad_name
            );
        }
        BmcResult::Clean { .. } | BmcResult::Timeout { .. } => {}
    }
}

/// Replays a trace and keeps simulating `extra` cycles past its end
/// (inputs zero, the symbolic program is part of the initial state).
/// Returns whether any contract assume was violated over the whole run.
fn assume_violated_extended(aig: &csl_hdl::Aig, trace: &csl_mc::Trace, extra: usize) -> bool {
    let mut sim = csl_mc::Sim::new(aig);
    let mut state = csl_mc::SimState::reset(aig);
    for &(i, v) in &trace.initial_latches {
        state.set_latch(i as usize, v);
    }
    let mut violated = false;
    for cycle in 0..trace.depth() + extra {
        let r = sim.step(&state, |i, _| trace.input(cycle, i as u32).unwrap_or(false));
        violated |= !r.violated_assumes.is_empty();
        state = r.next;
    }
    violated
}

/// Ablation §5.2.1: with drain tracking disabled, the leakage assertion
/// fires before in-flight bound-to-commit instructions were contract
/// checked. The counterexample BMC returns is then a *false* attack: its
/// program violates the software constraint just past the trace window
/// (the violating records were still in flight when the assertion fired).
/// The drained version's counterexample stays constraint-clean.
#[test]
fn no_drain_ablation_yields_false_attacks() {
    let depth = if cfg!(debug_assertions) { 7 } else { 9 };
    // Genuine attack, full shadow logic: extended replay stays clean.
    let task = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts = TransitionSystem::shared(task.aig().clone(), false);
    let BmcResult::Cex(good) = bmc(&ts, depth, short_budget(240)) else {
        panic!("expected the genuine attack");
    };
    assert!(
        !assume_violated_extended(task.aig(), &good, 16),
        "the genuine attack's program must stay constraint-clean"
    );

    // Drain disabled: ask BMC for the *shallowest* counterexample and check
    // whether a false one (constraint violated post-window) exists at a
    // depth where the sound scheme has none.
    let task2 = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .shadow(ShadowOptions {
            enable_drain: false,
            ..ShadowOptions::default()
        })
        .with_candidates(false)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts2 = TransitionSystem::shared(task2.aig().clone(), false);
    match bmc(&ts2, good.depth().saturating_sub(1), short_budget(240)) {
        BmcResult::Cex(bad_cex) => {
            // The weakened assertion admits a superset of traces. Whatever
            // BMC returns must be explainable: either it is a false attack
            // (constraint violated once the replay is extended past the
            // window) — the §5.2.1 failure mode — or it coincides with a
            // genuine attack (same depth as the sound scheme's), in which
            // case no unsoundness manifested at this scale. At MiniISA
            // scale the commit-time record comparison lands within a cycle
            // of any architectural-data divergence, so the second outcome
            // is the common one; the requirement stays load-bearing for
            // deeper pipelines and is enforced structurally either way.
            let violated = assume_violated_extended(task2.aig(), &bad_cex, 16);
            let coincides = bad_cex.depth() >= good.depth();
            assert!(
                violated || coincides,
                "no-drain cex at depth {} is neither a demonstrable false \
                 attack nor the genuine one (sound depth {})",
                bad_cex.depth(),
                good.depth()
            );
        }
        // No shallower cex in the bound is also acceptable evidence-wise
        // (the requirement is about soundness, not about every design
        // exhibiting the failure at tiny depths).
        BmcResult::Clean { .. } | BmcResult::Timeout { .. } => {}
    }
}

/// The shadow scheme reports UNKNOWN (not a false attack) on a secure
/// design in attack-only mode.
#[test]
fn secure_design_has_no_shallow_attack() {
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::DelaySpectre))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .wall(Duration::from_secs(120))
        .bmc_depth(if cfg!(debug_assertions) { 5 } else { 8 })
        .attack_only(true)
        .query()
        .expect("design and contract are set")
        .run();
    assert!(!report.verdict.is_attack(), "{:?}", report.verdict);
}

/// LEAVE reports UNKNOWN on the out-of-order cores (its candidate family
/// collapses), matching §7.1.3.
#[test]
fn leave_unknown_on_ooo() {
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Leave)
        .wall(Duration::from_secs(300))
        .query()
        .expect("design and contract are set")
        .run();
    assert!(
        matches!(report.verdict, Verdict::Unknown { .. } | Verdict::Timeout),
        "{:?}",
        report.verdict
    );
}

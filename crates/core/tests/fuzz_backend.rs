//! The fuzzing backend inside the session API: portfolio racing,
//! sequential phase 0, trace lifting through instance preparation, and
//! cache-key sensitivity.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::api::{FuzzPlan, Mode, Verifier};
use csl_core::{run_fuzz, DesignKind, FuzzOutcome, Scheme};
use csl_cpu::Defense;
use csl_mc::{Sim, Verdict};
use csl_sat::Budget;

fn insecure_verifier() -> Verifier {
    Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .with_candidates(false)
        .wall(Duration::from_secs(180))
}

/// A plan sized so the campaign decides well inside the debug-profile
/// test budget (the batch simulator advances 64 trials per pass).
fn plan() -> FuzzPlan {
    FuzzPlan::new().trials(4000).cycles(20).seed(7)
}

/// With BMC capped far below the leak depth and the proof engines off,
/// the fuzzing lane is the only engine that can decide the race — the
/// attack verdict *is* the demonstration that a fuzz leak is decisive
/// and cancels the solver lanes.
#[test]
fn fuzz_lane_decides_the_portfolio_race() {
    let report = insecure_verifier()
        .mode(Mode::Portfolio)
        .attack_only(true)
        .bmc_depth(2)
        .fuzz(plan())
        .query()
        .unwrap()
        .run();
    assert!(
        report.verdict.is_attack(),
        "fuzz lane must find the leak: {:?}\n{:?}",
        report.verdict,
        report.notes
    );
    let stats = report.fuzz.as_ref().expect("fuzz stats in report");
    assert!(stats.leak_cycle.is_some());
    assert_eq!(stats.lanes, 64);
    assert_eq!(stats.seed, 7);
    assert!(
        report
            .notes
            .iter()
            .any(|n| n.starts_with("fuzz [") && n.contains("attack at depth")),
        "fuzz lane note missing: {:?}",
        report.notes
    );
    // The finding left the engine as a replayable trace: the JSON
    // round-trip preserves it like any formal counterexample.
    let parsed = csl_core::api::Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

/// Sequential mode runs the fuzzing lane as phase 0 ahead of BMC.
#[test]
fn fuzz_phase_zero_decides_sequential_checks() {
    let report = insecure_verifier()
        .mode(Mode::Sequential)
        .attack_only(true)
        .bmc_depth(2)
        .fuzz(plan())
        .query()
        .unwrap()
        .run();
    assert!(
        report.verdict.is_attack(),
        "{:?}\n{:?}",
        report.verdict,
        report.notes
    );
    assert!(report.fuzz.is_some(), "stats must survive the wrapper");
    assert!(
        report
            .notes
            .iter()
            .any(|n| n.contains("fuzz found attack at depth")),
        "{:?}",
        report.notes
    );
}

/// A leak found while fuzzing the *prepared* (reduced) netlist comes
/// back lifted into raw-netlist vocabulary — `check_safety` routes fuzz
/// traces through the same `Reconstruction` as formal ones — and the
/// lifted trace replays on the raw netlist to a bad-state hit.
#[test]
fn fuzz_findings_lift_through_preparation_and_replay_raw() {
    let query = insecure_verifier()
        .mode(Mode::Portfolio)
        .attack_only(true)
        .bmc_depth(2)
        .fuzz(plan())
        .query()
        .unwrap();
    let prepared = query.instance();
    assert!(prepared.was_prepared(), "default prepare pipeline is on");

    // Fuzz the reduced instance directly, then lift by hand.
    let isa = query.config().cpu_config().isa;
    let fuzz = run_fuzz(prepared.aig(), &isa, &plan(), &Budget::unlimited());
    let finding = match fuzz.outcome {
        FuzzOutcome::Leak(f) => f,
        FuzzOutcome::Exhausted { trials, .. } => {
            panic!("no leak in {trials} trials on the prepared insecure instance")
        }
    };
    let raw = query.raw_instance();
    let lifted = finding.trace.lifted(&prepared.reconstruction);
    let (assumes_ok, bad) = Sim::new(&raw.aig).replay(&lifted);
    assert!(
        assumes_ok && bad,
        "lifted fuzz trace must replay on the raw netlist"
    );

    // And the end-to-end path agrees: the attack the full check reports
    // replays on the raw netlist as-is.
    let report = query.run();
    match &report.verdict {
        Verdict::Attack(trace) => {
            let (ok, hit) = Sim::new(&raw.aig).replay(trace);
            assert!(ok && hit, "reported attack must be in raw vocabulary");
        }
        other => panic!("expected attack, got {other:?}\n{:?}", report.notes),
    }
}

/// The fuzz plan is part of the query fingerprint: adding a lane or
/// changing its seed must miss the session cache.
#[test]
fn fuzz_plan_changes_the_cache_key() {
    let base = insecure_verifier();
    let without = base.clone().query().unwrap().cache_key();
    let with = base.clone().fuzz(plan()).query().unwrap().cache_key();
    let reseeded = base
        .clone()
        .fuzz(plan().seed(8))
        .query()
        .unwrap()
        .cache_key();
    assert_ne!(without, with, "adding a fuzz lane must change the key");
    assert_ne!(with, reseeded, "the plan's seed is part of the key");
    let no_fuzz = base.fuzz(plan()).no_fuzz().query().unwrap().cache_key();
    assert_eq!(without, no_fuzz, "no_fuzz restores the fuzz-free key");
}

//! Directed simulation scenarios for the two-phase shadow monitor: drive a
//! concrete attack program through the shadow instance on the netlist
//! simulator and watch the monitor walk through the §5.3 protocol —
//! phase-1 lockstep, divergence detection, phase-2 latch, drain, and the
//! leakage assertion firing — with the contract assumes holding throughout.

use std::collections::HashMap;

use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::DesignKind;
use csl_cpu::Defense;
use csl_hdl::{Aig, Bit};
use csl_isa::{assemble, IsaConfig};
use csl_mc::{SafetyCheck, Sim, SimState};

/// The shadow instance plus the resolved ISA config for `design` ×
/// `contract`, via the session API.
fn shadow_task(design: DesignKind, contract: Contract) -> (SafetyCheck, IsaConfig) {
    let query = Verifier::new()
        .design(design)
        .contract(contract)
        .query()
        .expect("design and contract are set");
    let isa = query.config().cpu_config().isa;
    // Directed simulation drives the full monitor by latch name;
    // the raw (unprepared) netlist is the subject here.
    (query.raw_instance(), isa)
}

fn probe_map(aig: &Aig) -> HashMap<String, Vec<Bit>> {
    aig.probes()
        .iter()
        .map(|p| (p.name.clone(), p.bits.clone()))
        .collect()
}

/// Initial state: program + public data shared, secrets per machine.
fn init_state(
    aig: &Aig,
    cfg: &IsaConfig,
    imem: &[u32],
    pubw: &[u32],
    sec1: &[u32],
    sec2: &[u32],
) -> SimState {
    SimState::reset_with(aig, |_, name| {
        let parse = |name: &str| -> Option<(String, usize, usize)> {
            let open = name.rfind("][")?;
            let bit: usize = name[open + 2..name.len() - 1].parse().ok()?;
            let head = &name[..open + 1];
            let open2 = head.rfind('[')?;
            let word: usize = head[open2 + 1..head.len() - 1].parse().ok()?;
            Some((head[..open2].to_string(), word, bit))
        };
        let Some((prefix, word, bit)) = parse(name) else {
            return false;
        };
        let v = match prefix.as_str() {
            "imem" => imem[word],
            "dmem_pub" => pubw[word],
            "cpu1.dmem_sec" => sec1[word],
            "cpu2.dmem_sec" => sec2[word],
            _ => return false,
        };
        let _ = cfg;
        (v >> bit) & 1 == 1
    })
}

/// The classic MiniISA Spectre gadget: mispredicted branch shields two
/// dependent transient loads; the second load's address is the secret.
const SPECTRE: &str = "
        LI  r3, 2        ; secret-region pointer (word 2)
        LI  r1, 1
        BNZ r1, done     ; taken; predicted not-taken => transient window
        LD  r2, (r3)     ; transient: loads the secret
        LD  r0, (r2)     ; transient: secret-dependent bus address
done:   NOP
";

#[test]
fn spectre_gadget_walks_the_two_phase_protocol() {
    let (task, isa) = shadow_task(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    let probes = probe_map(&task.aig);
    let imem = assemble(&isa, SPECTRE).unwrap();
    // Secrets differ at word 0 of the secret region (= memory word 2); the
    // differing values steer the transient bus addresses apart.
    let state = init_state(&task.aig, &isa, &imem, &[0, 0], &[1, 0], &[3, 0]);

    let mut sim = Sim::new(&task.aig);
    let mut st = state;
    let mut saw_divergence_at = None;
    let mut phase2_at = None;
    let mut bad_at = None;
    for cycle in 0..16 {
        let r = sim.step(&st, |_, _| false);
        assert!(
            r.violated_assumes.is_empty(),
            "cycle {cycle}: contract assume violated — gadget should be a valid program"
        );
        let diff = r.values.word(&probes["shadow.uarch_diff"]);
        let phase2 = r.values.word(&probes["shadow.phase2"]);
        if diff == 1 && saw_divergence_at.is_none() {
            saw_divergence_at = Some(cycle);
        }
        if phase2 == 1 && phase2_at.is_none() {
            phase2_at = Some(cycle);
        }
        if !r.fired_bads.is_empty() && bad_at.is_none() {
            assert!(r.fired_bads.iter().any(|b| b.contains("no_leakage")));
            bad_at = Some(cycle);
        }
        st = r.next;
    }
    let div = saw_divergence_at.expect("transient loads must diverge the bus trace");
    let ph2 = phase2_at.expect("phase 2 must latch");
    let bad = bad_at.expect("leakage assertion must fire after drain");
    assert!(
        div < ph2 || div + 1 == ph2,
        "phase2 latches right after divergence"
    );
    assert!(
        bad > div,
        "assertion fires only after the divergence is drained"
    );
}

/// The same gadget against the Delay-spectre defence: the transient loads
/// never issue, traces stay identical, the monitor stays in phase 1.
#[test]
fn delay_spectre_keeps_the_gadget_silent() {
    let (task, isa) = shadow_task(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::Sandboxing,
    );
    let probes = probe_map(&task.aig);
    let imem = assemble(&isa, SPECTRE).unwrap();
    let state = init_state(&task.aig, &isa, &imem, &[0, 0], &[1, 0], &[3, 0]);

    let mut sim = Sim::new(&task.aig);
    let mut st = state;
    for cycle in 0..32 {
        let r = sim.step(&st, |_, _| false);
        assert!(r.violated_assumes.is_empty(), "cycle {cycle}");
        assert_eq!(
            r.values.word(&probes["shadow.uarch_diff"]),
            0,
            "cycle {cycle}: defended core must not diverge"
        );
        assert!(r.fired_bads.is_empty(), "cycle {cycle}: {:?}", r.fired_bads);
        st = r.next;
    }
}

/// A program that loads the secret architecturally is *invalid* under
/// sandboxing: the record-compare assume must flag it (the constraint
/// check doing its filtering job).
#[test]
fn architectural_secret_load_violates_the_constraint() {
    let (task, isa) = shadow_task(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    let imem = assemble(
        &isa,
        "
        LI  r1, 2
        LD  r2, (r1)     ; committed load of the secret word
loop:   BNZ r1, loop
        ",
    )
    .unwrap();
    let state = init_state(&task.aig, &isa, &imem, &[0, 0], &[5, 0], &[9, 0]);
    let mut sim = Sim::new(&task.aig);
    let mut st = state;
    let mut violated = false;
    for _ in 0..16 {
        let r = sim.step(&st, |_, _| false);
        violated |= !r.violated_assumes.is_empty();
        st = r.next;
    }
    assert!(
        violated,
        "sandboxing must filter programs that load secrets"
    );
}

/// Same architectural secret load under constant-time: the *data* may
/// differ (addresses are public), so the program is valid — until it uses
/// the secret as an address.
#[test]
fn constant_time_allows_secret_data_but_not_secret_addresses() {
    let (task, isa) = shadow_task(DesignKind::SimpleOoo(Defense::None), Contract::ConstantTime);
    // Valid: load secret into r2, do arithmetic on it.
    let valid = assemble(&isa, "LI r1, 2\nLD r2, (r1)\nADD r3, r2, r2\nNOP").unwrap();
    let state = init_state(&task.aig, &isa, &valid, &[0, 0], &[5, 0], &[9, 0]);
    let mut sim = Sim::new(&task.aig);
    let mut st = state;
    for cycle in 0..16 {
        let r = sim.step(&st, |_, _| false);
        assert!(
            r.violated_assumes.is_empty(),
            "cycle {cycle}: CT allows secret data in registers"
        );
        st = r.next;
    }
    // Invalid: dereference the secret.
    let invalid = assemble(&isa, "LI r1, 2\nLD r2, (r1)\nLD r3, (r2)\nNOP").unwrap();
    let state = init_state(&task.aig, &isa, &invalid, &[0, 0], &[1, 0], &[2, 0]);
    let mut st = state;
    let mut violated = false;
    for _ in 0..16 {
        let r = sim.step(&st, |_, _| false);
        violated |= !r.violated_assumes.is_empty();
        st = r.next;
    }
    assert!(violated, "CT must filter secret-dependent addresses");
}

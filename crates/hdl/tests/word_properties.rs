//! Property-based testing of the word-level operator library against
//! `u64` reference semantics: on constant inputs the AIG constant-folds,
//! so equality with the expected literal is a complete functional check.

use csl_hdl::{Design, Word};
use proptest::prelude::*;

fn mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

fn lit(d: &mut Design, w: usize, v: u64) -> Word {
    d.lit(w, v & mask(w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches(w in 1usize..12, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        let got = d.add(&x, &y);
        let want = lit(&mut d, w, a.wrapping_add(b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sub_matches(w in 1usize..12, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        let got = d.sub(&x, &y);
        let want = lit(&mut d, w, (a & mask(w)).wrapping_sub(b & mask(w)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mul_matches(w in 1usize..9, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        let got = d.mul(&x, &y);
        let want = lit(&mut d, w, (a & mask(w)).wrapping_mul(b & mask(w)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn comparisons_match(w in 1usize..12, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let (am, bm) = (a & mask(w), b & mask(w));
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        prop_assert_eq!(d.eq(&x, &y) == csl_hdl::Bit::TRUE, am == bm);
        prop_assert_eq!(d.ult(&x, &y) == csl_hdl::Bit::TRUE, am < bm);
        prop_assert_eq!(d.ule(&x, &y) == csl_hdl::Bit::TRUE, am <= bm);
        prop_assert_eq!(d.is_zero(&x) == csl_hdl::Bit::TRUE, am == 0);
    }

    #[test]
    fn bitwise_match(w in 1usize..16, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        let and = d.and(&x, &y);
        let or = d.or(&x, &y);
        let xor = d.xor(&x, &y);
        let not = d.not(&x);
        prop_assert_eq!(and, lit(&mut d, w, a & b));
        prop_assert_eq!(or, lit(&mut d, w, a | b));
        prop_assert_eq!(xor, lit(&mut d, w, a ^ b));
        prop_assert_eq!(not, lit(&mut d, w, !a));
    }

    #[test]
    fn mux_matches(w in 1usize..12, s in any::<bool>(), a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let y = lit(&mut d, w, b);
        let sel = if s { csl_hdl::Bit::TRUE } else { csl_hdl::Bit::FALSE };
        let got = d.mux(sel, &x, &y);
        let want = lit(&mut d, w, if s { a } else { b });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn select_matches(idx in 0usize..8, vals in prop::collection::vec(any::<u64>(), 8)) {
        let mut d = Design::new("t");
        let options: Vec<Word> = vals.iter().map(|&v| lit(&mut d, 8, v)).collect();
        let i = d.lit(3, idx as u64);
        let got = d.select(&i, &options);
        let want = lit(&mut d, 8, vals[idx]);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn shifts_match(w in 1usize..16, k in 0usize..20, a in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let shl = d.shl_const(&x, k);
        let shr = d.shr_const(&x, k);
        let am = a & mask(w);
        let want_shl = if k >= 64 { 0 } else { am << k };
        let want_shr = if k >= 64 { 0 } else { am >> k };
        prop_assert_eq!(shl, lit(&mut d, w, want_shl));
        prop_assert_eq!(shr, lit(&mut d, w, want_shr));
    }

    #[test]
    fn add_const_matches(w in 1usize..12, a in any::<u64>(), k in any::<u64>()) {
        let mut d = Design::new("t");
        let x = lit(&mut d, w, a);
        let got = d.add_const(&x, k & mask(w));
        let want = lit(&mut d, w, a.wrapping_add(k & mask(w)));
        prop_assert_eq!(got, want);
    }
}

//! `csl-hdl` — a word-level hardware-construction DSL over an AIG netlist.
//!
//! This crate replaces the Verilog/Chisel front end of the original paper:
//! processors, defence mechanisms and the contract shadow logic are all
//! *generators* — Rust functions that emit gates and latches into a
//! [`Design`] — and the resulting [`Aig`] is what the model checker in
//! `csl-mc` consumes.
//!
//! Layers, bottom-up:
//!
//! * [`aig`]: two-input AND gates with complemented edges, latches with
//!   declared reset behaviour, per-cycle `assume` constraints and `bad`
//!   (assertion-violation) bits — the AIGER-style core.
//! * [`word`]: fixed-width bit bundles.
//! * [`design`]: named registers with scoping, enable gating (the paper's
//!   clock-pause trick), and the word-level operator library
//!   (add/sub/mul/compare/mux/select/decode).
//! * [`mem`]: register-file / memory arrays with queued write ports and
//!   read-only (symbolic constant) sealing for instruction memory.
//! * [`xform`]: post-build netlist reduction passes (cone-of-influence,
//!   constant sweep + re-strash, dead-latch elimination, compaction)
//!   with [`Reconstruction`] back-maps for lifting counterexamples on
//!   the reduced netlist back to original names.
//!
//! # Example
//!
//! ```
//! use csl_hdl::{Design, Init, MemArray};
//!
//! // A tiny accumulator machine: acc += rom[pc]; pc += 1.
//! let mut d = Design::new("acc");
//! let rom = MemArray::new(&mut d, "rom", 4, 8, Init::Symbolic);
//! let pc = d.reg("pc", 2, Init::Zero);
//! let acc = d.reg("acc", 8, Init::Zero);
//! let data = rom.read(&mut d, &pc.q());
//! let sum = d.add(&acc.q(), &data);
//! d.set_next(&acc, sum);
//! let pc1 = d.add_const(&pc.q(), 1);
//! d.set_next(&pc, pc1);
//! rom.seal_const(&mut d);
//! let aig = d.finish();
//! assert_eq!(aig.num_latches(), 4 * 8 + 2 + 8);
//! ```

pub mod aig;
pub mod aiger;
pub mod design;
pub mod mem;
pub mod word;
pub mod xform;

pub use aig::{
    Aig, BadInfo, Bit, CoiMarks, Init, InputInfo, LatchInfo, Node, PrefixStats, ProbeInfo,
};
pub use design::{Design, Reg, RegMark};
pub use mem::MemArray;
pub use word::Word;
pub use xform::{
    CoiPass, CompactPass, ConstSweepPass, DeadLatchPass, Pass, PassOpts, PassStats, Pipeline,
    PipelineStats, Reconstruction, Rewrite, Shape,
};

//! AIGER 1.9 (ASCII `aag`) export.
//!
//! Writes a netlist in the standard model-checking interchange format, so
//! instances built here can be cross-checked with external tools (ABC,
//! nuXmv, AVR — the open-source tool the paper cites). Symbolic-init
//! latches use the AIGER 1.9 "uninitialised" convention (reset literal =
//! the latch's own literal); `assume` bits become invariant constraints
//! and `bad` bits become bad-state properties.

use std::fmt::Write as _;

use crate::aig::{Aig, Bit, Init, Node};

/// Renders the netlist as an ASCII AIGER (`aag`) document.
///
/// Node numbering: AIGER variable indices are assigned in netlist order
/// (inputs and latches keep their creation order), so the export is
/// deterministic.
pub fn to_aag(aig: &Aig) -> String {
    // Map each netlist node to an AIGER variable index (1-based).
    let mut var_of: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next_var = 1u32;
    let mut inputs = Vec::new();
    let mut latches = Vec::new();
    let mut ands = Vec::new();
    // (index loop kept: `idx` doubles as the packed-node id and the
    // `var_of` slot, which an enumerate over `var_of` would obscure)
    #[allow(clippy::needless_range_loop)]
    for idx in 0..aig.num_nodes() {
        let b = Bit::from_packed((idx as u32) << 1);
        match aig.node(b) {
            Node::Const => {}
            Node::Input(_) => {
                var_of[idx] = next_var;
                inputs.push(idx);
                next_var += 1;
            }
            Node::Latch(_) => {
                var_of[idx] = next_var;
                latches.push(idx);
                next_var += 1;
            }
            Node::And(..) => {
                var_of[idx] = next_var;
                ands.push(idx);
                next_var += 1;
            }
        }
    }
    let lit = |b: Bit| -> u32 {
        let base = 2 * var_of[b.node() as usize];
        base | b.is_complemented() as u32
    };

    let m = next_var - 1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} {} 0 {} {} {}",
        m,
        inputs.len(),
        latches.len(),
        ands.len(),
        aig.bads().len(),
        aig.assumes().len(),
    );
    for &i in &inputs {
        let _ = writeln!(out, "{}", 2 * var_of[i]);
    }
    for &l in &latches {
        let b = Bit::from_packed((l as u32) << 1);
        let Node::Latch(li) = aig.node(b) else {
            unreachable!()
        };
        let info = &aig.latches()[li as usize];
        let next = lit(info.next.expect("unsealed latch"));
        match info.init {
            Init::Zero => {
                let _ = writeln!(out, "{} {} 0", 2 * var_of[l], next);
            }
            Init::One => {
                let _ = writeln!(out, "{} {} 1", 2 * var_of[l], next);
            }
            Init::Symbolic => {
                // AIGER 1.9: reset literal equal to the latch literal means
                // "uninitialised".
                let _ = writeln!(out, "{} {} {}", 2 * var_of[l], next, 2 * var_of[l]);
            }
        }
    }
    for b in aig.bads() {
        let _ = writeln!(out, "{}", lit(b.bit));
    }
    for &a in aig.assumes() {
        let _ = writeln!(out, "{}", lit(a));
    }
    for &n in &ands {
        let b = Bit::from_packed((n as u32) << 1);
        let Node::And(x, y) = aig.node(b) else {
            unreachable!()
        };
        let _ = writeln!(out, "{} {} {}", 2 * var_of[n], lit(x), lit(y));
    }
    // Symbol table: inputs and latches by name, then a comment header.
    for (pos, &i) in inputs.iter().enumerate() {
        let b = Bit::from_packed((i as u32) << 1);
        let Node::Input(ii) = aig.node(b) else {
            unreachable!()
        };
        let _ = writeln!(out, "i{pos} {}", aig.inputs()[ii as usize].name);
    }
    for (pos, &l) in latches.iter().enumerate() {
        let b = Bit::from_packed((l as u32) << 1);
        let Node::Latch(li) = aig.node(b) else {
            unreachable!()
        };
        let _ = writeln!(out, "l{pos} {}", aig.latches()[li as usize].name);
    }
    for (pos, b) in aig.bads().iter().enumerate() {
        let _ = writeln!(out, "b{pos} {}", b.name);
    }
    let _ = writeln!(out, "c");
    let _ = writeln!(out, "exported by csl-hdl (contract-shadow-logic)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    #[test]
    fn export_counter() {
        let mut d = Design::new("t");
        let en = d.input_bit("en");
        let r = d.reg("r", 2, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        let next = d.mux(en, &inc, &r.q());
        d.set_next(&r, next);
        let bad = d.eq_const(&r.q(), 3);
        d.assert_always("no3", bad.not());
        d.assume(en);
        let aig = d.finish();
        let text = to_aag(&aig);
        let header = text.lines().next().unwrap();
        let parts: Vec<&str> = header.split_whitespace().collect();
        assert_eq!(parts[0], "aag");
        assert_eq!(parts[2], "1"); // one input
        assert_eq!(parts[3], "2"); // two latches
        assert_eq!(parts[6], "1"); // one bad
        assert_eq!(parts[7], "1"); // one constraint
        assert!(text.contains("i0 en"));
        assert!(text.contains("l0 r[0]"));
        assert!(text.contains("b0 no3"));
    }

    #[test]
    fn symbolic_latches_use_self_reset() {
        let mut d = Design::new("t");
        let r = d.reg("r", 1, Init::Symbolic);
        d.hold(&r);
        d.assert_always("x", crate::aig::Bit::TRUE);
        let aig = d.finish();
        let text = to_aag(&aig);
        // Latch line: "<lit> <next> <lit>" (self reset = uninitialised).
        let latch_line = text.lines().nth(1).expect("latch line after header");
        let parts: Vec<&str> = latch_line.split_whitespace().collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], parts[1]); // hold: next == self
        assert_eq!(parts[0], parts[2]); // uninitialised marker
    }

    #[test]
    fn and_lines_reference_lower_vars() {
        let mut d = Design::new("t");
        let a = d.input_bit("a");
        let b = d.input_bit("b");
        let x = d.and_bit(a, b);
        d.assert_always("never", x.not());
        let aig = d.finish();
        let text = to_aag(&aig);
        for line in text.lines().skip(1) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() == 3 && !line.starts_with(['i', 'l', 'b', 'c']) {
                let lhs: u32 = parts[0].parse().unwrap();
                let rhs0: u32 = parts[1].parse().unwrap();
                let rhs1: u32 = parts[2].parse().unwrap();
                assert!(lhs > rhs0 && lhs > rhs1, "AIGER ordering violated");
            }
        }
    }
}

//! Netlist transformation passes with trace back-mapping.
//!
//! The verification instances this workspace builds are *products*: two
//! machine copies plus monitor logic, and every engine pays for their
//! size on every SAT query. [`Aig::and`] already hash-conses at build
//! time, but build-time hashing cannot fold logic across the two copies
//! once their latches diverge, and it never removes state that cannot
//! reach a property. This module adds a post-build reduction layer — a
//! [`Pass`] trait over [`Aig`] plus a [`Pipeline`] runner — with four
//! standard passes:
//!
//! * [`CoiPass`] — cone-of-influence reduction w.r.t. the verification
//!   roots (assume and bad bits, plus probes when configured): latches,
//!   inputs and gates that cannot affect any root are dropped.
//! * [`ConstSweepPass`] — stuck-at-reset latch detection to a fixpoint
//!   (a concretely-initialised latch whose next-state function evaluates
//!   to its own reset value under the accumulated constants is replaced
//!   by that constant), followed by a full re-strash rebuild. The
//!   rebuild is where cross-copy sharing happens: once constants
//!   propagate, logic in the two machine copies that became structurally
//!   identical is merged by the construction-time hash-consing that
//!   missed it the first time.
//! * [`DeadLatchPass`] — removes latches orphaned by earlier passes
//!   (no longer reachable from any root through next-state functions),
//!   re-walking reachability over latches only.
//! * [`CompactPass`] — probe-preserving node compaction: drops
//!   unreachable AND nodes and inputs with no remaining fanout and
//!   renumbers the survivors densely.
//!
//! Every pass emits a [`Rewrite`] — the map from old nodes, latches and
//! inputs to their images — and the pipeline composes them into a
//! [`Reconstruction`], which can lift any model-checking artifact on the
//! reduced netlist (a counterexample's latch/input indices, a probe
//! value) back to the original netlist's names and indices. The
//! guarantees the passes maintain:
//!
//! * **Root preservation**: every assume, bad and (when kept) probe of
//!   the input netlist exists in the output under the same name, even
//!   when its function folded to a constant.
//! * **Behaviour preservation on the cone**: the reduced netlist is
//!   bisimilar to the original on every surviving latch/input — a
//!   counterexample on the reduced netlist, lifted through the
//!   [`Reconstruction`], replays to the same bad-state hit on the
//!   original, and a proof on the reduced netlist implies the original
//!   is safe (a stuck latch's constant is a true invariant of the
//!   original).
//! * **Candidate/root threading**: extra root bits handed to
//!   [`Pipeline::run`] (e.g. Houdini candidate invariants) are kept
//!   alive through every pass and returned as their final images.

use std::fmt;

use crate::aig::{Aig, Bit, Init, Node};

/// The size of a netlist, as recorded in per-pass statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shape {
    pub nodes: usize,
    pub ands: usize,
    pub latches: usize,
    pub inputs: usize,
}

impl Shape {
    /// Measures `aig`.
    pub fn of(aig: &Aig) -> Shape {
        Shape {
            nodes: aig.num_nodes(),
            ands: aig.num_ands(),
            latches: aig.num_latches(),
            inputs: aig.num_inputs(),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ands, {} latches, {} inputs",
            self.ands, self.latches, self.inputs
        )
    }
}

/// Before/after sizes for one executed pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// [`Pass::name`] of the pass that ran.
    pub pass: String,
    pub before: Shape,
    pub after: Shape,
}

impl PassStats {
    /// AND gates removed by this pass (saturating: a pass never grows
    /// the netlist, but stay defensive).
    pub fn ands_removed(&self) -> usize {
        self.before.ands.saturating_sub(self.after.ands)
    }

    pub fn latches_removed(&self) -> usize {
        self.before.latches.saturating_sub(self.after.latches)
    }
}

/// The per-pass statistics of one [`Pipeline::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    pub passes: Vec<PassStats>,
}

impl PipelineStats {
    /// Shape before the first pass ran (None when the pipeline was
    /// empty).
    pub fn original(&self) -> Option<Shape> {
        self.passes.first().map(|p| p.before)
    }

    /// Shape after the last pass ran.
    pub fn reduced(&self) -> Option<Shape> {
        self.passes.last().map(|p| p.after)
    }

    /// Total AND gates removed across the pipeline.
    pub fn ands_removed(&self) -> usize {
        match (self.original(), self.reduced()) {
            (Some(b), Some(a)) => b.ands.saturating_sub(a.ands),
            _ => 0,
        }
    }

    /// Total latches removed across the pipeline.
    pub fn latches_removed(&self) -> usize {
        match (self.original(), self.reduced()) {
            (Some(b), Some(a)) => b.latches.saturating_sub(a.latches),
            _ => 0,
        }
    }

    /// One-line human summary for notes and logs.
    pub fn summary(&self) -> String {
        match (self.original(), self.reduced()) {
            (Some(b), Some(a)) => format!(
                "prepare: {} -> {} ({} ands, {} latches removed over {} passes)",
                b,
                a,
                self.ands_removed(),
                self.latches_removed(),
                self.passes.len()
            ),
            _ => "prepare: no passes ran".to_string(),
        }
    }
}

/// The node/latch/input map one pass emits: where every surviving piece
/// of the old netlist went.
#[derive(Clone, Debug)]
pub struct Rewrite {
    /// Image of each old node's positive literal (`None` = dropped).
    forward: Vec<Option<Bit>>,
    /// New latch index -> old latch index.
    latch_back: Vec<u32>,
    /// New input index -> old input index.
    input_back: Vec<u32>,
}

impl Rewrite {
    /// The identity rewrite over `aig` (every node its own image).
    pub fn identity(aig: &Aig) -> Rewrite {
        Rewrite {
            forward: (0..aig.num_nodes() as u32)
                .map(|n| Some(Bit::from_packed(n << 1)))
                .collect(),
            latch_back: (0..aig.num_latches() as u32).collect(),
            input_back: (0..aig.num_inputs() as u32).collect(),
        }
    }

    /// The image of an old-netlist bit, composing the edge complement.
    /// Constants are their own image in every netlist (a pass that no
    /// longer references the constant node would otherwise drop it from
    /// the map, breaking composition for bits folded by earlier passes).
    pub fn forward(&self, b: Bit) -> Option<Bit> {
        if b.is_const() {
            return Some(b);
        }
        let img = (*self.forward.get(b.node() as usize)?)?;
        Some(if b.is_complemented() { img.not() } else { img })
    }

    /// Old latch index behind a new one.
    pub fn original_latch(&self, new_latch: u32) -> Option<u32> {
        self.latch_back.get(new_latch as usize).copied()
    }

    /// Old input index behind a new one.
    pub fn original_input(&self, new_input: u32) -> Option<u32> {
        self.input_back.get(new_input as usize).copied()
    }

    /// `first` applied to the original netlist, then `second` to its
    /// output.
    pub fn compose(first: &Rewrite, second: &Rewrite) -> Rewrite {
        Rewrite {
            forward: first
                .forward
                .iter()
                .map(|img| img.and_then(|b| second.forward(b)))
                .collect(),
            latch_back: second
                .latch_back
                .iter()
                .map(|&mid| first.latch_back[mid as usize])
                .collect(),
            input_back: second
                .input_back
                .iter()
                .map(|&mid| first.input_back[mid as usize])
                .collect(),
        }
    }
}

/// The composed rewrite of a whole pipeline, with the lifting-oriented
/// API model-checking layers use to express reduced-netlist artifacts in
/// original-netlist vocabulary.
///
/// Latches and inputs the pipeline removed simply have no image: a
/// lifted counterexample leaves them unconstrained, which is sound
/// because a removed latch either cannot influence any assume/bad bit
/// (cone-of-influence, dead-latch, compaction) or provably holds its
/// reset value forever (constant sweep) — in both cases the original
/// netlist reproduces the behaviour from reset on its own.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    rewrite: Rewrite,
}

impl Reconstruction {
    /// The identity reconstruction (preparation disabled / empty
    /// pipeline).
    pub fn identity(aig: &Aig) -> Reconstruction {
        Reconstruction {
            rewrite: Rewrite::identity(aig),
        }
    }

    pub(crate) fn new(rewrite: Rewrite) -> Reconstruction {
        Reconstruction { rewrite }
    }

    /// Original latch index behind reduced latch `new_latch`.
    pub fn original_latch(&self, new_latch: u32) -> Option<u32> {
        self.rewrite.original_latch(new_latch)
    }

    /// Original input index behind reduced input `new_input`.
    pub fn original_input(&self, new_input: u32) -> Option<u32> {
        self.rewrite.original_input(new_input)
    }

    /// Image of an original-netlist bit in the reduced netlist, if it
    /// survived.
    pub fn forward(&self, original: Bit) -> Option<Bit> {
        self.rewrite.forward(original)
    }

    /// Number of latches in the reduced netlist.
    pub fn reduced_latches(&self) -> usize {
        self.rewrite.latch_back.len()
    }

    /// Number of inputs in the reduced netlist.
    pub fn reduced_inputs(&self) -> usize {
        self.rewrite.input_back.len()
    }

    /// The restore map for constant-folded state: original latches the
    /// pipeline replaced by a constant, as `(original_latch_index,
    /// constant_value)` pairs.
    ///
    /// Only [`ConstSweepPass`] folds latches to constants, and only when
    /// the stuck-at-reset fixpoint proves the latch holds its (concrete)
    /// reset value in every reachable state — so each returned pair is a
    /// true invariant of `original`, independently re-checkable by
    /// induction on the raw netlist. Certificate checkers use this to
    /// reconstruct the part of an inductive invariant that the
    /// preparation pipeline discharged before the engines ever ran.
    ///
    /// Latches the pipeline merely dropped (cone-of-influence, dead
    /// latch, compaction) have no image at all and do not appear here.
    pub fn restored_constants(&self, original: &Aig) -> Vec<(u32, bool)> {
        original
            .latches()
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match self.rewrite.forward(l.output) {
                Some(b) if b == Bit::FALSE => Some((i as u32, false)),
                Some(b) if b == Bit::TRUE => Some((i as u32, true)),
                _ => None,
            })
            .collect()
    }
}

/// Options shared by every pass of a pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassOpts {
    /// Treat probes as roots (keep their cones and re-register them on
    /// the output netlist). With `false`, probes are dropped entirely —
    /// matching the engines' `keep_probes = false` encoding.
    pub keep_probes: bool,
}

impl Default for PassOpts {
    fn default() -> PassOpts {
        PassOpts { keep_probes: true }
    }
}

/// One netlist transformation. Implementations must preserve every
/// assume/bad (by name, even when folded to a constant), preserve probes
/// per [`PassOpts::keep_probes`], keep `roots` alive, and emit a
/// [`Rewrite`] consistent with the output netlist.
pub trait Pass {
    /// Short stable name, used in statistics and report JSON.
    fn name(&self) -> &'static str;

    /// Transforms `aig`, keeping `roots` alive, returning the new
    /// netlist and the old→new map.
    fn run(&self, aig: &Aig, roots: &[Bit], opts: &PassOpts) -> (Aig, Rewrite);
}

// ---------------------------------------------------------------------------
// The shared rebuild engine.
// ---------------------------------------------------------------------------

/// How a rebuild treats latches/inputs that nothing references: `Lazy`
/// creates them only on first use (so unreferenced ones vanish), `Eager`
/// pre-creates every one in original order (so the pass cannot drop
/// them).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Creation {
    Lazy,
    Eager,
}

/// Rebuilds a netlist bottom-up through [`Aig::and`] (re-strashing and
/// constant-folding as it goes), translating only what the roots and
/// kept latches reach.
struct Rebuilder<'a> {
    old: &'a Aig,
    new: Aig,
    /// Image of each old node's positive literal.
    map: Vec<Option<Bit>>,
    latch_back: Vec<u32>,
    input_back: Vec<u32>,
    /// Constant substitution per old latch index.
    subst: Vec<Option<Bit>>,
    /// Latches created whose next-state still needs translation.
    pending: Vec<(u32, Bit)>,
}

impl<'a> Rebuilder<'a> {
    fn new(
        old: &'a Aig,
        subst: Vec<Option<Bit>>,
        latches: Creation,
        inputs: Creation,
    ) -> Rebuilder<'a> {
        let mut r = Rebuilder {
            old,
            new: Aig::new(),
            map: vec![None; old.num_nodes()],
            latch_back: Vec::new(),
            input_back: Vec::new(),
            subst,
            pending: Vec::new(),
        };
        if inputs == Creation::Eager {
            for i in 0..old.num_inputs() as u32 {
                r.touch_input(i);
            }
        }
        if latches == Creation::Eager {
            for l in 0..old.num_latches() as u32 {
                if r.subst[l as usize].is_none() {
                    r.touch_latch(l);
                }
            }
        }
        r
    }

    fn touch_input(&mut self, idx: u32) -> Bit {
        let node = self.old.inputs()[idx as usize].output.node();
        if let Some(b) = self.map[node as usize] {
            return b;
        }
        let name = self.old.inputs()[idx as usize].name.clone();
        let b = self.new.input(name);
        self.map[node as usize] = Some(b);
        self.input_back.push(idx);
        b
    }

    fn touch_latch(&mut self, idx: u32) -> Bit {
        let node = self.old.latches()[idx as usize].output.node();
        if let Some(b) = self.map[node as usize] {
            return b;
        }
        if let Some(c) = self.subst[idx as usize] {
            self.map[node as usize] = Some(c);
            return c;
        }
        let info = &self.old.latches()[idx as usize];
        let (name, init) = (info.name.clone(), info.init);
        let b = self.new.latch(name, init);
        self.map[node as usize] = Some(b);
        self.latch_back.push(idx);
        self.pending.push((idx, b));
        b
    }

    /// Translates an old bit into the new netlist, creating everything
    /// its cone needs. Iterative, so product-machine depth cannot blow
    /// the stack.
    fn translate(&mut self, b: Bit) -> Bit {
        let mut stack = vec![b.node()];
        while let Some(&n) = stack.last() {
            if self.map[n as usize].is_some() {
                stack.pop();
                continue;
            }
            match self.old.node(Bit::from_packed(n << 1)) {
                Node::Const => {
                    self.map[n as usize] = Some(Bit::FALSE);
                    stack.pop();
                }
                Node::Input(i) => {
                    self.touch_input(i);
                    stack.pop();
                }
                Node::Latch(l) => {
                    self.touch_latch(l);
                    stack.pop();
                }
                Node::And(x, y) => {
                    let ix = self.map[x.node() as usize];
                    let iy = self.map[y.node() as usize];
                    match (ix, iy) {
                        (Some(ix), Some(iy)) => {
                            let ix = if x.is_complemented() { ix.not() } else { ix };
                            let iy = if y.is_complemented() { iy.not() } else { iy };
                            let img = self.new.and(ix, iy);
                            self.map[n as usize] = Some(img);
                            stack.pop();
                        }
                        _ => {
                            if ix.is_none() {
                                stack.push(x.node());
                            }
                            if iy.is_none() {
                                stack.push(y.node());
                            }
                        }
                    }
                }
            }
        }
        let img = self.map[b.node() as usize].expect("just translated");
        if b.is_complemented() {
            img.not()
        } else {
            img
        }
    }

    /// Translates the verification roots and every reached latch's
    /// next-state, registers assumes/bads/probes on the output, and
    /// returns the netlist, the rewrite and the images of `extra_roots`.
    fn finish(mut self, opts: &PassOpts, extra_roots: &[Bit]) -> (Aig, Rewrite, Vec<Bit>) {
        let assumes: Vec<Bit> = self.old.assumes().to_vec();
        for a in assumes {
            let img = self.translate(a);
            self.new.add_assume(img);
        }
        let bads: Vec<(String, Bit)> = self
            .old
            .bads()
            .iter()
            .map(|b| (b.name.clone(), b.bit))
            .collect();
        for (name, bit) in bads {
            let img = self.translate(bit);
            self.new.add_bad(name, img);
        }
        if opts.keep_probes {
            let probes: Vec<(String, Vec<Bit>)> = self
                .old
                .probes()
                .iter()
                .map(|p| (p.name.clone(), p.bits.clone()))
                .collect();
            for (name, bits) in probes {
                let imgs: Vec<Bit> = bits.into_iter().map(|b| self.translate(b)).collect();
                self.new.add_probe(name, imgs);
            }
        }
        let images: Vec<Bit> = extra_roots.iter().map(|&b| self.translate(b)).collect();
        // Seal every created latch; translating a next-state may create
        // more latches, so drain until quiet.
        while let Some((old_idx, handle)) = self.pending.pop() {
            let next = self.old.latches()[old_idx as usize]
                .next
                .expect("pass input must have sealed latches");
            let img = self.translate(next);
            self.new.set_next(handle, img);
        }
        let rewrite = Rewrite {
            forward: self.map,
            latch_back: self.latch_back,
            input_back: self.input_back,
        };
        (self.new, rewrite, images)
    }
}

// ---------------------------------------------------------------------------
// The standard passes.
// ---------------------------------------------------------------------------

/// Cone-of-influence reduction: latches, inputs and gates that cannot
/// reach any assume/bad bit (or kept probe, or extra root) are dropped.
pub struct CoiPass;

impl Pass for CoiPass {
    fn name(&self) -> &'static str {
        "coi"
    }

    fn run(&self, aig: &Aig, roots: &[Bit], opts: &PassOpts) -> (Aig, Rewrite) {
        let r = Rebuilder::new(
            aig,
            vec![None; aig.num_latches()],
            Creation::Lazy,
            Creation::Lazy,
        );
        let (new, rewrite, _) = r.finish(opts, roots);
        (new, rewrite)
    }
}

/// Constant sweep: stuck-at-reset latches are replaced by their reset
/// constant (computed to a fixpoint), and the whole netlist is rebuilt
/// through the hash-consing constructor so logic that became
/// structurally identical across the two machine copies merges.
pub struct ConstSweepPass;

/// Partial constant evaluation of `bit` under `latch_consts` (unknown
/// inputs/latches are `None`); memoised in `memo` per sweep iteration.
fn const_eval(
    aig: &Aig,
    latch_consts: &[Option<bool>],
    memo: &mut [Option<Option<bool>>],
    bit: Bit,
) -> Option<bool> {
    let mut stack = vec![bit.node()];
    while let Some(&n) = stack.last() {
        if memo[n as usize].is_some() {
            stack.pop();
            continue;
        }
        let value = match aig.node(Bit::from_packed(n << 1)) {
            Node::Const => Some(Some(false)),
            Node::Input(_) => Some(None),
            Node::Latch(l) => Some(latch_consts[l as usize]),
            Node::And(x, y) => {
                let ex = memo[x.node() as usize].map(|v| v.map(|b| b != x.is_complemented()));
                let ey = memo[y.node() as usize].map(|v| v.map(|b| b != y.is_complemented()));
                match (ex, ey) {
                    (Some(ex), Some(ey)) => Some(match (ex, ey) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }),
                    _ => {
                        if memo[x.node() as usize].is_none() {
                            stack.push(x.node());
                        }
                        if memo[y.node() as usize].is_none() {
                            stack.push(y.node());
                        }
                        None
                    }
                }
            }
        };
        if let Some(v) = value {
            memo[n as usize] = Some(v);
            stack.pop();
        }
    }
    memo[bit.node() as usize]
        .expect("just evaluated")
        .map(|b| b != bit.is_complemented())
}

/// Latches provably stuck at their reset value: start from "every
/// concretely-initialised latch holds its reset value" and drop
/// candidates whose next-state does not evaluate back to it, until
/// stable. Sound: the surviving set is a mutual-induction proof that
/// each member never changes.
fn stuck_latches(aig: &Aig) -> Vec<Option<bool>> {
    let mut cand: Vec<Option<bool>> = aig
        .latches()
        .iter()
        .map(|l| match l.init {
            Init::Zero => Some(false),
            Init::One => Some(true),
            Init::Symbolic => None,
        })
        .collect();
    loop {
        let mut memo: Vec<Option<Option<bool>>> = vec![None; aig.num_nodes()];
        let mut changed = false;
        for (i, l) in aig.latches().iter().enumerate() {
            let Some(v) = cand[i] else { continue };
            let next = l.next.expect("pass input must have sealed latches");
            if const_eval(aig, &cand, &mut memo, next) != Some(v) {
                cand[i] = None;
                changed = true;
            }
        }
        if !changed {
            return cand;
        }
    }
}

impl Pass for ConstSweepPass {
    fn name(&self) -> &'static str {
        "const-sweep"
    }

    fn run(&self, aig: &Aig, roots: &[Bit], opts: &PassOpts) -> (Aig, Rewrite) {
        let subst: Vec<Option<Bit>> = stuck_latches(aig)
            .into_iter()
            .map(|c| c.map(|v| if v { Bit::TRUE } else { Bit::FALSE }))
            .collect();
        // Eager: this pass only substitutes and re-strashes; orphan
        // removal is DeadLatchPass/CompactPass territory (so the per-pass
        // stats attribute each reduction to the pass that earned it).
        let r = Rebuilder::new(aig, subst, Creation::Eager, Creation::Eager);
        let (new, rewrite, _) = r.finish(opts, roots);
        (new, rewrite)
    }
}

/// Dead-latch elimination: latches no longer reachable from any root
/// through next-state functions — typically orphaned by the constant
/// sweep — are removed, along with their private logic cones. Inputs are
/// left in place ([`CompactPass`] collects dead ones).
pub struct DeadLatchPass;

impl Pass for DeadLatchPass {
    fn name(&self) -> &'static str {
        "dead-latch"
    }

    fn run(&self, aig: &Aig, roots: &[Bit], opts: &PassOpts) -> (Aig, Rewrite) {
        let r = Rebuilder::new(
            aig,
            vec![None; aig.num_latches()],
            Creation::Lazy,
            Creation::Eager,
        );
        let (new, rewrite, _) = r.finish(opts, roots);
        (new, rewrite)
    }
}

/// Probe-preserving node compaction: every latch survives, probes are
/// re-registered, but unreachable AND nodes and fanout-free inputs are
/// dropped and the survivors renumbered densely.
pub struct CompactPass;

impl Pass for CompactPass {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn run(&self, aig: &Aig, roots: &[Bit], opts: &PassOpts) -> (Aig, Rewrite) {
        let r = Rebuilder::new(
            aig,
            vec![None; aig.num_latches()],
            Creation::Eager,
            Creation::Lazy,
        );
        let (new, rewrite, _) = r.finish(opts, roots);
        (new, rewrite)
    }
}

// ---------------------------------------------------------------------------
// The pipeline runner.
// ---------------------------------------------------------------------------

/// What a [`Pipeline`] run produced: the reduced netlist, the composed
/// back-map, per-pass statistics, and the images of the extra roots.
pub struct Prepared {
    pub aig: Aig,
    pub reconstruction: Reconstruction,
    pub stats: PipelineStats,
    /// Final image of each bit in [`Pipeline::run`]'s `extra_roots`, in
    /// order. Roots are kept alive by every pass, so each has an image
    /// (possibly a constant, when the pipeline folded it).
    pub root_images: Vec<Bit>,
}

/// An ordered list of [`Pass`]es run back to back, composing their
/// rewrites.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    opts: PassOpts,
}

impl Pipeline {
    /// An empty pipeline (runs produce the identity transformation).
    pub fn new(opts: PassOpts) -> Pipeline {
        Pipeline {
            passes: Vec::new(),
            opts,
        }
    }

    /// The standard reduction order: cone-of-influence, constant sweep,
    /// dead-latch elimination, compaction.
    pub fn standard(opts: PassOpts) -> Pipeline {
        Pipeline::new(opts)
            .with_pass(CoiPass)
            .with_pass(ConstSweepPass)
            .with_pass(DeadLatchPass)
            .with_pass(CompactPass)
    }

    /// Appends a pass (builder style).
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// The configured passes, in execution order.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order. `extra_roots` (e.g. candidate invariant
    /// bits) are kept alive through the whole pipeline and returned as
    /// their final images.
    ///
    /// # Panics
    /// Panics if `aig` has unsealed latches.
    pub fn run(&self, aig: &Aig, extra_roots: &[Bit]) -> Prepared {
        aig.validate()
            .unwrap_or_else(|names| panic!("unsealed latches: {names:?}"));
        // The input is only cloned when no pass runs: each pass reads
        // the previous output (or `aig` itself for the first) by
        // reference.
        let mut current: Option<Aig> = None;
        let mut rewrite = Rewrite::identity(aig);
        let mut roots: Vec<Bit> = extra_roots.to_vec();
        let mut stats = PipelineStats::default();
        for pass in &self.passes {
            let input = current.as_ref().unwrap_or(aig);
            let before = Shape::of(input);
            let (next, step) = pass.run(input, &roots, &self.opts);
            roots = roots
                .into_iter()
                .map(|b| step.forward(b).expect("passes must keep extra roots alive"))
                .collect();
            rewrite = Rewrite::compose(&rewrite, &step);
            stats.passes.push(PassStats {
                pass: pass.name().to_string(),
                before,
                after: Shape::of(&next),
            });
            current = Some(next);
        }
        Prepared {
            aig: current.unwrap_or_else(|| aig.clone()),
            reconstruction: Reconstruction::new(rewrite),
            stats,
            root_images: roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    /// live counter asserted-on, dead counter dangling, a stuck latch,
    /// and a probe over the dead counter.
    fn mixed_design() -> Aig {
        let mut d = Design::new("t");
        let live = d.reg("live", 3, Init::Zero);
        let nxt = d.add_const(&live.q(), 1);
        d.set_next(&live, nxt);
        let dead = d.reg("dead", 4, Init::Zero);
        let dnxt = d.add_const(&dead.q(), 3);
        d.set_next(&dead, dnxt);
        let stuck = d.reg("stuck", 1, Init::Zero);
        d.hold(&stuck);
        let x = d.input_bit("x");
        let gated = d.and_bit(stuck.q().bit(0), x);
        let hit = d.eq_const(&live.q(), 5);
        let bad = d.or_bit(hit, gated);
        d.assert_always("bad", bad);
        let dq = dead.q();
        d.probe("dead", &dq);
        d.finish()
    }

    #[test]
    fn coi_drops_dead_state_without_probes() {
        let aig = mixed_design();
        let (reduced, rw) = CoiPass.run(&aig, &[], &PassOpts { keep_probes: false });
        assert!(reduced.validate().is_ok());
        // The dead counter (4 latches) is gone; live (3) + stuck (1) stay.
        assert_eq!(reduced.num_latches(), 4);
        assert!(reduced.latches().iter().all(|l| !l.name.contains("dead")));
        // Back-maps point at the original indices.
        for (new, l) in reduced.latches().iter().enumerate() {
            let old = rw.original_latch(new as u32).unwrap();
            assert_eq!(aig.latches()[old as usize].name, l.name);
        }
        // Bads/assumes preserved by name.
        assert_eq!(reduced.bads().len(), 1);
        assert_eq!(reduced.bads()[0].name, "bad");
    }

    #[test]
    fn coi_keeps_probed_state_when_requested() {
        let aig = mixed_design();
        let (reduced, _) = CoiPass.run(&aig, &[], &PassOpts { keep_probes: true });
        assert!(reduced.latches().iter().any(|l| l.name.contains("dead")));
        assert_eq!(reduced.probes().len(), 1);
    }

    #[test]
    fn const_sweep_folds_stuck_latches() {
        let aig = mixed_design();
        let stuck = stuck_latches(&aig);
        // `stuck` (hold of Zero) is constant; the counters are not.
        let names: Vec<(&str, Option<bool>)> = aig
            .latches()
            .iter()
            .zip(&stuck)
            .map(|(l, s)| (l.name.as_str(), *s))
            .collect();
        for (name, s) in names {
            if name.starts_with("stuck") {
                assert_eq!(s, Some(false), "{name}");
            } else {
                assert_eq!(s, None, "{name}");
            }
        }
        let (reduced, rw) = ConstSweepPass.run(&aig, &[], &PassOpts { keep_probes: true });
        assert!(reduced.validate().is_ok());
        assert!(reduced.latches().iter().all(|l| !l.name.contains("stuck")));
        // The gated path folded away: `stuck & x` became FALSE, so the
        // bad reduces to the live-counter comparison.
        assert!(reduced.num_ands() < aig.num_ands());
        // The stuck latch has no image as a latch, but its output bit
        // maps to the constant.
        let stuck_out = aig
            .latches()
            .iter()
            .find(|l| l.name.starts_with("stuck"))
            .unwrap()
            .output;
        assert_eq!(rw.forward(stuck_out), Some(Bit::FALSE));
    }

    #[test]
    fn const_sweep_merges_cross_copy_duplicates() {
        // Two copies compute `sel ? a : b`; copy 2's selector latch is
        // stuck at 0, copy 1's genuinely toggles. After sweeping, copy
        // 2's mux collapses onto the shared `b` operand.
        let mut d = Design::new("t");
        let a = d.input_bit("a");
        let b = d.input_bit("b");
        let sel1 = d.reg("c1.sel", 1, Init::Symbolic);
        d.hold(&sel1);
        let sel2 = d.reg("c2.sel", 1, Init::Zero);
        d.hold(&sel2);
        let m1 = d.mux_bit(sel1.q().bit(0), a, b);
        let m2 = d.mux_bit(sel2.q().bit(0), a, b);
        let ne = d.xor_bit(m1, m2);
        d.assert_always("diverge", ne);
        let aig = d.finish();
        let (reduced, _) = ConstSweepPass.run(&aig, &[], &PassOpts { keep_probes: false });
        assert!(reduced.num_ands() < aig.num_ands());
        assert!(reduced.latches().iter().all(|l| l.name != "c2.sel"));
    }

    #[test]
    fn dead_latch_removes_orphans_and_compact_drops_inputs() {
        let aig = mixed_design();
        let opts = PassOpts { keep_probes: false };
        // Const sweep leaves the dead counter in place (eager rebuild)…
        let (swept, _) = ConstSweepPass.run(&aig, &[], &opts);
        assert!(swept.latches().iter().any(|l| l.name.contains("dead")));
        // …dead-latch elimination removes it but keeps input x…
        let (deadfree, _) = DeadLatchPass.run(&swept, &[], &opts);
        assert!(deadfree.latches().iter().all(|l| !l.name.contains("dead")));
        assert_eq!(deadfree.num_inputs(), 1);
        // …and compaction drops the now-unreferenced input.
        let (compacted, _) = CompactPass.run(&deadfree, &[], &opts);
        assert_eq!(compacted.num_inputs(), 0);
        assert_eq!(compacted.num_latches(), deadfree.num_latches());
    }

    #[test]
    fn pipeline_composes_back_maps() {
        let aig = mixed_design();
        let prepared = Pipeline::standard(PassOpts { keep_probes: false }).run(&aig, &[]);
        assert!(prepared.aig.validate().is_ok());
        assert_eq!(prepared.stats.passes.len(), 4);
        assert!(prepared.stats.ands_removed() > 0);
        assert!(prepared.stats.latches_removed() > 0);
        // Every surviving latch's back-map resolves to the same name.
        for (new, l) in prepared.aig.latches().iter().enumerate() {
            let old = prepared.reconstruction.original_latch(new as u32).unwrap();
            assert_eq!(aig.latches()[old as usize].name, l.name);
        }
        for (new, i) in prepared.aig.inputs().iter().enumerate() {
            let old = prepared.reconstruction.original_input(new as u32).unwrap();
            assert_eq!(aig.inputs()[old as usize].name, i.name);
        }
    }

    #[test]
    fn extra_roots_survive_every_pass() {
        let mut d = Design::new("t");
        let a = d.reg("a", 2, Init::Zero);
        let b = d.reg("b", 2, Init::Zero);
        let an = d.add_const(&a.q(), 1);
        let bn = d.add_const(&b.q(), 1);
        d.set_next(&a, an);
        d.set_next(&b, bn);
        // Property only mentions `a`; the candidate mentions both.
        let hit = d.eq_const(&a.q(), 3);
        d.assert_always("hit", hit);
        let cand = d.eq(&a.q(), &b.q());
        let aig = d.finish();
        let prepared = Pipeline::standard(PassOpts { keep_probes: false }).run(&aig, &[cand]);
        assert_eq!(prepared.root_images.len(), 1);
        // `b` only survives because the candidate root kept it alive.
        assert_eq!(prepared.aig.num_latches(), 4);
        assert!(!prepared.root_images[0].is_const());
    }

    #[test]
    fn constant_roots_keep_their_named_bads() {
        let mut d = Design::new("t");
        let r = d.reg("stuck", 1, Init::Zero);
        d.hold(&r);
        // `assert_always(ok)` registers `!ok` as the bad bit, so the bad
        // here is the stuck latch output itself — constant false.
        d.assert_always("never", r.q().bit(0).not());
        let aig = d.finish();
        let prepared = Pipeline::standard(PassOpts::default()).run(&aig, &[]);
        // The bad folded to constant false but is still present by name.
        assert_eq!(prepared.aig.bads().len(), 1);
        assert_eq!(prepared.aig.bads()[0].name, "never");
        assert_eq!(prepared.aig.bads()[0].bit, Bit::FALSE);
        assert_eq!(prepared.aig.num_latches(), 0);
    }

    #[test]
    fn restored_constants_name_swept_latches() {
        let aig = mixed_design();
        let prepared = Pipeline::standard(PassOpts { keep_probes: false }).run(&aig, &[]);
        let restored = prepared.reconstruction.restored_constants(&aig);
        // Exactly the stuck latch is restored (at its reset value 0);
        // COI/dead-latch-dropped latches have no image and stay absent.
        assert_eq!(restored.len(), 1);
        let (idx, val) = restored[0];
        assert!(aig.latches()[idx as usize].name.starts_with("stuck"));
        assert!(!val);
        // Identity reconstruction restores nothing.
        assert!(Reconstruction::identity(&aig)
            .restored_constants(&aig)
            .is_empty());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let aig = mixed_design();
        let prepared = Pipeline::new(PassOpts::default()).run(&aig, &[]);
        assert_eq!(prepared.aig.num_nodes(), aig.num_nodes());
        assert!(prepared.stats.passes.is_empty());
        assert_eq!(prepared.reconstruction.original_latch(0), Some(0));
    }
}

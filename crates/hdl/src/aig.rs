//! Bit-level netlist: an and-inverter graph (AIG) with latches.
//!
//! Every combinational function is expressed with two-input AND gates and
//! complemented edges; sequential state lives in latches with a declared
//! reset behaviour ([`Init`]). Verification intent is attached directly to
//! the netlist: `assume` bits constrain every cycle (SVA `assume`),
//! `bad` bits flag property violations (negated SVA `assert`), mirroring
//! the AIGER 1.9 convention used by hardware model checkers.
//!
//! Nodes are hash-consed, so structurally equal expressions share one node,
//! and simple constant/absorption rules fold at construction time.

use std::collections::HashMap;
use std::fmt;

/// A literal in the netlist: a node index plus a complement flag.
///
/// `Bit::FALSE` and `Bit::TRUE` are the two polarities of the constant node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bit(u32);

impl Bit {
    /// Constant false.
    pub const FALSE: Bit = Bit(0);
    /// Constant true.
    pub const TRUE: Bit = Bit(1);

    #[inline]
    fn new(node: u32, complement: bool) -> Bit {
        Bit((node << 1) | complement as u32)
    }

    /// Index of the underlying node.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// The complemented edge (logical NOT) — free in an AIG.
    /// (Also available as the `!` operator; the method form reads better
    /// in netlist-building chains.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Bit {
        Bit(self.0 ^ 1)
    }

    /// Packed representation, for use as a map key or dense index.
    #[inline]
    pub fn packed(self) -> u32 {
        self.0
    }

    /// Rebuilds a bit from [`Bit::packed`].
    #[inline]
    pub fn from_packed(raw: u32) -> Bit {
        Bit(raw)
    }

    /// True if this is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for Bit {
    type Output = Bit;
    #[inline]
    fn not(self) -> Bit {
        Bit(self.0 ^ 1)
    }
}

impl fmt::Debug for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Bit::FALSE {
            write!(f, "0")
        } else if *self == Bit::TRUE {
            write!(f, "1")
        } else if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// Reset behaviour of a latch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Init {
    /// Starts at 0.
    Zero,
    /// Starts at 1.
    One,
    /// Unconstrained initial value — the model checker explores all of them.
    /// This is how "the instruction memory holds an arbitrary program"
    /// (paper §6, step 2) is expressed.
    Symbolic,
}

/// The kind of a netlist node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Node {
    /// The constant-false node (index 0 only).
    Const,
    /// Primary input; payload is the input index.
    Input(u32),
    /// Latch output; payload is the latch index.
    Latch(u32),
    /// Two-input AND gate.
    And(Bit, Bit),
}

/// Metadata for one latch.
#[derive(Clone, Debug)]
pub struct LatchInfo {
    pub name: String,
    pub init: Init,
    /// Next-state function; `None` until [`Aig::set_next`] is called.
    pub next: Option<Bit>,
    /// The node that reads this latch.
    pub output: Bit,
}

/// Metadata for one primary input.
#[derive(Clone, Debug)]
pub struct InputInfo {
    pub name: String,
    pub output: Bit,
}

/// A named property: `bad` asserted means the property is violated.
#[derive(Clone, Debug)]
pub struct BadInfo {
    pub name: String,
    pub bit: Bit,
}

/// A named observation point for waveforms/traces (not part of the
/// verification semantics).
#[derive(Clone, Debug)]
pub struct ProbeInfo {
    pub name: String,
    pub bits: Vec<Bit>,
}

/// The and-inverter netlist. See the module docs.
#[derive(Default, Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    latches: Vec<LatchInfo>,
    inputs: Vec<InputInfo>,
    assumes: Vec<Bit>,
    bads: Vec<BadInfo>,
    probes: Vec<ProbeInfo>,
    strash: HashMap<(Bit, Bit), u32>,
}

impl Aig {
    /// Creates an empty netlist (containing only the constant node).
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            ..Aig::default()
        }
    }

    /// Total node count (constant + inputs + latches + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The node behind a bit.
    #[inline]
    pub fn node(&self, b: Bit) -> Node {
        self.nodes[b.node() as usize]
    }

    pub fn latches(&self) -> &[LatchInfo] {
        &self.latches
    }

    pub fn inputs(&self) -> &[InputInfo] {
        &self.inputs
    }

    pub fn assumes(&self) -> &[Bit] {
        &self.assumes
    }

    pub fn bads(&self) -> &[BadInfo] {
        &self.bads
    }

    pub fn probes(&self) -> &[ProbeInfo] {
        &self.probes
    }

    /// Creates a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> Bit {
        let node = self.nodes.len() as u32;
        let idx = self.inputs.len() as u32;
        self.nodes.push(Node::Input(idx));
        let out = Bit::new(node, false);
        self.inputs.push(InputInfo {
            name: name.into(),
            output: out,
        });
        out
    }

    /// Creates a latch with the given reset behaviour. Its next-state
    /// function must be provided later via [`Aig::set_next`].
    pub fn latch(&mut self, name: impl Into<String>, init: Init) -> Bit {
        let node = self.nodes.len() as u32;
        let idx = self.latches.len() as u32;
        self.nodes.push(Node::Latch(idx));
        let out = Bit::new(node, false);
        self.latches.push(LatchInfo {
            name: name.into(),
            init,
            next: None,
            output: out,
        });
        out
    }

    /// Sets the next-state function of `latch` (a bit returned by
    /// [`Aig::latch`], non-complemented).
    ///
    /// # Panics
    /// Panics if `latch` is not an uncomplemented latch output, or if the
    /// next-state function was already set.
    pub fn set_next(&mut self, latch: Bit, next: Bit) {
        assert!(!latch.is_complemented(), "latch handle must be positive");
        let Node::Latch(idx) = self.node(latch) else {
            panic!("set_next target is not a latch: {latch:?}");
        };
        let slot = &mut self.latches[idx as usize].next;
        assert!(slot.is_none(), "latch next-state set twice");
        *slot = Some(next);
    }

    /// Latch index of a latch-output bit, if it is one.
    pub fn latch_index(&self, b: Bit) -> Option<u32> {
        match self.node(b) {
            Node::Latch(i) if !b.is_complemented() => Some(i),
            _ => None,
        }
    }

    /// Two-input AND with constant folding and structural hashing.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        // Constant / trivial cases.
        if a == Bit::FALSE || b == Bit::FALSE || a == b.not() {
            return Bit::FALSE;
        }
        if a == Bit::TRUE {
            return b;
        }
        if b == Bit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.packed() <= b.packed() {
            (a, b)
        } else {
            (b, a)
        };
        if let Some(&n) = self.strash.get(&(x, y)) {
            return Bit::new(n, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x, y), node);
        Bit::new(node, false)
    }

    /// Logical OR, via De Morgan.
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        self.and(a.not(), b.not()).not()
    }

    /// Logical XOR (two AND gates).
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        // a^b = !(a&b) & !( !a & !b )
        let both = self.and(a, b);
        let neither = self.and(a.not(), b.not());
        self.and(both.not(), neither.not())
    }

    /// Equivalence (XNOR).
    pub fn xnor(&mut self, a: Bit, b: Bit) -> Bit {
        self.xor(a, b).not()
    }

    /// `if sel { t } else { f }`.
    pub fn mux(&mut self, sel: Bit, t: Bit, f: Bit) -> Bit {
        if t == f {
            return t;
        }
        let a = self.and(sel, t);
        let b = self.and(sel.not(), f);
        self.or(a, b)
    }

    /// `a -> b`.
    pub fn implies(&mut self, a: Bit, b: Bit) -> Bit {
        self.and(a, b.not()).not()
    }

    /// AND over many bits.
    pub fn and_many(&mut self, bits: &[Bit]) -> Bit {
        let mut acc = Bit::TRUE;
        for &b in bits {
            acc = self.and(acc, b);
        }
        acc
    }

    /// OR over many bits.
    pub fn or_many(&mut self, bits: &[Bit]) -> Bit {
        let mut acc = Bit::FALSE;
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    /// Adds an environment constraint that must hold at every cycle.
    pub fn add_assume(&mut self, b: Bit) {
        self.assumes.push(b);
    }

    /// Adds a named bad-state property (`b` true = property violated).
    pub fn add_bad(&mut self, name: impl Into<String>, b: Bit) {
        self.bads.push(BadInfo {
            name: name.into(),
            bit: b,
        });
    }

    /// Registers a named observation point for trace rendering.
    pub fn add_probe(&mut self, name: impl Into<String>, bits: Vec<Bit>) {
        self.probes.push(ProbeInfo {
            name: name.into(),
            bits,
        });
    }

    /// Checks that every latch has a next-state function.
    ///
    /// # Errors
    /// Returns the names of unsealed latches.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let missing: Vec<String> = self
            .latches
            .iter()
            .filter(|l| l.next.is_none())
            .map(|l| l.name.clone())
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(missing)
        }
    }

    /// Computes the cone of influence of the verification roots (assumes and
    /// bad bits, plus probes when `keep_probes`): the set of latches and
    /// inputs that can affect them, transitively through next-state
    /// functions. Returns a mark per node.
    pub fn cone_of_influence(&self, keep_probes: bool) -> CoiMarks {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        let push = |stack: &mut Vec<u32>, marked: &mut Vec<bool>, b: Bit| {
            let n = b.node();
            if !marked[n as usize] {
                marked[n as usize] = true;
                stack.push(n);
            }
        };
        for &a in &self.assumes {
            push(&mut stack, &mut marked, a);
        }
        for b in &self.bads {
            push(&mut stack, &mut marked, b.bit);
        }
        if keep_probes {
            for p in &self.probes {
                for &b in &p.bits {
                    push(&mut stack, &mut marked, b);
                }
            }
        }
        while let Some(n) = stack.pop() {
            match self.nodes[n as usize] {
                Node::Const | Node::Input(_) => {}
                Node::Latch(i) => {
                    if let Some(next) = self.latches[i as usize].next {
                        push(&mut stack, &mut marked, next);
                    }
                }
                Node::And(a, b) => {
                    push(&mut stack, &mut marked, a);
                    push(&mut stack, &mut marked, b);
                }
            }
        }
        CoiMarks { marked }
    }

    /// Per-name-prefix statistics, used for the Table 1 inventory.
    pub fn stats_by_prefix(&self, prefixes: &[&str]) -> Vec<PrefixStats> {
        prefixes
            .iter()
            .map(|p| {
                let latches = self
                    .latches
                    .iter()
                    .filter(|l| l.name.starts_with(p))
                    .count();
                let inputs = self.inputs.iter().filter(|i| i.name.starts_with(p)).count();
                PrefixStats {
                    prefix: p.to_string(),
                    latches,
                    inputs,
                }
            })
            .collect()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ nodes: {}, ands: {}, latches: {}, inputs: {}, assumes: {}, bads: {} }}",
            self.num_nodes(),
            self.num_ands(),
            self.num_latches(),
            self.num_inputs(),
            self.assumes.len(),
            self.bads.len()
        )
    }
}

/// Result of [`Aig::cone_of_influence`].
#[derive(Clone, Debug)]
pub struct CoiMarks {
    marked: Vec<bool>,
}

impl CoiMarks {
    /// Whether the node behind `b` is in the cone.
    #[inline]
    pub fn contains(&self, b: Bit) -> bool {
        self.marked[b.node() as usize]
    }

    /// Number of marked nodes.
    pub fn len(&self) -> usize {
        self.marked.iter().filter(|&&m| m).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Latch/input counts under a name prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixStats {
    pub prefix: String,
    pub latches: usize,
    pub inputs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let x = g.input("x");
        assert_eq!(g.and(Bit::FALSE, x), Bit::FALSE);
        assert_eq!(g.and(Bit::TRUE, x), x);
        assert_eq!(g.and(x, x), x);
        assert_eq!(g.and(x, x.not()), Bit::FALSE);
        assert_eq!(g.or(x, Bit::TRUE), Bit::TRUE);
        assert_eq!(g.xor(x, Bit::FALSE), x);
        assert_eq!(g.xor(x, Bit::TRUE), x.not());
        assert_eq!(g.mux(x, Bit::TRUE, Bit::TRUE), Bit::TRUE);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let x = g.input("x");
        let y = g.input("y");
        let a = g.and(x, y);
        let b = g.and(y, x);
        assert_eq!(a, b);
        let before = g.num_nodes();
        let _ = g.and(x, y);
        assert_eq!(g.num_nodes(), before);
    }

    #[test]
    fn latch_roundtrip() {
        let mut g = Aig::new();
        let l = g.latch("r", Init::Zero);
        assert!(g.validate().is_err());
        let n = g.input("in");
        g.set_next(l, n);
        assert!(g.validate().is_ok());
        assert_eq!(g.latch_index(l), Some(0));
        assert_eq!(g.latch_index(l.not()), None);
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_next_panics() {
        let mut g = Aig::new();
        let l = g.latch("r", Init::Zero);
        g.set_next(l, Bit::FALSE);
        g.set_next(l, Bit::TRUE);
    }

    #[test]
    fn coi_excludes_unrelated_logic() {
        let mut g = Aig::new();
        let a = g.latch("used", Init::Zero);
        let b = g.latch("unused", Init::Zero);
        let x = g.input("x");
        let y = g.input("y");
        let an = g.and(a, x);
        g.set_next(a, an);
        let bn = g.and(b, y);
        g.set_next(b, bn);
        g.add_bad("p", a);
        let coi = g.cone_of_influence(false);
        assert!(coi.contains(a));
        assert!(coi.contains(x));
        assert!(!coi.contains(b));
        assert!(!coi.contains(y));
    }

    #[test]
    fn prefix_stats() {
        let mut g = Aig::new();
        let l1 = g.latch("cpu1.pc", Init::Zero);
        let l2 = g.latch("cpu2.pc", Init::Zero);
        let l3 = g.latch("shadow.phase", Init::Zero);
        for l in [l1, l2, l3] {
            g.set_next(l, l);
        }
        let stats = g.stats_by_prefix(&["cpu1.", "cpu2.", "shadow."]);
        assert_eq!(stats[0].latches, 1);
        assert_eq!(stats[2].prefix, "shadow.");
        assert_eq!(stats[2].latches, 1);
    }

    #[test]
    fn xor_truth_table_via_consts() {
        let mut g = Aig::new();
        assert_eq!(g.xor(Bit::FALSE, Bit::FALSE), Bit::FALSE);
        assert_eq!(g.xor(Bit::TRUE, Bit::FALSE), Bit::TRUE);
        assert_eq!(g.xor(Bit::TRUE, Bit::TRUE), Bit::FALSE);
        assert_eq!(g.xnor(Bit::TRUE, Bit::TRUE), Bit::TRUE);
    }
}

//! Multi-bit words over the AIG.
//!
//! A [`Word`] is an ordered vector of [`Bit`]s, least-significant first.
//! All arithmetic is unsigned and width-checked; operations live on
//! [`Design`](crate::Design) because they allocate gates.

use crate::aig::Bit;

/// A fixed-width bundle of netlist bits (LSB first).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Word {
    bits: Vec<Bit>,
}

impl Word {
    /// Builds a word from bits (LSB first).
    pub fn from_bits(bits: Vec<Bit>) -> Word {
        Word { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The `i`-th bit (0 = LSB).
    ///
    /// # Panics
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> Bit {
        self.bits[i]
    }

    /// All bits, LSB first.
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// A single-bit word.
    pub fn from_bit(b: Bit) -> Word {
        Word { bits: vec![b] }
    }

    /// Sub-word `[lo, hi)` (LSB-relative, half-open).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or empty.
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        assert!(lo < hi && hi <= self.bits.len(), "bad slice {lo}..{hi}");
        Word {
            bits: self.bits[lo..hi].to_vec(),
        }
    }

    /// Concatenates `self` (low part) with `high`.
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word { bits }
    }
}

impl From<Bit> for Word {
    fn from(b: Bit) -> Word {
        Word::from_bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_concat() {
        let bits: Vec<Bit> = (0..4).map(|_| Bit::FALSE).collect();
        let w = Word::from_bits(bits);
        assert_eq!(w.width(), 4);
        assert_eq!(w.slice(1, 3).width(), 2);
        assert_eq!(w.concat(&Word::from_bit(Bit::TRUE)).width(), 5);
    }

    #[test]
    #[should_panic(expected = "bad slice")]
    fn slice_out_of_range() {
        let w = Word::from_bits(vec![Bit::FALSE]);
        let _ = w.slice(0, 2);
    }
}

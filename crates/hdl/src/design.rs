//! The word-level design builder.
//!
//! [`Design`] wraps an [`Aig`] with registers, memories, hierarchical
//! naming, and the word-level operator library. Hardware generators (the
//! processors in `csl-cpu`, the shadow logic in `csl-core`) are plain Rust
//! functions over `&mut Design`; [`Design::finish`] seals every register
//! and returns the underlying netlist for the model checker.
//!
//! # Example: a saturating counter with an enable
//!
//! ```
//! use csl_hdl::{Design, Init};
//!
//! let mut d = Design::new("counter");
//! let en = d.input_bit("en");
//! let count = d.reg("count", 4, Init::Zero);
//! let one = d.lit(4, 1);
//! let next = d.add(&count.q(), &one);
//! let held = d.mux(en, &next, &count.q());
//! d.set_next(&count, held);
//! let aig = d.finish();
//! assert_eq!(aig.num_latches(), 4);
//! ```

use crate::aig::{Aig, Bit, Init};
use crate::word::Word;

/// Handle to a register created by [`Design::reg`].
#[derive(Clone, Debug)]
pub struct Reg {
    index: usize,
    q: Word,
}

impl Reg {
    /// The register's current-state output word.
    pub fn q(&self) -> Word {
        self.q.clone()
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.q.width()
    }
}

struct RegSlot {
    name: String,
    q: Word,
    next: Option<Word>,
}

/// Opaque marker for [`Design::reg_mark`] / [`Design::gate_regs_since`].
#[derive(Clone, Copy, Debug)]
pub struct RegMark(usize);

/// Word-level circuit builder over an [`Aig`]. See the module docs.
pub struct Design {
    aig: Aig,
    name: String,
    scopes: Vec<String>,
    regs: Vec<RegSlot>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Design {
        Design {
            aig: Aig::new(),
            name: name.into(),
            scopes: Vec::new(),
            regs: Vec::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read access to the underlying netlist (e.g. for statistics).
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Enters a naming scope: subsequent registers/inputs are prefixed
    /// `scope.`.
    pub fn push_scope(&mut self, s: impl Into<String>) {
        self.scopes.push(s.into());
    }

    /// Leaves the innermost naming scope.
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        self.scopes.pop().expect("pop_scope with no open scope");
    }

    fn qualify(&self, name: &str) -> String {
        if self.scopes.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scopes.join("."), name)
        }
    }

    // ----- inputs, constants, registers ---------------------------------

    /// A 1-bit primary input.
    pub fn input_bit(&mut self, name: &str) -> Bit {
        let n = self.qualify(name);
        self.aig.input(n)
    }

    /// A multi-bit primary input.
    pub fn input(&mut self, name: &str, width: usize) -> Word {
        let n = self.qualify(name);
        Word::from_bits(
            (0..width)
                .map(|i| self.aig.input(format!("{n}[{i}]")))
                .collect(),
        )
    }

    /// A constant word.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn lit(&mut self, width: usize, value: u64) -> Word {
        assert!(
            width == 64 || value < (1u64 << width),
            "literal {value} does not fit in {width} bits"
        );
        Word::from_bits(
            (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        Bit::TRUE
                    } else {
                        Bit::FALSE
                    }
                })
                .collect(),
        )
    }

    /// A register of `width` bits; all bits share the same [`Init`].
    pub fn reg(&mut self, name: &str, width: usize, init: Init) -> Reg {
        let n = self.qualify(name);
        let q = Word::from_bits(
            (0..width)
                .map(|i| self.aig.latch(format!("{n}[{i}]"), init))
                .collect(),
        );
        let index = self.regs.len();
        self.regs.push(RegSlot {
            name: n,
            q: q.clone(),
            next: None,
        });
        Reg { index, q }
    }

    /// A register with a concrete (non-zero) reset value.
    pub fn reg_init_value(&mut self, name: &str, width: usize, value: u64) -> Reg {
        let n = self.qualify(name);
        let q = Word::from_bits(
            (0..width)
                .map(|i| {
                    let init = if (value >> i) & 1 == 1 {
                        Init::One
                    } else {
                        Init::Zero
                    };
                    self.aig.latch(format!("{n}[{i}]"), init)
                })
                .collect(),
        );
        let index = self.regs.len();
        self.regs.push(RegSlot {
            name: n,
            q: q.clone(),
            next: None,
        });
        Reg { index, q }
    }

    /// Sets the next-state of `reg`.
    ///
    /// # Panics
    /// Panics on width mismatch or if the next-state was already set.
    pub fn set_next(&mut self, reg: &Reg, next: Word) {
        let slot = &mut self.regs[reg.index];
        assert_eq!(
            slot.q.width(),
            next.width(),
            "width mismatch setting next of {}",
            slot.name
        );
        assert!(slot.next.is_none(), "next of {} set twice", slot.name);
        slot.next = Some(next);
    }

    /// Makes `reg` hold its value forever (a symbolic constant, e.g. a
    /// read-only memory).
    pub fn hold(&mut self, reg: &Reg) {
        self.set_next(reg, reg.q());
    }

    /// Current position in the register list; pair with
    /// [`Design::gate_regs_since`].
    pub fn reg_mark(&self) -> RegMark {
        RegMark(self.regs.len())
    }

    /// Wraps the next-state of every register created since `mark` in
    /// `mux(enable, next, q)` — the "clock gating" used by the shadow
    /// logic's pause mechanism (paper §5.3, Listing 1 lines 1-2).
    ///
    /// # Panics
    /// Panics if any such register has no next-state yet.
    pub fn gate_regs_since(&mut self, mark: RegMark, enable: Bit) {
        for idx in mark.0..self.regs.len() {
            let slot = &mut self.regs[idx];
            let next = slot
                .next
                .take()
                .unwrap_or_else(|| panic!("register {} has no next-state to gate", slot.name));
            let q = slot.q.clone();
            // Inline mux to avoid borrow conflicts with self.aig.
            let gated = Word::from_bits(
                next.bits()
                    .iter()
                    .zip(q.bits())
                    .map(|(&n, &c)| self.aig.mux(enable, n, c))
                    .collect(),
            );
            self.regs[idx].next = Some(gated);
        }
    }

    /// Seals all registers into the netlist and returns it.
    ///
    /// # Panics
    /// Panics if any register lacks a next-state function.
    pub fn finish(mut self) -> Aig {
        for slot in &self.regs {
            let next = slot
                .next
                .as_ref()
                .unwrap_or_else(|| panic!("register {} has no next-state", slot.name));
            for (qb, nb) in slot.q.bits().iter().zip(next.bits()) {
                self.aig.set_next(*qb, *nb);
            }
        }
        self.aig
            .validate()
            .unwrap_or_else(|names| panic!("unsealed latches: {names:?}"));
        self.aig
    }

    // ----- verification intent -------------------------------------------

    /// Adds a per-cycle environment constraint (SVA `assume`).
    pub fn assume(&mut self, b: Bit) {
        self.aig.add_assume(b);
    }

    /// Adds a property that must hold every cycle (SVA `assert`):
    /// `ok` false at any reachable cycle is a violation.
    pub fn assert_always(&mut self, name: &str, ok: Bit) {
        let n = self.qualify(name);
        self.aig.add_bad(n, ok.not());
    }

    /// Registers a named waveform probe.
    pub fn probe(&mut self, name: &str, w: &Word) {
        let n = self.qualify(name);
        self.aig.add_probe(n, w.bits().to_vec());
    }

    // ----- bit operators ---------------------------------------------------

    pub fn and_bit(&mut self, a: Bit, b: Bit) -> Bit {
        self.aig.and(a, b)
    }

    pub fn or_bit(&mut self, a: Bit, b: Bit) -> Bit {
        self.aig.or(a, b)
    }

    pub fn xor_bit(&mut self, a: Bit, b: Bit) -> Bit {
        self.aig.xor(a, b)
    }

    pub fn mux_bit(&mut self, sel: Bit, t: Bit, f: Bit) -> Bit {
        self.aig.mux(sel, t, f)
    }

    pub fn implies_bit(&mut self, a: Bit, b: Bit) -> Bit {
        self.aig.implies(a, b)
    }

    pub fn all(&mut self, bits: &[Bit]) -> Bit {
        self.aig.and_many(bits)
    }

    pub fn any(&mut self, bits: &[Bit]) -> Bit {
        self.aig.or_many(bits)
    }

    // ----- word operators --------------------------------------------------

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Word) -> Word {
        Word::from_bits(a.bits().iter().map(|b| b.not()).collect())
    }

    fn zip_map(&mut self, a: &Word, b: &Word, f: impl Fn(&mut Aig, Bit, Bit) -> Bit) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        Word::from_bits(
            a.bits()
                .iter()
                .zip(b.bits())
                .map(|(&x, &y)| f(&mut self.aig, x, y))
                .collect(),
        )
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_map(a, b, Aig::and)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_map(a, b, Aig::or)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_map(a, b, Aig::xor)
    }

    /// Addition modulo `2^width` (ripple carry).
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.add_carry(a, b, Bit::FALSE).0
    }

    /// Addition with carry-in; returns `(sum, carry_out)`.
    pub fn add_carry(&mut self, a: &Word, b: &Word, mut carry: Bit) -> (Word, Bit) {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let xy = self.aig.xor(x, y);
            bits.push(self.aig.xor(xy, carry));
            let c1 = self.aig.and(x, y);
            let c2 = self.aig.and(xy, carry);
            carry = self.aig.or(c1, c2);
        }
        (Word::from_bits(bits), carry)
    }

    /// Subtraction modulo `2^width`.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        let nb = self.not(b);
        self.add_carry(a, &nb, Bit::TRUE).0
    }

    /// `a + constant`.
    pub fn add_const(&mut self, a: &Word, k: u64) -> Word {
        let kw = self.lit(a.width(), k & mask(a.width()));
        self.add(a, &kw)
    }

    /// Unsigned multiply, truncated to `a.width()` bits (shift-and-add).
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        let w = a.width();
        let mut acc = self.lit(w, 0);
        for i in 0..w {
            let shifted = self.shl_const(a, i);
            let gated = Word::from_bits(
                shifted
                    .bits()
                    .iter()
                    .map(|&x| self.aig.and(x, b.bit(i)))
                    .collect(),
            );
            acc = self.add(&acc, &gated);
        }
        acc
    }

    /// Equality of two words.
    pub fn eq(&mut self, a: &Word, b: &Word) -> Bit {
        let xors = self.xor(a, b);
        let diff = self.aig.or_many(xors.bits());
        diff.not()
    }

    /// Equality with a constant.
    pub fn eq_const(&mut self, a: &Word, k: u64) -> Bit {
        let kw = self.lit(a.width(), k);
        self.eq(a, &kw)
    }

    /// Inequality of two words.
    pub fn ne(&mut self, a: &Word, b: &Word) -> Bit {
        self.eq(a, b).not()
    }

    /// Unsigned `a < b`.
    pub fn ult(&mut self, a: &Word, b: &Word) -> Bit {
        // a < b  <=>  carry-out of a + !b + 1 is 0
        let nb = self.not(b);
        let (_, carry) = self.add_carry(a, &nb, Bit::TRUE);
        carry.not()
    }

    /// Unsigned `a <= b`.
    pub fn ule(&mut self, a: &Word, b: &Word) -> Bit {
        self.ult(b, a).not()
    }

    /// Word-level mux: `if sel { t } else { f }`.
    pub fn mux(&mut self, sel: Bit, t: &Word, f: &Word) -> Word {
        assert_eq!(t.width(), f.width(), "mux width mismatch");
        Word::from_bits(
            t.bits()
                .iter()
                .zip(f.bits())
                .map(|(&x, &y)| self.aig.mux(sel, x, y))
                .collect(),
        )
    }

    /// True iff the word is all-zero.
    pub fn is_zero(&mut self, a: &Word) -> Bit {
        self.aig.or_many(a.bits()).not()
    }

    /// OR-reduction of all bits.
    pub fn reduce_or(&mut self, a: &Word) -> Bit {
        self.aig.or_many(a.bits())
    }

    /// AND-reduction of all bits.
    pub fn reduce_and(&mut self, a: &Word) -> Bit {
        self.aig.and_many(a.bits())
    }

    /// Zero-extends (or truncates) to `width`.
    pub fn resize(&mut self, a: &Word, width: usize) -> Word {
        let mut bits: Vec<Bit> = a.bits().iter().copied().take(width).collect();
        while bits.len() < width {
            bits.push(Bit::FALSE);
        }
        Word::from_bits(bits)
    }

    /// Left shift by a constant (zero fill).
    pub fn shl_const(&mut self, a: &Word, k: usize) -> Word {
        let w = a.width();
        let mut bits = vec![Bit::FALSE; k.min(w)];
        bits.extend(a.bits().iter().copied().take(w.saturating_sub(k)));
        Word::from_bits(bits)
    }

    /// Right shift by a constant (zero fill).
    pub fn shr_const(&mut self, a: &Word, k: usize) -> Word {
        let w = a.width();
        let mut bits: Vec<Bit> = a.bits().iter().copied().skip(k.min(w)).collect();
        while bits.len() < w {
            bits.push(Bit::FALSE);
        }
        Word::from_bits(bits)
    }

    /// Selects `options[idx]` with a balanced mux tree. `options.len()` must
    /// be a power of two covering the index width, or the index is treated
    /// modulo `options.len()` (which must then be a power of two).
    ///
    /// # Panics
    /// Panics if `options` is empty or not a power of two in length.
    pub fn select(&mut self, idx: &Word, options: &[Word]) -> Word {
        assert!(!options.is_empty(), "select with no options");
        assert!(
            options.len().is_power_of_two(),
            "select requires a power-of-two option count"
        );
        let need_bits = options.len().trailing_zeros() as usize;
        let mut layer: Vec<Word> = options.to_vec();
        for level in 0..need_bits {
            let sel = idx.bit(level.min(idx.width() - 1));
            let sel = if level < idx.width() { sel } else { Bit::FALSE };
            layer = layer
                .chunks(2)
                .map(|pair| self.mux(sel, &pair[1], &pair[0]))
                .collect();
        }
        layer.pop().unwrap()
    }

    /// One-hot decode of `idx` into `n` bits (`out[i] = (idx == i)`).
    pub fn decode(&mut self, idx: &Word, n: usize) -> Vec<Bit> {
        (0..n).map(|i| self.eq_const(idx, i as u64)).collect()
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_bits() {
        let mut d = Design::new("t");
        let w = d.lit(4, 0b1010);
        assert_eq!(w.bit(0), Bit::FALSE);
        assert_eq!(w.bit(1), Bit::TRUE);
        assert_eq!(w.bit(3), Bit::TRUE);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn literal_overflow() {
        let mut d = Design::new("t");
        let _ = d.lit(3, 8);
    }

    #[test]
    fn constant_arithmetic_folds() {
        let mut d = Design::new("t");
        let a = d.lit(8, 37);
        let b = d.lit(8, 205);
        let s = d.add(&a, &b);
        let expect = d.lit(8, (37 + 205) & 0xff);
        assert_eq!(s, expect);
        let df = d.sub(&a, &b);
        let expect = d.lit(8, (37u64.wrapping_sub(205)) & 0xff);
        assert_eq!(df, expect);
        let p = d.mul(&a, &b);
        let expect = d.lit(8, (37 * 205) & 0xff);
        assert_eq!(p, expect);
        assert_eq!(d.eq(&a, &b), Bit::FALSE);
        assert_eq!(d.ult(&a, &b), Bit::TRUE);
        assert_eq!(d.ule(&b, &a), Bit::FALSE);
    }

    #[test]
    fn select_folds_on_constants() {
        let mut d = Design::new("t");
        let options: Vec<Word> = (0..4).map(|i| d.lit(8, i * 11)).collect();
        let idx = d.lit(2, 3);
        let picked = d.select(&idx, &options);
        let expect = d.lit(8, 33);
        assert_eq!(picked, expect);
    }

    #[test]
    fn decode_onehot() {
        let mut d = Design::new("t");
        let idx = d.lit(2, 2);
        let oh = d.decode(&idx, 4);
        assert_eq!(oh, vec![Bit::FALSE, Bit::FALSE, Bit::TRUE, Bit::FALSE]);
    }

    #[test]
    fn register_flow() {
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let next = d.add_const(&r.q(), 1);
        d.set_next(&r, next);
        let aig = d.finish();
        assert_eq!(aig.num_latches(), 3);
        assert!(aig.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "no next-state")]
    fn unsealed_register_panics() {
        let mut d = Design::new("t");
        let _ = d.reg("r", 2, Init::Zero);
        let _ = d.finish();
    }

    #[test]
    fn scoping_prefixes_names() {
        let mut d = Design::new("t");
        d.push_scope("cpu1");
        d.push_scope("rob");
        let r = d.reg("head", 2, Init::Zero);
        d.pop_scope();
        d.pop_scope();
        d.hold(&r);
        let aig = d.finish();
        assert!(aig.latches()[0].name.starts_with("cpu1.rob.head"));
    }

    #[test]
    fn gate_regs_holds_when_disabled() {
        let mut d = Design::new("t");
        let en = d.input_bit("en");
        let mark = d.reg_mark();
        let r = d.reg("r", 2, Init::Zero);
        let next = d.add_const(&r.q(), 1);
        d.set_next(&r, next);
        d.gate_regs_since(mark, en);
        let aig = d.finish();
        // The next-state function must depend on the enable input.
        let coi_roots: Vec<String> = aig.latches().iter().map(|l| l.name.clone()).collect();
        assert_eq!(coi_roots.len(), 2);
        assert!(aig.num_ands() > 0);
    }

    #[test]
    fn shifts() {
        let mut d = Design::new("t");
        let a = d.lit(8, 0b0110_1001);
        assert_eq!(d.shl_const(&a, 2), d.lit(8, 0b1010_0100));
        assert_eq!(d.shr_const(&a, 3), d.lit(8, 0b0000_1101));
        assert_eq!(d.shl_const(&a, 9), d.lit(8, 0));
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut d = Design::new("t");
        let a = d.lit(4, 0b1011);
        assert_eq!(d.resize(&a, 6), d.lit(6, 0b1011));
        assert_eq!(d.resize(&a, 2), d.lit(2, 0b11));
    }
}

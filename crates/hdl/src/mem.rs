//! Register-file / memory arrays.
//!
//! A [`MemArray`] is a bank of word registers with mux-tree reads and
//! decoded write ports. Writes are queued on the handle and applied when
//! the array is sealed, so multiple write ports (e.g. a 2-wide commit)
//! compose with well-defined priority: **later queued writes win**.
//!
//! Read ports observe the *current* register values (read-old semantics),
//! matching a flip-flop based register file.

use crate::aig::{Bit, Init};
use crate::design::{Design, Reg};
use crate::word::Word;

/// A bank of `n` registers, each `width` bits wide.
#[derive(Debug)]
pub struct MemArray {
    name: String,
    words: Vec<Reg>,
    width: usize,
    writes: Vec<QueuedWrite>,
    sealed: bool,
}

#[derive(Debug)]
struct QueuedWrite {
    enable: Bit,
    addr: Word,
    data: Word,
}

impl MemArray {
    /// Creates the array. `n` must be a power of two (so an address word
    /// indexes it exactly).
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(d: &mut Design, name: &str, n: usize, width: usize, init: Init) -> MemArray {
        assert!(n.is_power_of_two(), "memory size must be a power of two");
        let words = (0..n)
            .map(|i| d.reg(&format!("{name}[{i}]"), width, init))
            .collect();
        MemArray {
            name: name.to_string(),
            words,
            width,
            writes: Vec::new(),
            sealed: false,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Address width needed to index the array.
    pub fn addr_width(&self) -> usize {
        self.words.len().trailing_zeros() as usize
    }

    /// Direct access to word `i`'s current value (for initial-state
    /// constraints and debugging).
    pub fn word(&self, i: usize) -> Word {
        self.words[i].q()
    }

    /// Combinational read port. `addr` wider than needed is truncated
    /// (memory wraps), matching power-of-two address decoding in hardware.
    pub fn read(&self, d: &mut Design, addr: &Word) -> Word {
        let aw = self.addr_width().max(1);
        let idx = d.resize(addr, aw);
        let options: Vec<Word> = self.words.iter().map(|r| r.q()).collect();
        d.select(&idx, &options)
    }

    /// Queues a write port: when `enable` holds, word `addr` becomes `data`
    /// at the next clock edge. Later queued writes take priority.
    ///
    /// # Panics
    /// Panics if the array is already sealed or on width mismatch.
    pub fn write(&mut self, enable: Bit, addr: Word, data: Word) {
        assert!(!self.sealed, "write to sealed memory {}", self.name);
        assert_eq!(data.width(), self.width, "data width mismatch");
        self.writes.push(QueuedWrite { enable, addr, data });
    }

    /// Applies all queued writes and seals every register. Must be called
    /// exactly once, before `Design::finish` (and before any enclosing
    /// [`Design::gate_regs_since`] so pause gating also freezes memory).
    pub fn seal(mut self, d: &mut Design) {
        self.sealed = true;
        let aw = self.addr_width().max(1);
        for (i, reg) in self.words.iter().enumerate() {
            let mut next = reg.q();
            for w in &self.writes {
                let idx = d.resize(&w.addr, aw);
                let here = d.eq_const(&idx, i as u64);
                let strike = d.and_bit(here, w.enable);
                next = d.mux(strike, &w.data, &next);
            }
            d.set_next(reg, next);
        }
    }

    /// Seals a read-only memory: every word holds its (symbolic) value
    /// forever. Used for instruction memory and the shared public data
    /// memory.
    ///
    /// # Panics
    /// Panics if writes were queued.
    pub fn seal_const(self, d: &mut Design) {
        assert!(
            self.writes.is_empty(),
            "seal_const on memory {} with queued writes",
            self.name
        );
        for reg in &self.words {
            d.hold(reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_constant_contents() {
        let mut d = Design::new("t");
        let mut m = MemArray::new(&mut d, "m", 4, 8, Init::Zero);
        // Write constants into all words via write ports enabled always.
        for i in 0..4u64 {
            let addr = d.lit(2, i);
            let data = d.lit(8, i * 7);
            m.write(Bit::TRUE, addr, data);
        }
        m.seal(&mut d);
        let _ = d.finish();
    }

    #[test]
    fn later_writes_win() {
        let mut d = Design::new("t");
        let mut m = MemArray::new(&mut d, "m", 2, 4, Init::Zero);
        let a0 = d.lit(1, 0);
        let d1 = d.lit(4, 1);
        let d2 = d.lit(4, 2);
        m.write(Bit::TRUE, a0.clone(), d1);
        m.write(Bit::TRUE, a0, d2);
        m.seal(&mut d);
        let aig = d.finish();
        // Word 0, bit 1 must become constant TRUE next (value 2), bit 0 FALSE.
        let l0_next = aig.latches()[0].next.unwrap();
        let l1_next = aig.latches()[1].next.unwrap();
        assert_eq!(l0_next, Bit::FALSE);
        assert_eq!(l1_next, Bit::TRUE);
    }

    #[test]
    fn read_only_memory_holds() {
        let mut d = Design::new("t");
        let m = MemArray::new(&mut d, "rom", 4, 4, Init::Symbolic);
        let addr = d.input("a", 2);
        let _data = m.read(&mut d, &addr);
        m.seal_const(&mut d);
        let aig = d.finish();
        for l in aig.latches() {
            assert_eq!(l.next.unwrap(), l.output);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut d = Design::new("t");
        let _ = MemArray::new(&mut d, "m", 3, 4, Init::Zero);
    }

    #[test]
    fn addr_width() {
        let mut d = Design::new("t");
        let m = MemArray::new(&mut d, "m", 8, 4, Init::Zero);
        assert_eq!(m.addr_width(), 3);
        assert_eq!(m.len(), 8);
        m.seal_const(&mut d);
        let _ = d.finish();
    }
}

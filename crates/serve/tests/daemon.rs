//! End-to-end daemon tests against the real `csl-serve` binary as the
//! worker executable: crash isolation (a poisoned worker aborts, the
//! campaign survives), in-flight dedup (identical concurrent
//! submissions solve once), journal resume (a restarted daemon serves
//! decided cells without a worker), and cancellation.

use std::path::PathBuf;
use std::time::Duration;

use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_mc::{InconclusiveReason, Verdict};
use csl_serve::{CellSpec, Client, Daemon, DaemonConfig, ServeOptions, Source};

fn worker_cmd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_csl-serve"))
}

fn config(workers: usize) -> DaemonConfig {
    DaemonConfig {
        workers,
        worker_cmd: Some(worker_cmd()),
        ..DaemonConfig::default()
    }
}

/// The api-test workhorse knobs: decisive on the single-cycle design in
/// seconds (sequential mode, so worker verdicts are deterministic).
fn fast_options() -> ServeOptions {
    ServeOptions {
        budget: Duration::from_secs(10),
        bmc_depth: 4,
        ..ServeOptions::default()
    }
}

fn leave_cell() -> CellSpec {
    CellSpec::new(Scheme::Leave, DesignKind::SingleCycle, Contract::Sandboxing)
}

fn decided(report: &csl_core::api::Report) -> bool {
    report.verdict.is_attack() || report.verdict.is_proof()
}

#[test]
fn poisoned_worker_kills_one_cell_not_the_campaign() {
    let daemon = Daemon::start(config(1)).unwrap();
    let mut client = Client::connect(&daemon.addr()).unwrap();
    let poisoned = CellSpec {
        poison: true,
        ..leave_cell()
    };
    let done = client
        .run("crash", &[poisoned, leave_cell()], &fast_options())
        .unwrap();

    assert_eq!(done.campaign.reports.len(), 2);
    match &done.campaign.reports[0].verdict {
        Verdict::Unknown {
            reason: InconclusiveReason::WorkerCrashed { detail },
        } => {
            // abort() dies by SIGABRT; accept any exit-style detail so
            // the assertion is not tied to one libc.
            assert!(
                detail.contains("signal") || detail.contains("exit"),
                "unexpected crash detail: {detail}"
            );
        }
        other => panic!("poisoned cell should report WorkerCrashed, got {other:?}"),
    }
    assert!(
        done.campaign.reports[1].verdict.is_proof(),
        "the healthy cell must still complete: {:?}",
        done.campaign.reports[1].verdict
    );
    assert_eq!(done.stats.retries, 1, "exactly one retry is attempted");
    assert_eq!(done.stats.crashes, 2, "first attempt + retry both crash");
    assert_eq!(done.stats.solved, 1, "only the healthy cell is solved");

    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn concurrent_identical_submissions_solve_once() {
    let daemon = Daemon::start(config(2)).unwrap();
    // The delay keeps the query in flight while the second submission
    // arrives (and salts the key, so no other test's results interfere).
    let cell = CellSpec {
        delay_ms: 500,
        ..leave_cell()
    };
    let mut a = Client::connect(&daemon.addr()).unwrap();
    let mut b = Client::connect(&daemon.addr()).unwrap();
    let ja = a
        .submit("dup-a", std::slice::from_ref(&cell), &fast_options())
        .unwrap();
    let jb = b
        .submit("dup-b", std::slice::from_ref(&cell), &fast_options())
        .unwrap();
    let da = a.wait_done(ja).unwrap();
    let db = b.wait_done(jb).unwrap();

    assert_eq!(
        da.stats.solved + db.stats.solved,
        1,
        "the identical query is solved exactly once"
    );
    assert_eq!(da.stats.dedup_hits + db.stats.dedup_hits, 1);
    assert_eq!(
        da.campaign.reports[0].to_json(),
        db.campaign.reports[0].to_json(),
        "both submitters receive byte-identical reports"
    );
    let status = a.status().unwrap();
    assert_eq!(status.totals.solved, 1);
    assert!(status.totals.dedup_hits >= 1, "{:?}", status.totals);

    a.shutdown().unwrap();
    daemon.join();
}

#[test]
fn restarted_daemon_serves_journaled_cells() {
    let dir = std::env::temp_dir().join(format!("csl-serve-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("campaign.journal");
    let cells = vec![
        leave_cell(),
        CellSpec::new(
            Scheme::Shadow,
            DesignKind::SingleCycle,
            Contract::Sandboxing,
        ),
    ];
    let cfg = || DaemonConfig {
        journal: Some(journal.clone()),
        ..config(2)
    };

    let d1 = Daemon::start(cfg()).unwrap();
    let mut c1 = Client::connect(&d1.addr()).unwrap();
    let first = c1.run("resume-1", &cells, &fast_options()).unwrap();
    assert!(
        first.updates.iter().all(|u| u.source == Source::Worker),
        "a fresh daemon with an empty journal solves everything"
    );
    c1.shutdown().unwrap();
    d1.join();

    let d2 = Daemon::start(cfg()).unwrap();
    let mut c2 = Client::connect(&d2.addr()).unwrap();
    let second = c2.run("resume-2", &cells, &fast_options()).unwrap();
    let decided_cells = first.campaign.reports.iter().filter(|r| decided(r)).count();
    assert!(
        decided_cells >= 1,
        "LEAVE at least proves the single-cycle design"
    );
    assert_eq!(
        second.stats.journal_hits as usize, decided_cells,
        "every decided cell is served from the journal without a worker"
    );
    assert_eq!(
        second.stats.solved as usize,
        cells.len() - decided_cells,
        "only undecided cells are re-solved"
    );
    for update in &second.updates {
        let before = &first.campaign.reports[update.index as usize];
        if decided(before) {
            assert_eq!(update.source, Source::Journal);
            assert_eq!(
                update.report.to_json(),
                before.to_json(),
                "journal replay is byte-identical"
            );
        }
    }
    c2.shutdown().unwrap();
    d2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_completes_the_job_with_cancelled_cells() {
    let daemon = Daemon::start(config(1)).unwrap();
    let mut client = Client::connect(&daemon.addr()).unwrap();
    let slow = |ms| CellSpec {
        delay_ms: ms,
        ..leave_cell()
    };
    let job = client
        .submit("cancel", &[slow(900), slow(901)], &fast_options())
        .unwrap();
    client.cancel(job).unwrap();
    let done = client.wait_done(job).unwrap();

    assert_eq!(done.campaign.reports.len(), 2, "the campaign stays total");
    assert!(
        done.stats.cancelled >= 1,
        "at least the queued cell is cancelled: {:?}",
        done.stats
    );
    assert!(done
        .updates
        .iter()
        .any(|u| u.source == Source::Cancelled
            && matches!(u.report.verdict, Verdict::Unknown { .. })));

    client.shutdown().unwrap();
    daemon.join();
}

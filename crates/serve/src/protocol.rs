//! The JSON-lines wire protocol.
//!
//! Every message — client→daemon [`Request`], daemon→client
//! [`Response`], and the daemon↔worker pair
//! [`WorkerRequest`]/[`WorkerResponse`] — is one compact JSON object per
//! line (`Json::render_line` + `\n`), tagged by an `"op"` field on the
//! client protocol and by presence of `"cell"`/`"report"` on the worker
//! protocol. Parsing is deliberately shallow and explicit: unknown ops
//! are an [`Response::Error`], garbled lines never panic the daemon.
//!
//! Report payloads embed the canonical `csl-report-v1` /
//! `csl-campaign-v1` objects via `Report::to_value` /
//! `CampaignReport::to_value`, so a `done` line's `campaign` field is
//! byte-for-byte what `CampaignReport::to_json` writes — the property
//! the `serveprobe` gate checks.

use csl_core::api::{CampaignReport, Json, Report};

use crate::spec::{CellSpec, ServeOptions};

/// Client → daemon.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a campaign: an ordered list of cells sharing one options
    /// block. `id` is a client-chosen tag echoed back in the acceptance.
    Submit {
        id: String,
        cells: Vec<CellSpec>,
        options: Box<ServeOptions>,
    },
    /// Snapshot of daemon state and lifetime counters.
    Status,
    /// Cancel a job's unfinished cells.
    Cancel { job: u64 },
    /// Stop the daemon (drains nothing: queued work is dropped).
    Shutdown,
}

impl Request {
    pub fn to_value(&self) -> Json {
        match self {
            Request::Submit { id, cells, options } => Json::obj(vec![
                ("op", Json::Str("submit".into())),
                ("id", Json::Str(id.clone())),
                (
                    "cells",
                    Json::Arr(cells.iter().map(CellSpec::to_value).collect()),
                ),
                ("options", options.to_value()),
            ]),
            Request::Status => Json::obj(vec![("op", Json::Str("status".into()))]),
            Request::Cancel { job } => Json::obj(vec![
                ("op", Json::Str("cancel".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
        }
    }

    pub fn from_value(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request is missing `op`")?;
        match op {
            "submit" => {
                let id = v
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let Some(Json::Arr(items)) = v.get("cells") else {
                    return Err("submit needs a `cells` array".into());
                };
                let cells = items
                    .iter()
                    .map(CellSpec::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                let options = match v.get("options") {
                    None => ServeOptions::default(),
                    Some(o) => ServeOptions::from_value(o)?,
                };
                Ok(Request::Submit {
                    id,
                    cells,
                    options: Box::new(options),
                })
            }
            "status" => Ok(Request::Status),
            "cancel" => Ok(Request::Cancel { job: job_field(v)? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    pub fn to_line(&self) -> String {
        self.to_value().render_line()
    }

    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
        Request::from_value(&v)
    }
}

/// Where a delivered cell report came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// A worker process solved it for this submission.
    Worker,
    /// Served from the shared on-disk report cache.
    Cache,
    /// Served from a previous run's journal (campaign resume).
    Journal,
    /// Deduplicated against an identical in-flight or
    /// already-completed query in this daemon session.
    Dedup,
    /// The client cancelled the job before the cell ran.
    Cancelled,
}

impl Source {
    pub fn name(self) -> &'static str {
        match self {
            Source::Worker => "worker",
            Source::Cache => "cache",
            Source::Journal => "journal",
            Source::Dedup => "dedup",
            Source::Cancelled => "cancelled",
        }
    }

    pub fn from_name(name: &str) -> Option<Source> {
        [
            Source::Worker,
            Source::Cache,
            Source::Journal,
            Source::Dedup,
            Source::Cancelled,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }
}

/// Per-job (and, summed, per-daemon) outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Cells submitted.
    pub cells: u64,
    /// Cells a worker process solved.
    pub solved: u64,
    /// Cells served by deduplication against an identical query.
    pub dedup_hits: u64,
    /// Cells served from the on-disk report cache.
    pub cache_hits: u64,
    /// Cells served from a previous run's journal.
    pub journal_hits: u64,
    /// Worker-process deaths observed while solving.
    pub crashes: u64,
    /// Crash retries attempted (each crash is retried once).
    pub retries: u64,
    /// Cells cancelled by the client.
    pub cancelled: u64,
    /// Cached or journaled verdicts that failed verify-on-load — the
    /// stored certificate or witness did not re-check against a freshly
    /// built instance — and fell through to a real solve.
    pub rejected: u64,
}

impl ServeStats {
    pub fn merge(&mut self, other: &ServeStats) {
        self.cells += other.cells;
        self.solved += other.solved;
        self.dedup_hits += other.dedup_hits;
        self.cache_hits += other.cache_hits;
        self.journal_hits += other.journal_hits;
        self.crashes += other.crashes;
        self.retries += other.retries;
        self.cancelled += other.cancelled;
        self.rejected += other.rejected;
    }

    pub fn to_value(&self) -> Json {
        Json::obj(vec![
            ("cells", Json::Int(self.cells as i64)),
            ("solved", Json::Int(self.solved as i64)),
            ("dedup_hits", Json::Int(self.dedup_hits as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("journal_hits", Json::Int(self.journal_hits as i64)),
            ("crashes", Json::Int(self.crashes as i64)),
            ("retries", Json::Int(self.retries as i64)),
            ("cancelled", Json::Int(self.cancelled as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
        ])
    }

    pub fn from_value(v: &Json) -> Result<ServeStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(0),
                Some(n) => n
                    .as_int()
                    .and_then(|n| u64::try_from(n).ok())
                    .ok_or(format!("stats `{key}` must be a non-negative integer")),
            }
        };
        Ok(ServeStats {
            cells: field("cells")?,
            solved: field("solved")?,
            dedup_hits: field("dedup_hits")?,
            cache_hits: field("cache_hits")?,
            journal_hits: field("journal_hits")?,
            crashes: field("crashes")?,
            retries: field("retries")?,
            cancelled: field("cancelled")?,
            rejected: field("rejected")?,
        })
    }
}

/// Daemon state snapshot answered to [`Request::Status`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusInfo {
    /// Worker threads in the pool (upper bound on live worker processes).
    pub workers: u64,
    /// Jobs with unfinished cells.
    pub active_jobs: u64,
    /// Cells waiting for a worker.
    pub queued: u64,
    /// Distinct queries currently queued or being solved.
    pub inflight: u64,
    /// Lifetime totals across all jobs.
    pub totals: ServeStats,
}

/// Daemon → client. Every response to a connection's request stream,
/// including the asynchronous per-cell `Update` lines a submission
/// streams back.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Submission accepted; `job` is the daemon-assigned handle.
    Accepted {
        id: String,
        job: u64,
        cells: u64,
    },
    /// One cell of a job finished (in completion order, not cell order).
    Update {
        job: u64,
        /// Index into the submitted `cells` array.
        index: u64,
        source: Source,
        report: Box<Report>,
    },
    /// All cells of a job are accounted for; `campaign` assembles the
    /// reports in submission order.
    Done {
        job: u64,
        stats: ServeStats,
        campaign: Box<CampaignReport>,
    },
    Status(Box<StatusInfo>),
    Cancelled {
        job: u64,
    },
    /// Acknowledges shutdown; the socket closes after this line.
    Bye,
    Error {
        message: String,
    },
}

impl Response {
    pub fn to_value(&self) -> Json {
        match self {
            Response::Accepted { id, job, cells } => Json::obj(vec![
                ("op", Json::Str("accepted".into())),
                ("id", Json::Str(id.clone())),
                ("job", Json::Int(*job as i64)),
                ("cells", Json::Int(*cells as i64)),
            ]),
            Response::Update {
                job,
                index,
                source,
                report,
            } => Json::obj(vec![
                ("op", Json::Str("update".into())),
                ("job", Json::Int(*job as i64)),
                ("index", Json::Int(*index as i64)),
                ("source", Json::Str(source.name().into())),
                ("report", report.to_value()),
            ]),
            Response::Done {
                job,
                stats,
                campaign,
            } => Json::obj(vec![
                ("op", Json::Str("done".into())),
                ("job", Json::Int(*job as i64)),
                ("stats", stats.to_value()),
                ("campaign", campaign.to_value()),
            ]),
            Response::Status(info) => Json::obj(vec![
                ("op", Json::Str("status".into())),
                ("workers", Json::Int(info.workers as i64)),
                ("active_jobs", Json::Int(info.active_jobs as i64)),
                ("queued", Json::Int(info.queued as i64)),
                ("inflight", Json::Int(info.inflight as i64)),
                ("totals", info.totals.to_value()),
            ]),
            Response::Cancelled { job } => Json::obj(vec![
                ("op", Json::Str("cancelled".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Response::Bye => Json::obj(vec![("op", Json::Str("bye".into()))]),
            Response::Error { message } => Json::obj(vec![
                ("op", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    pub fn from_value(v: &Json) -> Result<Response, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("response is missing `op`")?;
        match op {
            "accepted" => Ok(Response::Accepted {
                id: v
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                job: job_field(v)?,
                cells: count_field(v, "cells")?,
            }),
            "update" => {
                let report = v.get("report").ok_or("update is missing `report`")?;
                let report =
                    Report::from_value(report).map_err(|e| format!("bad update report: {e}"))?;
                let source = v
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or("update is missing `source`")?;
                let source = Source::from_name(source)
                    .ok_or_else(|| format!("unknown source `{source}`"))?;
                Ok(Response::Update {
                    job: job_field(v)?,
                    index: count_field(v, "index")?,
                    source,
                    report: Box::new(report),
                })
            }
            "done" => {
                let campaign = v.get("campaign").ok_or("done is missing `campaign`")?;
                let campaign = CampaignReport::from_value(campaign)
                    .map_err(|e| format!("bad campaign: {e}"))?;
                let stats = match v.get("stats") {
                    None => ServeStats::default(),
                    Some(s) => ServeStats::from_value(s)?,
                };
                Ok(Response::Done {
                    job: job_field(v)?,
                    stats,
                    campaign: Box::new(campaign),
                })
            }
            "status" => {
                let totals = match v.get("totals") {
                    None => ServeStats::default(),
                    Some(s) => ServeStats::from_value(s)?,
                };
                Ok(Response::Status(Box::new(StatusInfo {
                    workers: count_field(v, "workers")?,
                    active_jobs: count_field(v, "active_jobs")?,
                    queued: count_field(v, "queued")?,
                    inflight: count_field(v, "inflight")?,
                    totals,
                })))
            }
            "cancelled" => Ok(Response::Cancelled { job: job_field(v)? }),
            "bye" => Ok(Response::Bye),
            "error" => Ok(Response::Error {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    pub fn to_line(&self) -> String {
        self.to_value().render_line()
    }

    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed response JSON: {e}"))?;
        Response::from_value(&v)
    }
}

fn job_field(v: &Json) -> Result<u64, String> {
    v.get("job")
        .and_then(Json::as_int)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or("missing or invalid `job`".into())
}

fn count_field(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(0),
        Some(n) => n
            .as_int()
            .and_then(|n| u64::try_from(n).ok())
            .ok_or(format!("`{key}` must be a non-negative integer")),
    }
}

/// Daemon → worker: solve one cell. `id` is echoed back so a late reply
/// from a previous (timed-out) request can never be mistaken for the
/// current cell's verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerRequest {
    pub id: u64,
    pub cell: CellSpec,
    pub options: ServeOptions,
}

impl WorkerRequest {
    pub fn to_line(&self) -> String {
        Json::obj(vec![
            ("id", Json::Int(self.id as i64)),
            ("cell", self.cell.to_value()),
            ("options", self.options.to_value()),
        ])
        .render_line()
    }

    pub fn parse(line: &str) -> Result<WorkerRequest, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed worker request: {e}"))?;
        let id = v
            .get("id")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or("worker request is missing `id`")?;
        let cell = CellSpec::from_value(v.get("cell").ok_or("worker request is missing `cell`")?)?;
        let options = match v.get("options") {
            None => ServeOptions::default(),
            Some(o) => ServeOptions::from_value(o)?,
        };
        Ok(WorkerRequest { id, cell, options })
    }
}

/// Worker → daemon: the finished report for request `id`.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerResponse {
    pub id: u64,
    pub report: Report,
}

impl WorkerResponse {
    pub fn to_line(&self) -> String {
        Json::obj(vec![
            ("id", Json::Int(self.id as i64)),
            ("report", self.report.to_value()),
        ])
        .render_line()
    }

    pub fn parse(line: &str) -> Result<WorkerResponse, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed worker response: {e}"))?;
        let id = v
            .get("id")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or("worker response is missing `id`")?;
        let report = Report::from_value(
            v.get("report")
                .ok_or("worker response is missing `report`")?,
        )
        .map_err(|e| format!("bad worker report: {e}"))?;
        Ok(WorkerResponse { id, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_contracts::Contract;
    use csl_core::{DesignKind, Scheme};

    fn cells() -> Vec<CellSpec> {
        vec![
            CellSpec::new(
                Scheme::Shadow,
                DesignKind::SingleCycle,
                Contract::Sandboxing,
            ),
            CellSpec::new(
                Scheme::Baseline,
                DesignKind::SingleCycle,
                Contract::ConstantTime,
            ),
        ]
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit {
                id: "smoke".into(),
                cells: cells(),
                options: Box::new(ServeOptions::default()),
            },
            Request::Status,
            Request::Cancel { job: 7 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let report = crate::spec::undecided_report(
            &cells()[0],
            csl_mc::InconclusiveReason::WorkerCrashed {
                detail: "signal 6".into(),
            },
            std::time::Duration::ZERO,
            vec!["worker died".into()],
        );
        let resps = vec![
            Response::Accepted {
                id: "smoke".into(),
                job: 1,
                cells: 2,
            },
            Response::Update {
                job: 1,
                index: 0,
                source: Source::Dedup,
                report: Box::new(report.clone()),
            },
            Response::Done {
                job: 1,
                stats: ServeStats {
                    cells: 2,
                    solved: 1,
                    crashes: 2,
                    retries: 1,
                    ..ServeStats::default()
                },
                campaign: Box::new(CampaignReport {
                    reports: vec![report.clone()],
                    wall: std::time::Duration::ZERO,
                }),
            },
            Response::Status(Box::new(StatusInfo {
                workers: 2,
                active_jobs: 1,
                queued: 3,
                inflight: 4,
                totals: ServeStats::default(),
            })),
            Response::Cancelled { job: 1 },
            Response::Bye,
            Response::Error {
                message: "unknown op `frob`".into(),
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), resp);
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        let req = WorkerRequest {
            id: 3,
            cell: cells()[0].clone(),
            options: ServeOptions::default(),
        };
        assert_eq!(WorkerRequest::parse(&req.to_line()).unwrap(), req);
        let resp = WorkerResponse {
            id: 3,
            report: crate::spec::undecided_report(
                &cells()[0],
                csl_mc::InconclusiveReason::WorkerCrashed {
                    detail: "exit code 2".into(),
                },
                std::time::Duration::ZERO,
                Vec::new(),
            ),
        };
        assert_eq!(WorkerResponse::parse(&resp.to_line()).unwrap(), resp);
    }

    #[test]
    fn garbage_lines_are_soft_errors() {
        assert!(Request::parse("{\"op\": \"frob\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Response::parse("{\"op\": 7}").is_err());
        assert!(WorkerResponse::parse("{}").is_err());
    }
}

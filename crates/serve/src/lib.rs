//! `csl-serve`: a sharded, crash-isolated verification campaign daemon.
//!
//! Long verification campaigns — the paper's scheme × design × contract
//! matrix at real budgets — have failure modes a single process can't
//! absorb: one solver OOM or assertion failure takes every other cell's
//! progress with it, and a killed run restarts from zero. This crate
//! turns the campaign runner into a small service:
//!
//! * **Daemon** ([`Daemon`]): listens on a TCP or Unix socket and
//!   speaks a JSON-lines protocol ([`protocol`]) — `submit` a list of
//!   cells, stream per-cell `update` lines as they resolve, receive the
//!   assembled `done` campaign; plus `status`, `cancel`, `shutdown`.
//! * **Crash isolation** ([`worker`]): every solve runs in a worker
//!   *process* (the daemon re-execs its own binary with
//!   [`WORKER_FLAG`]); a crash costs one cell, is retried once, and
//!   otherwise lands in the campaign as a
//!   `Verdict::Unknown { reason: WorkerCrashed { .. } }` report.
//! * **Dedup**: identical in-flight queries (by
//!   [`spec::cell_key`], i.e. `Query::cache_key`) are solved once; the
//!   second submitter subscribes to the first's result.
//! * **Cache**: the shared on-disk `ReportCache` is consulted before
//!   any worker runs and fed by every decided verdict.
//! * **Resume** ([`journal`]): decided cells append to a journal; a
//!   restarted daemon serves them without re-solving.
//!
//! Everything is `std`-only: threads, `std::net`/`std::os::unix::net`,
//! `std::process`.
//!
//! # Embedding
//!
//! Any binary that starts a [`Daemon`] in-process (tests, probes,
//! examples) must call [`serve_worker_if_flagged`] first thing in
//! `main`, because workers are re-execs of `current_exe()`:
//!
//! ```no_run
//! use csl_serve::{Client, Daemon, DaemonConfig, CellSpec, ServeOptions};
//! use csl_core::{Scheme, DesignKind};
//! use csl_contracts::Contract;
//!
//! fn main() -> std::io::Result<()> {
//!     csl_serve::serve_worker_if_flagged();
//!     let daemon = Daemon::start(DaemonConfig::default())?;
//!     let mut client = Client::connect(&daemon.addr())?;
//!     let cells = vec![CellSpec::new(
//!         Scheme::Shadow,
//!         DesignKind::SingleCycle,
//!         Contract::Sandboxing,
//!     )];
//!     let done = client.run("demo", &cells, &ServeOptions::default())?;
//!     println!("{}", done.campaign.render_table());
//!     client.shutdown()?;
//!     daemon.join();
//!     Ok(())
//! }
//! ```

pub mod client;
pub mod daemon;
pub mod journal;
pub mod net;
pub mod protocol;
pub mod spec;
pub mod worker;

pub use client::{CellUpdate, Client, JobDone};
pub use daemon::{default_workers, Daemon, DaemonConfig, DaemonHandle};
pub use journal::Journal;
pub use net::{Bind, ServeAddr};
pub use protocol::{Request, Response, ServeStats, Source, StatusInfo};
pub use spec::{
    cell_key, normalized_campaign, normalized_report, report_is_sound, run_cell, undecided_report,
    CellSpec, ServeOptions,
};
pub use worker::{serve_worker_if_flagged, worker_main, WORKER_FLAG};

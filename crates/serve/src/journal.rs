//! The campaign journal: crash-safe resume for long matrices.
//!
//! An append-only file of compact JSON lines, one per *decided* cell:
//!
//! ```text
//! {"key":"00a1b2c3d4e5f607","report":{...csl-report-v1...}}
//! ```
//!
//! Keys are the 16-hex-digit [`crate::spec::cell_key`] (hex strings, not
//! JSON integers — the key space is the full `u64` and the canonical
//! JSON layer is `i64`-only). A daemon started with `--journal` loads
//! the file at boot and serves journaled cells without touching a
//! worker, so a killed campaign resumes where it died; appends happen as
//! cells complete, and a torn final line (daemon killed mid-write) is
//! skipped on load rather than poisoning the resume.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use csl_core::api::{Json, Report};

pub struct Journal {
    path: PathBuf,
}

impl Journal {
    pub fn new(path: impl Into<PathBuf>) -> Journal {
        Journal { path: path.into() }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every well-formed entry, in file order. Unreadable files read as
    /// empty (a fresh campaign); garbled lines are skipped.
    pub fn load(&self) -> Vec<(u64, Report)> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        text.lines().filter_map(parse_entry).collect()
    }

    /// Appends one decided cell. One `write` call per line keeps
    /// concurrent appends from distinct daemon threads whole (the
    /// daemon additionally serialises appends behind a mutex).
    pub fn append(&self, key: u64, report: &Report) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let line = Json::obj(vec![
            ("key", Json::Str(format!("{key:016x}"))),
            ("report", report.to_value()),
        ])
        .render_line();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(format!("{line}\n").as_bytes())
    }
}

fn parse_entry(line: &str) -> Option<(u64, Report)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let v = Json::parse(line).ok()?;
    let key = u64::from_str_radix(v.get("key")?.as_str()?, 16).ok()?;
    let report = Report::from_value(v.get("report")?).ok()?;
    Some((key, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{undecided_report, CellSpec};
    use csl_contracts::Contract;
    use csl_core::{DesignKind, Scheme};
    use csl_mc::InconclusiveReason;
    use std::time::Duration;

    fn report(scheme: Scheme) -> Report {
        undecided_report(
            &CellSpec::new(scheme, DesignKind::SingleCycle, Contract::Sandboxing),
            InconclusiveReason::Other("journal test".into()),
            Duration::ZERO,
            Vec::new(),
        )
    }

    #[test]
    fn appends_round_trip_and_torn_tails_are_skipped() {
        let dir = std::env::temp_dir().join(format!("csl-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = Journal::new(dir.join("smoke.journal"));
        assert!(journal.load().is_empty());

        journal
            .append(0xdead_beef, &report(Scheme::Shadow))
            .unwrap();
        journal.append(u64::MAX, &report(Scheme::Baseline)).unwrap();
        // Simulate a daemon killed mid-append: a torn trailing line.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(journal.path())
                .unwrap();
            f.write_all(b"{\"key\":\"1234\",\"report\":{\"sch").unwrap();
        }

        let entries = journal.load();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 0xdead_beef);
        assert_eq!(entries[0].1.scheme, Scheme::Shadow);
        assert_eq!(entries[1].0, u64::MAX);
        assert_eq!(entries[1].1.scheme, Scheme::Baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

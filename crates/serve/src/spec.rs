//! Wire-level descriptions of verification work.
//!
//! A campaign submission is a list of [`CellSpec`]s (scheme × design ×
//! contract, named exactly as reports name them) plus one shared
//! [`ServeOptions`] block — the engine knobs that survive a trip through
//! the JSON-lines protocol. Both sides of the wire resolve a spec the
//! same way: [`ServeOptions::query`] builds the standard
//! `csl_core::api::Query`, so a daemon-served cell decides exactly the
//! problem an in-process `Matrix::run_all` would, and
//! [`cell_key`] is `Query::cache_key` (shared with the on-disk
//! [`csl_core::api::ReportCache`]) unless fault-injection knobs are set.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::api::{CampaignReport, Json, Mode, PrepareConfig, Query, Report, Verifier};
use csl_core::{CampaignCell, DesignKind, Scheme};
use csl_mc::{CheckOptions, InconclusiveReason, Verdict};

/// One cell of a submitted campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    pub scheme: Scheme,
    pub design: DesignKind,
    pub contract: Contract,
    /// Fault injection for crash-isolation testing: the worker process
    /// aborts (SIGABRT) instead of solving this cell. Salted into
    /// [`cell_key`] so a poisoned cell never dedups against — or is
    /// served from the cache of — the real one.
    pub poison: bool,
    /// Fault injection for scheduling tests: the worker sleeps this long
    /// before solving. Salted into [`cell_key`] like `poison`.
    pub delay_ms: u64,
}

impl CellSpec {
    /// A plain cell with no fault injection.
    pub fn new(scheme: Scheme, design: DesignKind, contract: Contract) -> CellSpec {
        CellSpec {
            scheme,
            design,
            contract,
            poison: false,
            delay_ms: 0,
        }
    }

    /// `Scheme/Design/contract` label, matching report labels.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.scheme.name(),
            self.design.name(),
            self.contract.name()
        )
    }

    pub fn to_value(&self) -> Json {
        let mut pairs = vec![
            ("scheme", Json::Str(self.scheme.name().into())),
            ("design", Json::Str(self.design.name())),
            ("contract", Json::Str(self.contract.name())),
        ];
        // Fault-injection knobs are written only when set, so ordinary
        // submissions stay free of test vocabulary.
        if self.poison {
            pairs.push(("poison", Json::Bool(true)));
        }
        if self.delay_ms > 0 {
            pairs.push(("delay_ms", Json::Int(self.delay_ms as i64)));
        }
        Json::obj(pairs)
    }

    pub fn from_value(v: &Json) -> Result<CellSpec, String> {
        let name = |key: &str| -> Result<&str, String> {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell is missing `{key}`"))
        };
        let scheme = name("scheme")?;
        let scheme =
            Scheme::from_name(scheme).ok_or_else(|| format!("unknown scheme `{scheme}`"))?;
        let design = name("design")?;
        let design =
            DesignKind::from_name(design).ok_or_else(|| format!("unknown design `{design}`"))?;
        let contract = name("contract")?;
        let contract = Contract::from_name(contract)
            .ok_or_else(|| format!("unknown contract `{contract}`"))?;
        let poison = match v.get("poison") {
            None => false,
            Some(b) => b.as_bool().ok_or("`poison` must be a bool")?,
        };
        let delay_ms = match v.get("delay_ms") {
            None => 0,
            Some(n) => n
                .as_int()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or("`delay_ms` must be a non-negative integer")?,
        };
        Ok(CellSpec {
            scheme,
            design,
            contract,
            poison,
            delay_ms,
        })
    }
}

impl From<CampaignCell> for CellSpec {
    fn from(cell: CampaignCell) -> CellSpec {
        CellSpec::new(cell.scheme, cell.design, cell.contract)
    }
}

/// The engine knobs a submission carries — the subset of the `Verifier`
/// builder that makes sense to set remotely. Defaults mirror
/// `CheckOptions::default()` (sequential mode, preparation on, warm
/// starts off), so an empty `options` object on the wire means "the
/// standard pipeline".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Per-cell wall-clock budget.
    pub budget: Duration,
    /// Maximum BMC depth for the attack search.
    pub bmc_depth: usize,
    /// Skip the proof engines (pure attack hunting).
    pub attack_only: bool,
    /// Thread-racing portfolio instead of the sequential pipeline.
    pub portfolio: bool,
    /// Instance preparation (netlist reduction) on/off.
    pub prepare: bool,
    /// Warm-start solver-session reuse on/off.
    pub warm: bool,
    /// Certificate emission and verify-on-load of cached/journaled
    /// verdicts on/off (default on).
    pub certify: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        let opts = CheckOptions::default();
        ServeOptions {
            budget: opts.total_budget,
            bmc_depth: opts.bmc_depth,
            attack_only: opts.attack_only,
            portfolio: matches!(opts.mode, Mode::Portfolio),
            prepare: opts.prepare.enabled,
            warm: opts.warm_start,
            certify: opts.certify,
        }
    }
}

impl ServeOptions {
    /// Applies these options to a session builder — the single point
    /// both the worker and any in-process comparison run resolve
    /// options through.
    pub fn apply(&self, v: Verifier) -> Verifier {
        v.wall(self.budget)
            .bmc_depth(self.bmc_depth)
            .attack_only(self.attack_only)
            .mode(if self.portfolio {
                Mode::Portfolio
            } else {
                Mode::Sequential
            })
            .prepare(if self.prepare {
                PrepareConfig::on()
            } else {
                PrepareConfig::off()
            })
            .warm(self.warm)
            .certify(self.certify)
    }

    /// The fully-resolved query for one cell.
    pub fn query(&self, cell: &CellSpec) -> Query {
        self.apply(Verifier::new())
            .design(cell.design)
            .contract(cell.contract)
            .scheme(cell.scheme)
            .query()
            .expect("cell specs always carry a design and a contract")
    }

    pub fn to_value(&self) -> Json {
        Json::obj(vec![
            ("budget_ms", Json::Int(self.budget.as_millis() as i64)),
            ("bmc_depth", Json::Int(self.bmc_depth as i64)),
            ("attack_only", Json::Bool(self.attack_only)),
            ("portfolio", Json::Bool(self.portfolio)),
            ("prepare", Json::Bool(self.prepare)),
            ("warm", Json::Bool(self.warm)),
            ("certify", Json::Bool(self.certify)),
        ])
    }

    /// Lenient parse: absent keys keep their defaults, so old clients
    /// keep working as knobs are added.
    pub fn from_value(v: &Json) -> Result<ServeOptions, String> {
        let mut opts = ServeOptions::default();
        if let Some(ms) = v.get("budget_ms") {
            let ms = ms
                .as_int()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or("`budget_ms` must be a non-negative integer")?;
            opts.budget = Duration::from_millis(ms);
        }
        if let Some(d) = v.get("bmc_depth") {
            opts.bmc_depth = d
                .as_int()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or("`bmc_depth` must be a non-negative integer")?;
        }
        let flag = |key: &str, default: bool| -> Result<bool, String> {
            match v.get(key) {
                None => Ok(default),
                Some(b) => b.as_bool().ok_or(format!("`{key}` must be a bool")),
            }
        };
        opts.attack_only = flag("attack_only", opts.attack_only)?;
        opts.portfolio = flag("portfolio", opts.portfolio)?;
        opts.prepare = flag("prepare", opts.prepare)?;
        opts.warm = flag("warm", opts.warm)?;
        opts.certify = flag("certify", opts.certify)?;
        Ok(opts)
    }
}

/// The identity of a cell's verification problem: `Query::cache_key`
/// (scheme × design × contract × every engine knob × structural netlist
/// hash), so daemon dedup, the journal and the shared on-disk
/// [`csl_core::api::ReportCache`] all speak the same key space.
/// Fault-injection knobs are folded in on top when set, keeping poisoned
/// or delayed test cells apart from real ones.
pub fn cell_key(cell: &CellSpec, options: &ServeOptions) -> u64 {
    let base = options.query(cell).cache_key();
    if !cell.poison && cell.delay_ms == 0 {
        return base;
    }
    // FNV-1a fold of the fault knobs over the base key.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [base, cell.poison as u64, cell.delay_ms] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one cell in the current process — the worker's solve path, also
/// usable inline for daemon-vs-direct comparisons.
pub fn run_cell(cell: &CellSpec, options: &ServeOptions) -> Report {
    options.query(cell).run()
}

/// Strips the wall-clock-dependent fields from a report — elapsed
/// time, free-text notes, per-lane solver timing — leaving exactly the
/// deterministic content (verdict, trace, prepare/exchange/fuzz
/// structure). Two sequential-mode runs of the same query normalize to
/// byte-identical JSON; this is what the `serveprobe` gate and the
/// daemon equivalence tests compare.
pub fn normalized_report(report: &Report) -> Report {
    let mut report = report.clone();
    report.elapsed = Duration::ZERO;
    report.notes.clear();
    report.solver.clear();
    report
}

/// [`normalized_report`] across a campaign, with the wall zeroed.
pub fn normalized_campaign(campaign: &CampaignReport) -> CampaignReport {
    CampaignReport {
        reports: campaign.reports.iter().map(normalized_report).collect(),
        wall: Duration::ZERO,
    }
}

/// A synthetic report for a cell the engines never decided (worker
/// crash, client cancellation): the query identity with a structured
/// `Unknown` verdict, so campaign tables and diffs stay total.
pub fn undecided_report(
    cell: &CellSpec,
    reason: InconclusiveReason,
    elapsed: Duration,
    notes: Vec<String>,
) -> Report {
    Report {
        scheme: cell.scheme,
        design: cell.design,
        contract: cell.contract,
        verdict: Verdict::Unknown { reason },
        elapsed,
        notes,
        exchange: Vec::new(),
        prepare: Vec::new(),
        fuzz: None,
        coverage: None,
        solver: Vec::new(),
        certificate: None,
    }
}

/// Verify-on-load for daemon-served verdicts: does the stored report's
/// evidence re-check against a freshly built instance of its cell? An
/// attack must replay to a bad state with every assume held; a proof
/// must carry a certificate whose obligations pass on the raw netlist.
/// A proof with no certificate fails — the daemon only serves what it
/// can audit. Undecided verdicts carry no claim and pass vacuously.
///
/// The instance is rebuilt from the report's own scheme × design ×
/// contract under default instance knobs — exactly how worker processes
/// resolve cells, so the vocabulary matches.
pub fn report_is_sound(report: &Report) -> bool {
    use csl_certify::{check_certificate, check_witness, Witness};
    let raw = || {
        Verifier::new()
            .design(report.design)
            .contract(report.contract)
            .scheme(report.scheme)
            .query()
            .expect("reports always carry a design and a contract")
            .raw_instance()
    };
    match &report.verdict {
        Verdict::Attack(trace) => {
            check_witness(&raw().aig, &Witness::new((**trace).clone())).is_ok()
        }
        Verdict::Proof(_) => report
            .certificate
            .as_ref()
            .is_some_and(|cert| check_certificate(&raw(), cert).is_ok()),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_spec_round_trips_and_hides_fault_knobs() {
        let plain = CellSpec::new(Scheme::Leave, DesignKind::SingleCycle, Contract::Sandboxing);
        let line = plain.to_value().render_line();
        assert!(
            !line.contains("poison") && !line.contains("delay"),
            "{line}"
        );
        assert_eq!(
            CellSpec::from_value(&Json::parse(&line).unwrap()).unwrap(),
            plain
        );

        let faulty = CellSpec {
            poison: true,
            delay_ms: 250,
            ..plain.clone()
        };
        let v = Json::parse(&faulty.to_value().render_line()).unwrap();
        assert_eq!(CellSpec::from_value(&v).unwrap(), faulty);
    }

    /// Synthesized (`obs:`-named) contracts must survive the wire: a
    /// cell carrying an arbitrary observation set round-trips through
    /// the JSON protocol, resolves to a well-formed query, and
    /// canonicalizes exactly like the in-process `Contract::from_name`
    /// (so a set spelled in a different atom order dedups to the same
    /// cell key).
    #[test]
    fn obs_contracts_round_trip_on_the_wire() {
        use csl_contracts::{ObsAtom, ObsSet};
        let set = ObsSet::of(&[ObsAtom::MemWord, ObsAtom::BranchTaken]);
        let cell = CellSpec::new(Scheme::Shadow, DesignKind::InOrder, Contract::Custom(set));
        let line = cell.to_value().render_line();
        assert!(line.contains("obs:mem_word+branch_taken"), "{line}");
        let parsed = CellSpec::from_value(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, cell);

        // A client spelling the same set in another order resolves to
        // the same cell (and therefore the same cache/dedup key).
        let reordered =
            Json::parse(&line.replace("obs:mem_word+branch_taken", "obs:branch_taken+mem_word"))
                .unwrap();
        let same = CellSpec::from_value(&reordered).unwrap();
        assert_eq!(same, cell);
        let opts = ServeOptions {
            budget: Duration::from_secs(5),
            ..ServeOptions::default()
        };
        assert_eq!(cell_key(&same, &opts), cell_key(&cell, &opts));

        // A set that coincides with a named contract canonicalizes to it.
        let named =
            Json::parse(&line.replace("obs:mem_word+branch_taken", "obs:load_data+exception"))
                .unwrap();
        assert_eq!(
            CellSpec::from_value(&named).unwrap().contract,
            Contract::Sandboxing
        );
    }

    #[test]
    fn options_round_trip_and_parse_leniently() {
        let opts = ServeOptions {
            budget: Duration::from_millis(4500),
            bmc_depth: 11,
            attack_only: true,
            portfolio: true,
            prepare: false,
            warm: true,
            certify: false,
        };
        let v = Json::parse(&opts.to_value().render_line()).unwrap();
        assert_eq!(ServeOptions::from_value(&v).unwrap(), opts);
        // An empty object is the defaults.
        assert_eq!(
            ServeOptions::from_value(&Json::parse("{}").unwrap()).unwrap(),
            ServeOptions::default()
        );
        assert!(ServeOptions::from_value(&Json::parse("{\"warm\": 3}").unwrap()).is_err());
    }

    #[test]
    fn fault_knobs_change_the_cell_key() {
        let opts = ServeOptions {
            budget: Duration::from_secs(5),
            ..ServeOptions::default()
        };
        let plain = CellSpec::new(Scheme::Leave, DesignKind::SingleCycle, Contract::Sandboxing);
        let poisoned = CellSpec {
            poison: true,
            ..plain.clone()
        };
        let delayed = CellSpec {
            delay_ms: 100,
            ..plain.clone()
        };
        let base = cell_key(&plain, &opts);
        assert_eq!(base, opts.query(&plain).cache_key());
        assert_ne!(base, cell_key(&poisoned, &opts));
        assert_ne!(base, cell_key(&delayed, &opts));
        assert_ne!(cell_key(&poisoned, &opts), cell_key(&delayed, &opts));
    }
}

//! Worker processes: the crash-isolation boundary.
//!
//! The daemon never calls the solver in its own address space. Each
//! pool thread owns one child process — the daemon's own executable
//! re-exec'd with a `--csl-serve-worker` flag — and speaks a one-line
//! request / one-line response protocol over the child's stdin/stdout
//! ([`crate::protocol::WorkerRequest`] / [`WorkerResponse`]). A solver
//! crash, OOM kill, or stack overflow therefore takes down one cell's
//! process, not the campaign: the pool thread observes EOF on the
//! child's stdout, harvests the exit code or signal for the report, and
//! respawns a fresh worker for the next cell.
//!
//! Any binary that embeds [`crate::Daemon`] in-process must call
//! [`serve_worker_if_flagged`] first thing in `main`, because the
//! daemon's default worker command is `current_exe()` — the hook is
//! what turns those re-exec'd copies into workers instead of a fork
//! bomb of daemons.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

use crate::protocol::{WorkerRequest, WorkerResponse};
use crate::spec::{run_cell, CellSpec, ServeOptions};

/// The argv[1] sentinel that turns a re-exec'd binary into a worker.
pub const WORKER_FLAG: &str = "--csl-serve-worker";

/// Call first thing in `main` of any binary that may act as a daemon
/// worker (the `csl-serve` binary itself, `serveprobe`, examples and
/// tests embedding a daemon in-process). If argv\[1\] is
/// [`WORKER_FLAG`], runs the worker loop and exits; otherwise returns
/// immediately.
pub fn serve_worker_if_flagged() {
    if std::env::args().nth(1).as_deref() == Some(WORKER_FLAG) {
        std::process::exit(worker_main());
    }
}

/// The worker loop: read a request line from stdin, solve the cell in
/// this process, write the report line to stdout. Exits 0 on stdin EOF
/// (the daemon dropped us), non-zero on a protocol error. Fault
/// injection honoured here — `delay_ms` sleeps before solving,
/// `poison` aborts, exactly where a real solver crash would land.
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        if line.trim().is_empty() {
            continue;
        }
        let req = match WorkerRequest::parse(&line) {
            Ok(req) => req,
            Err(e) => {
                eprintln!("csl-serve worker: {e}");
                return 2;
            }
        };
        if req.cell.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(req.cell.delay_ms));
        }
        if req.cell.poison {
            // The crash-isolation test path: die the way a broken
            // solver would, after the request is fully consumed.
            std::process::abort();
        }
        let report = run_cell(&req.cell, &req.options);
        let resp = WorkerResponse { id: req.id, report };
        if writeln!(stdout, "{}", resp.to_line())
            .and_then(|_| stdout.flush())
            .is_err()
        {
            return 1;
        }
    }
    0
}

/// Pool-side handle to one live worker process.
pub(crate) struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    /// Lines from the child's stdout, pumped by a reader thread so the
    /// pool thread can wait with a deadline; the channel disconnects at
    /// child EOF — i.e. on crash.
    lines: Receiver<String>,
    next_id: u64,
}

impl WorkerProc {
    pub(crate) fn spawn(cmd: &Path) -> std::io::Result<WorkerProc> {
        let mut child = Command::new(cmd)
            .arg(WORKER_FLAG)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // stderr passes through: worker panics and abort notices
            // stay visible in the daemon's log.
            .spawn()?;
        let stdin = child.stdin.take().expect("worker stdin is piped");
        let stdout = child.stdout.take().expect("worker stdout is piped");
        let (tx, lines) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Ok(WorkerProc {
            child,
            stdin,
            lines,
            next_id: 0,
        })
    }

    /// Sends one cell and waits for its report. `Err` carries a
    /// human-readable crash/timeout detail, and means this process is
    /// spent — the caller must drop it (killing the child) and spawn a
    /// fresh one.
    pub(crate) fn solve(
        &mut self,
        cell: &CellSpec,
        options: &ServeOptions,
        deadline: Duration,
    ) -> Result<WorkerResponse, String> {
        self.next_id += 1;
        let req = WorkerRequest {
            id: self.next_id,
            cell: cell.clone(),
            options: options.clone(),
        };
        if writeln!(self.stdin, "{}", req.to_line())
            .and_then(|_| self.stdin.flush())
            .is_err()
        {
            // EPIPE: the child died between cells.
            return Err(self.exit_detail());
        }
        loop {
            match self.lines.recv_timeout(deadline) {
                Ok(line) => {
                    let resp = WorkerResponse::parse(&line)
                        .map_err(|e| format!("garbled worker output: {e}"))?;
                    if resp.id != self.next_id {
                        // A stale reply from a request a previous owner
                        // timed out on; keep waiting for ours.
                        continue;
                    }
                    return Ok(resp);
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.exit_detail()),
                Err(RecvTimeoutError::Timeout) => {
                    let _ = self.child.kill();
                    return Err(format!(
                        "no verdict within the {deadline:?} watchdog; worker killed"
                    ));
                }
            }
        }
    }

    /// Reaps the child and renders how it died.
    fn exit_detail(&mut self) -> String {
        match self.child.wait() {
            Ok(status) => {
                #[cfg(unix)]
                {
                    use std::os::unix::process::ExitStatusExt;
                    if let Some(sig) = status.signal() {
                        return format!("signal {sig}");
                    }
                }
                match status.code() {
                    Some(code) => format!("exit code {code}"),
                    None => "terminated without an exit code".into(),
                }
            }
            Err(e) => format!("unreapable worker: {e}"),
        }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

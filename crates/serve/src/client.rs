//! A blocking client for the daemon's JSON-lines protocol.
//!
//! One connection, one request at a time: submit a campaign, then pump
//! [`Client::read_response`] (or let [`Client::wait_done`] do it) to
//! stream per-cell updates until the assembled `done` campaign arrives.
//! Protocol violations surface as `io::ErrorKind::InvalidData`, daemon
//! `error` replies as `io::ErrorKind::Other`.

use std::io::{BufRead, BufReader, Write};

use csl_core::api::CampaignReport;

use crate::net::{Conn, ServeAddr};
use crate::protocol::{Request, Response, ServeStats, Source, StatusInfo};
use crate::spec::{CellSpec, ServeOptions};
use csl_core::api::Report;

pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

/// One `update` line: cell `index` of the submission resolved.
#[derive(Clone, Debug)]
pub struct CellUpdate {
    pub index: u64,
    pub source: Source,
    pub report: Report,
}

/// The terminal `done` line plus every update that preceded it.
#[derive(Clone, Debug)]
pub struct JobDone {
    pub job: u64,
    pub updates: Vec<CellUpdate>,
    pub stats: ServeStats,
    pub campaign: CampaignReport,
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

fn daemon_error(message: String) -> std::io::Error {
    std::io::Error::other(format!("daemon error: {message}"))
}

impl Client {
    pub fn connect(addr: &ServeAddr) -> std::io::Result<Client> {
        let conn = Conn::connect(addr)?;
        let writer = conn.try_clone()?;
        Ok(Client {
            reader: BufReader::new(conn),
            writer,
        })
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        writeln!(self.writer, "{}", req.to_line())?;
        self.writer.flush()
    }

    /// Reads the next protocol line. EOF is `UnexpectedEof`.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Response::parse(&line).map_err(invalid);
        }
    }

    /// Submits a campaign; returns the daemon-assigned job id after the
    /// `accepted` line.
    pub fn submit(
        &mut self,
        id: &str,
        cells: &[CellSpec],
        options: &ServeOptions,
    ) -> std::io::Result<u64> {
        self.send(&Request::Submit {
            id: id.to_string(),
            cells: cells.to_vec(),
            options: Box::new(options.clone()),
        })?;
        match self.read_response()? {
            Response::Accepted { job, .. } => Ok(job),
            Response::Error { message } => Err(daemon_error(message)),
            other => Err(invalid(format!("expected `accepted`, got {other:?}"))),
        }
    }

    /// Pumps updates until `job`'s campaign completes. Responses for
    /// other requests interleaved on this connection (status snapshots,
    /// cancel acks) are skipped.
    pub fn wait_done(&mut self, job: u64) -> std::io::Result<JobDone> {
        let mut updates = Vec::new();
        loop {
            match self.read_response()? {
                Response::Update {
                    job: j,
                    index,
                    source,
                    report,
                } if j == job => updates.push(CellUpdate {
                    index,
                    source,
                    report: *report,
                }),
                Response::Done {
                    job: j,
                    stats,
                    campaign,
                } if j == job => {
                    return Ok(JobDone {
                        job,
                        updates,
                        stats,
                        campaign: *campaign,
                    })
                }
                Response::Error { message } => return Err(daemon_error(message)),
                _ => {}
            }
        }
    }

    /// Submit-and-wait convenience.
    pub fn run(
        &mut self,
        id: &str,
        cells: &[CellSpec],
        options: &ServeOptions,
    ) -> std::io::Result<JobDone> {
        let job = self.submit(id, cells, options)?;
        self.wait_done(job)
    }

    pub fn status(&mut self) -> std::io::Result<StatusInfo> {
        self.send(&Request::Status)?;
        loop {
            match self.read_response()? {
                Response::Status(info) => return Ok(*info),
                Response::Error { message } => return Err(daemon_error(message)),
                // Updates for a concurrently-running job on this
                // connection may arrive first.
                _ => {}
            }
        }
    }

    /// Fire-and-forget cancel; the `cancelled` ack and per-cell
    /// cancellation updates arrive in the response stream.
    pub fn cancel(&mut self, job: u64) -> std::io::Result<()> {
        self.send(&Request::Cancel { job })
    }

    /// Asks the daemon to exit; consumes the client after `bye`.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        loop {
            match self.read_response() {
                Ok(Response::Bye) => return Ok(()),
                Ok(_) => continue,
                // The daemon may tear the socket down right after `bye`.
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

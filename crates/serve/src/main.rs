//! The `csl-serve` binary: start a campaign daemon from the command
//! line. Re-exec'd with `--csl-serve-worker` by its own pool, this same
//! binary is also the worker.

use std::path::PathBuf;
use std::process::ExitCode;

use csl_serve::{Bind, Daemon, DaemonConfig};

const USAGE: &str = "\
csl-serve: sharded, crash-isolated verification campaign daemon

USAGE:
    csl-serve [OPTIONS]

OPTIONS:
    --listen <host:port>   TCP listen address (default 127.0.0.1:9557;
                           port 0 picks an ephemeral port)
    --unix <path>          listen on a Unix-domain socket instead
    --workers <n>          worker processes (default: half the cores)
    --cache <dir>          shared report-cache directory
    --cache-max <n>        cache LRU bound, in entries
    --journal <path>       append-only resume journal
    -h, --help             this text

PROTOCOL:
    JSON-lines; see the `Verification service` section of the README.
";

fn main() -> ExitCode {
    // Must run before anything else: the daemon's worker pool re-execs
    // this binary, and this call is what makes those copies workers.
    csl_serve::serve_worker_if_flagged();

    let mut config = DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:9557".into()),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = match arg.as_str() {
            "--listen" => value("--listen").map(|v| config.bind = Bind::Tcp(v)),
            "--unix" => value("--unix").map(|v| config.bind = Bind::Unix(PathBuf::from(v))),
            "--workers" => value("--workers").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.workers = n.max(1))
                    .map_err(|_| format!("invalid --workers value `{v}`"))
            }),
            "--cache" => value("--cache").map(|v| config.cache_dir = Some(PathBuf::from(v))),
            "--cache-max" => value("--cache-max").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.cache_max_entries = Some(n))
                    .map_err(|_| format!("invalid --cache-max value `{v}`"))
            }),
            "--journal" => value("--journal").map(|v| config.journal = Some(PathBuf::from(v))),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("csl-serve: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    match Daemon::start(config) {
        Ok(handle) => {
            eprintln!("csl-serve: listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("csl-serve: cannot start: {e}");
            ExitCode::FAILURE
        }
    }
}

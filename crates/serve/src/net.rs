//! Transport: one stream type over TCP and Unix-domain sockets.
//!
//! The daemon binds either a `TcpListener` (loopback by default) or a
//! `UnixListener`; [`Conn`] erases the difference for the per-connection
//! protocol loop and the client. [`ServeAddr`] is the connectable
//! identity a started daemon reports back — for TCP it carries the
//! *resolved* address, so binding port 0 (tests, `serveprobe`) yields
//! the real ephemeral port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where a daemon listens (and where clients connect).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAddr {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// How the daemon is asked to bind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bind {
    /// `host:port` string; port 0 picks an ephemeral port.
    Tcp(String),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Default for Bind {
    fn default() -> Bind {
        // Port 0: never collide with another daemon on the machine;
        // the handle reports the resolved port.
        Bind::Tcp("127.0.0.1:0".into())
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    pub(crate) fn bind(bind: &Bind) -> std::io::Result<(Listener, ServeAddr)> {
        match bind {
            Bind::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                Ok((Listener::Tcp(listener), ServeAddr::Tcp(local)))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a dead daemon blocks bind;
                // connect() distinguishes live from stale.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)?;
                Ok((Listener::Unix(listener), ServeAddr::Unix(path.clone())))
            }
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted or dialled protocol stream.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn connect(addr: &ServeAddr) -> std::io::Result<Conn> {
        match addr {
            ServeAddr::Tcp(a) => Ok(Conn::Tcp(TcpStream::connect(a)?)),
            #[cfg(unix)]
            ServeAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

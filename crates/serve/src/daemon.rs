//! The campaign daemon: scheduler, dedup, cache/journal consult, crash
//! retry, and the per-connection protocol loop.
//!
//! One mutex ([`State`]) guards the whole scheduling picture — jobs,
//! the work queue, in-flight queries, completed keys — plus a condvar
//! the worker-pool threads park on. Cells are identified by
//! [`crate::spec::cell_key`]; before a key ever reaches a worker the
//! daemon consults, in order: results completed earlier in this session
//! (including journal entries loaded at boot), the identical query
//! already in flight (the new submission *subscribes* instead of
//! re-solving), and the shared on-disk [`ReportCache`]. Only a genuine
//! miss is queued, and every decided worker verdict is written back to
//! the cache and the journal as it lands.
//!
//! Delivery is push-based: each finished cell streams an `update` line
//! to the owning client the moment it resolves, and the final cell
//! triggers the assembled `done` campaign. Both happen under the state
//! lock (sinks are per-connection mutexes locked strictly *after* the
//! state lock), which makes delivery ordering — `accepted`, then
//! updates, then `done` — trivially correct at the cost of
//! back-pressure from slow readers; at campaign scale (tens of cells,
//! seconds per cell) that trade is free.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use csl_core::api::{CampaignReport, Report, ReportCache};
use csl_mc::InconclusiveReason;

use crate::journal::Journal;
use crate::net::{Bind, Conn, Listener, ServeAddr};
use crate::protocol::{Request, Response, ServeStats, Source, StatusInfo};
use crate::spec::{cell_key, undecided_report, CellSpec, ServeOptions};
use crate::worker::WorkerProc;

/// How a daemon is configured before [`Daemon::start`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    pub bind: Bind,
    /// Worker pool width (threads, each owning one worker process).
    pub workers: usize,
    /// Shared on-disk report cache; `None` disables cache consult/store.
    pub cache_dir: Option<PathBuf>,
    /// LRU bound for the cache (entries), when `cache_dir` is set.
    pub cache_max_entries: Option<usize>,
    /// Resume journal; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Worker executable. Defaults to `current_exe()` — the embedding
    /// binary must call [`crate::serve_worker_if_flagged`] first thing
    /// in `main`.
    pub worker_cmd: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            bind: Bind::default(),
            workers: default_workers(),
            cache_dir: None,
            cache_max_entries: None,
            journal: None,
            worker_cmd: None,
        }
    }
}

/// Half the cores: each worker process is CPU-bound while solving, and
/// portfolio-mode cells spawn lanes of their own.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| (n.get() / 2).max(1))
        .unwrap_or(1)
}

pub struct Daemon;

impl Daemon {
    /// Binds, loads the journal, and spawns the listener + worker-pool
    /// threads. Returns once the socket is accepting.
    pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
        let (listener, addr) = Listener::bind(&config.bind)?;
        let worker_cmd = match config.worker_cmd {
            Some(cmd) => cmd,
            None => std::env::current_exe()?,
        };
        let cache = config
            .cache_dir
            .map(|dir| ReportCache::new(dir).with_max_entries_opt(config.cache_max_entries));
        let journal = config.journal.map(Journal::new);
        let mut done = HashMap::new();
        let mut rejected_at_boot = 0u64;
        if let Some(journal) = &journal {
            for (key, report) in journal.load() {
                // Verify-on-load: a journaled verdict is only trusted if
                // its certificate or witness still re-checks against a
                // freshly built instance. A failed entry is dropped (the
                // cell re-solves on first submission) and counted.
                if !crate::spec::report_is_sound(&report) {
                    rejected_at_boot += 1;
                    continue;
                }
                done.insert(
                    key,
                    DoneEntry {
                        report,
                        from_journal: true,
                    },
                );
            }
        }
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            addr,
            workers,
            worker_cmd,
            cache,
            journal: journal.map(Mutex::new),
            state: Mutex::new(State {
                next_job: 1,
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                done,
                totals: ServeStats {
                    rejected: rejected_at_boot,
                    ..ServeStats::default()
                },
            }),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("csl-serve-listen".into())
                    .spawn(move || shared.listen_loop(listener))?,
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("csl-serve-pool-{i}"))
                    .spawn(move || shared.worker_loop())?,
            );
        }
        Ok(DaemonHandle { shared, threads })
    }
}

/// A started daemon. Dropping the handle detaches the daemon (it keeps
/// serving); call [`DaemonHandle::stop`] or send a `shutdown` request
/// and [`DaemonHandle::join`] to end it.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The resolved listening address (real port even when bound to 0).
    pub fn addr(&self) -> ServeAddr {
        self.shared.addr.clone()
    }

    /// Requests shutdown and waits for the listener and pool to exit.
    /// A worker mid-cell finishes (or crashes) first.
    pub fn stop(mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Waits for a client-initiated `shutdown`.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A connection's serialized write half: shared between its request
/// loop and the scheduler threads that stream updates to it.
type Sink = Arc<Mutex<Conn>>;

fn write_response(sink: &Sink, resp: &Response) {
    let mut conn = sink.lock().unwrap();
    // A vanished client is not the daemon's problem; its job keeps
    // running and keeps feeding the cache and journal.
    let _ = writeln!(conn, "{}", resp.to_line()).and_then(|_| conn.flush());
}

struct Shared {
    addr: ServeAddr,
    workers: usize,
    worker_cmd: PathBuf,
    cache: Option<ReportCache>,
    journal: Option<Mutex<Journal>>,
    state: Mutex<State>,
    work: Condvar,
    stop: AtomicBool,
}

struct State {
    next_job: u64,
    jobs: HashMap<u64, Job>,
    /// Keys awaiting a worker, FIFO.
    queue: VecDeque<u64>,
    /// Queued or currently-solving queries, by key. A second submission
    /// of the same key lands here as an extra subscriber.
    inflight: HashMap<u64, InFlight>,
    /// Decided results completed this session (worker verdicts) or
    /// loaded from the journal at boot.
    done: HashMap<u64, DoneEntry>,
    totals: ServeStats,
}

struct DoneEntry {
    report: Report,
    from_journal: bool,
}

struct InFlight {
    cell: CellSpec,
    options: ServeOptions,
    subscribers: Vec<Subscriber>,
    /// Worker attempts consumed (a crash is retried exactly once).
    attempts: u32,
    crashes: u64,
    retries: u64,
}

struct Subscriber {
    job: u64,
    index: usize,
    /// True if this subscriber joined an already-in-flight query.
    dedup: bool,
}

struct Job {
    sink: Sink,
    cells: Vec<CellSpec>,
    slots: Vec<Option<Report>>,
    remaining: usize,
    started: Instant,
    stats: ServeStats,
}

/// One cell-delivery event, with its stat deltas.
struct Delivery<'a> {
    job: u64,
    index: usize,
    source: Source,
    report: &'a Report,
    /// Count toward the job's `solved` (a worker produced this report
    /// for this subscriber).
    solved: bool,
    crashes: u64,
    retries: u64,
}

impl Shared {
    // ---- connection side ----------------------------------------------

    fn listen_loop(self: Arc<Shared>, listener: Listener) {
        loop {
            let conn = listener.accept();
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(conn) = conn else { continue };
            let shared = self.clone();
            // Connection threads are detached: they die with their
            // socket, and an abrupt client never blocks shutdown.
            let _ = std::thread::Builder::new()
                .name("csl-serve-conn".into())
                .spawn(move || shared.handle_conn(conn));
        }
    }

    fn handle_conn(self: Arc<Shared>, conn: Conn) {
        let Ok(write_half) = conn.try_clone() else {
            return;
        };
        let sink: Sink = Arc::new(Mutex::new(write_half));
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            match Request::parse(&line) {
                Err(message) => write_response(&sink, &Response::Error { message }),
                Ok(Request::Submit { id, cells, options }) => {
                    self.submit(&sink, id, cells, *options)
                }
                Ok(Request::Status) => {
                    let info = self.status();
                    write_response(&sink, &Response::Status(Box::new(info)));
                }
                Ok(Request::Cancel { job }) => self.cancel(&sink, job),
                Ok(Request::Shutdown) => {
                    write_response(&sink, &Response::Bye);
                    self.begin_shutdown();
                    return;
                }
            }
        }
    }

    fn submit(&self, sink: &Sink, id: String, cells: Vec<CellSpec>, options: ServeOptions) {
        // Key derivation builds each cell's netlist — keep it (and the
        // cache's disk reads plus verify-on-load SAT calls) outside the
        // state lock.
        let keys: Vec<u64> = cells.iter().map(|c| cell_key(c, &options)).collect();
        let mut rejected = 0u64;
        let mut cached: Vec<Option<Report>> = match &self.cache {
            Some(cache) => keys
                .iter()
                .map(|&k| match cache.load(k) {
                    // Verify-on-load (unless the submission opted out):
                    // re-check the stored certificate/witness against a
                    // freshly built instance before trusting the entry.
                    Some(report) if !options.certify || crate::spec::report_is_sound(&report) => {
                        Some(report)
                    }
                    Some(_) => {
                        cache.reject(k);
                        rejected += 1;
                        None
                    }
                    None => None,
                })
                .collect(),
            None => (0..keys.len()).map(|_| None).collect(),
        };

        let n = cells.len();
        let mut st = self.state.lock().unwrap();
        let job_id = st.next_job;
        st.next_job += 1;
        write_response(
            sink,
            &Response::Accepted {
                id,
                job: job_id,
                cells: n as u64,
            },
        );
        st.totals.cells += n as u64;
        st.totals.rejected += rejected;
        st.jobs.insert(
            job_id,
            Job {
                sink: sink.clone(),
                cells: cells.clone(),
                slots: vec![None; n],
                remaining: n,
                started: Instant::now(),
                stats: ServeStats {
                    cells: n as u64,
                    rejected,
                    ..ServeStats::default()
                },
            },
        );

        let mut queued = false;
        for (index, cell) in cells.into_iter().enumerate() {
            let key = keys[index];
            if let Some(entry) = st.done.get(&key) {
                let source = if entry.from_journal {
                    Source::Journal
                } else {
                    Source::Dedup
                };
                let report = entry.report.clone();
                deliver(
                    &mut st,
                    Delivery {
                        job: job_id,
                        index,
                        source,
                        report: &report,
                        solved: false,
                        crashes: 0,
                        retries: 0,
                    },
                );
            } else if let Some(inflight) = st.inflight.get_mut(&key) {
                inflight.subscribers.push(Subscriber {
                    job: job_id,
                    index,
                    dedup: true,
                });
            } else if let Some(report) = cached[index].take() {
                // Promote to the in-session done map so later identical
                // submissions dedup in memory instead of re-reading disk.
                st.done.insert(
                    key,
                    DoneEntry {
                        report: report.clone(),
                        from_journal: false,
                    },
                );
                deliver(
                    &mut st,
                    Delivery {
                        job: job_id,
                        index,
                        source: Source::Cache,
                        report: &report,
                        solved: false,
                        crashes: 0,
                        retries: 0,
                    },
                );
            } else {
                st.inflight.insert(
                    key,
                    InFlight {
                        cell,
                        options: options.clone(),
                        subscribers: vec![Subscriber {
                            job: job_id,
                            index,
                            dedup: false,
                        }],
                        attempts: 0,
                        crashes: 0,
                        retries: 0,
                    },
                );
                st.queue.push_back(key);
                queued = true;
            }
        }
        // An empty (or fully pre-served) submission finishes here.
        finish_if_done(&mut st, job_id);
        drop(st);
        if queued {
            self.work.notify_all();
        }
    }

    fn status(&self) -> StatusInfo {
        let st = self.state.lock().unwrap();
        StatusInfo {
            workers: self.workers as u64,
            active_jobs: st.jobs.len() as u64,
            queued: st.queue.len() as u64,
            inflight: st.inflight.len() as u64,
            totals: st.totals,
        }
    }

    fn cancel(&self, sink: &Sink, job_id: u64) {
        let mut st = self.state.lock().unwrap();
        write_response(sink, &Response::Cancelled { job: job_id });
        if !st.jobs.contains_key(&job_id) {
            return;
        }
        // Unsubscribe the job from every pending query. Queries left
        // without subscribers are discarded when a pool thread pops
        // them; a *running* one still completes into cache/journal.
        for inflight in st.inflight.values_mut() {
            inflight.subscribers.retain(|s| s.job != job_id);
        }
        let pending: Vec<(usize, CellSpec)> = {
            let job = &st.jobs[&job_id];
            job.slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_none())
                .map(|(i, _)| (i, job.cells[i].clone()))
                .collect()
        };
        for (index, cell) in pending {
            let report = undecided_report(
                &cell,
                InconclusiveReason::Other("cancelled by client".into()),
                Duration::ZERO,
                Vec::new(),
            );
            deliver(
                &mut st,
                Delivery {
                    job: job_id,
                    index,
                    source: Source::Cancelled,
                    report: &report,
                    solved: false,
                    crashes: 0,
                    retries: 0,
                },
            );
        }
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = Conn::connect(&self.addr);
    }

    // ---- pool side ----------------------------------------------------

    fn worker_loop(self: Arc<Shared>) {
        let mut proc: Option<WorkerProc> = None;
        loop {
            let Some((key, cell, options)) = self.next_task() else {
                return;
            };
            if proc.is_none() {
                match WorkerProc::spawn(&self.worker_cmd) {
                    Ok(p) => proc = Some(p),
                    Err(e) => {
                        let report = undecided_report(
                            &cell,
                            InconclusiveReason::Other(format!("cannot spawn worker: {e}")),
                            Duration::ZERO,
                            Vec::new(),
                        );
                        self.finish_key(key, report, false);
                        continue;
                    }
                }
            }
            let started = Instant::now();
            let deadline = watchdog(&cell, &options);
            match proc
                .as_mut()
                .expect("spawned above")
                .solve(&cell, &options, deadline)
            {
                Ok(resp) => self.finish_key(key, resp.report, true),
                Err(detail) => {
                    // The process is spent either way; Drop kills it.
                    proc = None;
                    if self.record_crash_and_maybe_retry(key) {
                        self.work.notify_one();
                        continue;
                    }
                    let report = undecided_report(
                        &cell,
                        InconclusiveReason::WorkerCrashed {
                            detail: detail.clone(),
                        },
                        started.elapsed(),
                        vec![format!(
                            "worker process died while solving {}: {detail}; retry also failed",
                            cell.label()
                        )],
                    );
                    self.finish_key(key, report, false);
                }
            }
        }
    }

    /// Blocks for the next live queued key; `None` means shutdown.
    fn next_task(&self) -> Option<(u64, CellSpec, ServeOptions)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(key) = st.queue.pop_front() {
                match st.inflight.get(&key) {
                    Some(inflight) if !inflight.subscribers.is_empty() => {
                        return Some((key, inflight.cell.clone(), inflight.options.clone()));
                    }
                    _ => {
                        // Every subscriber cancelled while it queued.
                        st.inflight.remove(&key);
                        continue;
                    }
                }
            }
            st = self.work.wait(st).unwrap();
        }
    }

    /// Returns true when the crashed key was requeued for its one retry.
    fn record_crash_and_maybe_retry(&self, key: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        st.totals.crashes += 1;
        let Some(inflight) = st.inflight.get_mut(&key) else {
            return false;
        };
        inflight.crashes += 1;
        if inflight.attempts == 0 {
            inflight.attempts = 1;
            inflight.retries += 1;
            st.totals.retries += 1;
            st.queue.push_back(key);
            true
        } else {
            false
        }
    }

    /// A query resolved (worker verdict or synthetic crash report):
    /// persist if decided, then fan out to every subscriber.
    fn finish_key(&self, key: u64, report: Report, solved: bool) {
        let decided = report.verdict.is_attack() || report.verdict.is_proof();
        if decided {
            if let Some(cache) = &self.cache {
                let _ = cache.store(key, &report);
            }
            if let Some(journal) = &self.journal {
                let _ = journal.lock().unwrap().append(key, &report);
            }
        }
        let mut st = self.state.lock().unwrap();
        let Some(inflight) = st.inflight.remove(&key) else {
            return;
        };
        if solved {
            st.totals.solved += 1;
        }
        if decided {
            st.done.insert(
                key,
                DoneEntry {
                    report: report.clone(),
                    from_journal: false,
                },
            );
        }
        for sub in inflight.subscribers {
            deliver(
                &mut st,
                Delivery {
                    job: sub.job,
                    index: sub.index,
                    source: if sub.dedup {
                        Source::Dedup
                    } else {
                        Source::Worker
                    },
                    report: &report,
                    solved: solved && !sub.dedup,
                    crashes: inflight.crashes,
                    retries: inflight.retries,
                },
            );
        }
    }
}

/// The watchdog is a liveness net, not the real budget: the worker
/// enforces `options.budget` itself, so only a wedged process (deadlock,
/// runaway allocation churn) should ever hit this.
fn watchdog(cell: &CellSpec, options: &ServeOptions) -> Duration {
    options.budget.saturating_mul(2)
        + Duration::from_millis(cell.delay_ms)
        + Duration::from_secs(30)
}

/// Streams one cell's report to its job (under the state lock) and, on
/// the last cell, the assembled campaign.
fn deliver(st: &mut State, d: Delivery<'_>) {
    let State { jobs, totals, .. } = st;
    let Some(job) = jobs.get_mut(&d.job) else {
        return; // job already finished (e.g. cancelled to completion)
    };
    if job.slots[d.index].is_some() {
        return;
    }
    job.slots[d.index] = Some(d.report.clone());
    job.remaining -= 1;
    match d.source {
        Source::Worker => {}
        Source::Cache => {
            job.stats.cache_hits += 1;
            totals.cache_hits += 1;
        }
        Source::Journal => {
            job.stats.journal_hits += 1;
            totals.journal_hits += 1;
        }
        Source::Dedup => {
            job.stats.dedup_hits += 1;
            totals.dedup_hits += 1;
        }
        Source::Cancelled => {
            job.stats.cancelled += 1;
            totals.cancelled += 1;
        }
    }
    if d.solved {
        job.stats.solved += 1;
    }
    job.stats.crashes += d.crashes;
    job.stats.retries += d.retries;
    write_response(
        &job.sink,
        &Response::Update {
            job: d.job,
            index: d.index as u64,
            source: d.source,
            report: Box::new(d.report.clone()),
        },
    );
    finish_if_done(st, d.job);
}

/// Emits `done` and retires the job once every slot is filled.
fn finish_if_done(st: &mut State, job_id: u64) {
    let finished = matches!(st.jobs.get(&job_id), Some(job) if job.remaining == 0);
    if !finished {
        return;
    }
    let job = st.jobs.remove(&job_id).expect("checked above");
    let campaign = CampaignReport {
        reports: job
            .slots
            .into_iter()
            .map(|slot| slot.expect("remaining == 0 means every slot is full"))
            .collect(),
        wall: job.started.elapsed(),
    };
    write_response(
        &job.sink,
        &Response::Done {
            job: job_id,
            stats: job.stats,
            campaign: Box::new(campaign),
        },
    );
}

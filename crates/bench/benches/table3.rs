//! **Table 3** — verification time of Contract Shadow Logic on SimpleOoO
//! augmented with the five §7.2 defences, under both contracts.
//!
//! Paper's result shape (red = attack, green = proof):
//!
//! | defence          | sandboxing   | constant-time |
//! |------------------|--------------|---------------|
//! | NoFwd-futuristic | PROOF 66min  | ATTACK 0.4s   |
//! | NoFwd-spectre    | PROOF 45h    | ATTACK 0.1s   |
//! | Delay-futuristic | PROOF 21min  | PROOF 10min   |
//! | Delay-spectre    | PROOF 151min | PROOF 37min   |
//! | DoM-spectre      | ATTACK 6.5m  | ATTACK 5.9min |
//!
//! Shapes of record: attacks are fast (seconds); proofs are much slower;
//! the conservative *futuristic* variants prove faster than the *spectre*
//! variants; the same shadow logic is reused across all ten cells.

use csl_bench::{bmc_depth, budget_secs, header, paper_cell, show, verifier};
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;

fn main() {
    header(
        "TABLE 3: defence mechanisms on SimpleOoO (Contract Shadow Logic)",
        "paper Table 3",
    );
    let mut rows = Vec::new();
    for defense in Defense::TABLE3 {
        let mut cells = Vec::new();
        for contract in Contract::ALL {
            let expect_secure = defense.expected_secure(contract == Contract::ConstantTime);
            // Insecure cells only need attack search; secure cells get the
            // full proof pipeline and a larger budget, mirroring the
            // paper's attack-fast / proof-slow asymmetry.
            let base = if expect_secure {
                verifier(budget_secs(300), bmc_depth(8), false)
            } else {
                verifier(budget_secs(120), bmc_depth(14), true)
            };
            let report = base
                .design(DesignKind::SimpleOoo(defense))
                .contract(contract)
                .scheme(Scheme::Shadow)
                .query()
                .expect("design and contract are set")
                .run();
            show(
                &format!("{} / {}", defense.name(), contract.name()),
                &report,
            );
            cells.push(format!(
                "{}({:.0}s)",
                paper_cell(&report.verdict),
                report.elapsed.as_secs_f64()
            ));
        }
        rows.push((defense.name(), cells));
    }
    println!();
    println!(
        "{:<20} {:<18} {:<18}",
        "defence", "sandboxing", "constant-time"
    );
    for (name, cells) in rows {
        println!("{name:<20} {:<18} {:<18}", cells[0], cells[1]);
    }
}

//! **Table 2** — comparing Baseline, LEAVE, UPEC and Contract Shadow Logic
//! on five processor designs under the sandboxing contract.
//!
//! Paper's result shape:
//!
//! | scheme   | Sodor | SimpleOoO-S | SimpleOoO | Ridecore | BOOM |
//! |----------|-------|-------------|-----------|----------|------|
//! | Baseline | T/O   | T/O         | ATTACK    | ATTACK   |  -   |
//! | LEAVE    | PROOF | UNKNOWN(⚠)  | UNKNOWN(⚠)|    -     |  -   |
//! | UPEC     |  -    |      -      |     -     |    -     | ATTACK (partial) |
//! | Ours     | PROOF | PROOF       | ATTACK    | ATTACK   | ATTACK |
//!
//! (`-` = not evaluated in the paper; we run every cell.)
//!
//! The whole matrix runs through the campaign runner: cells in parallel
//! on the worker pool, engines inside each cell racing as a portfolio.
//! Budgets stand in for the 7-day timeout; tune with `CSL_BUDGET_SECS`
//! (uniform override) or `CSL_FAST=1`.

use csl_bench::{bmc_depth, budget_secs, header, show, show_campaign, table2_matrix};

fn main() {
    header(
        "TABLE 2: scheme comparison, sandboxing contract",
        "paper Table 2",
    );
    // Proof-capable budget; the BMC prefix is kept shallow so the proof
    // engines (Houdini/k-induction/PDR) are not starved. The baseline is
    // expected to burn its budget on secure designs and time out.
    let report = table2_matrix(budget_secs(180), bmc_depth(6)).run_all();
    for r in &report.reports {
        show(&r.label(), r);
    }
    show_campaign(&report);
}

//! **Table 2** — comparing Baseline, LEAVE, UPEC and Contract Shadow Logic
//! on five processor designs under the sandboxing contract.
//!
//! Paper's result shape:
//!
//! | scheme   | Sodor | SimpleOoO-S | SimpleOoO | Ridecore | BOOM |
//! |----------|-------|-------------|-----------|----------|------|
//! | Baseline | T/O   | T/O         | ATTACK    | ATTACK   |  -   |
//! | LEAVE    | PROOF | UNKNOWN(⚠)  | UNKNOWN(⚠)|    -     |  -   |
//! | UPEC     |  -    |      -      |     -     |    -     | ATTACK (partial) |
//! | Ours     | PROOF | PROOF       | ATTACK    | ATTACK   | ATTACK |
//!
//! (`-` = not evaluated in the paper; we run every cell.)
//!
//! Budgets stand in for the 7-day timeout; tune with `CSL_BUDGET_SECS`
//! (uniform override) or `CSL_FAST=1`.

use csl_bench::{bmc_depth, budget_secs, header, paper_cell, show, task_options};
use csl_contracts::Contract;
use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
use csl_cpu::Defense;

fn main() {
    header(
        "TABLE 2: scheme comparison, sandboxing contract",
        "paper Table 2",
    );
    let designs = [
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::DelaySpectre), // SimpleOoO-S
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ];
    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    for scheme in Scheme::ALL {
        let mut cells = Vec::new();
        for design in designs {
            let cfg = InstanceConfig::new(design, Contract::Sandboxing);
            // Proof-capable budget; the BMC prefix is kept shallow so the
            // proof engines (Houdini/k-induction/PDR) get the budget's
            // remainder. The baseline is expected to burn it on secure
            // designs and time out.
            let opts = task_options(budget_secs(180), bmc_depth(6), false);
            let report = verify(scheme, &cfg, &opts);
            show(&format!("{} / {}", scheme.name(), design.name()), &report);
            cells.push(format!(
                "{}({:.0}s)",
                paper_cell(&report.verdict),
                report.elapsed.as_secs_f64()
            ));
        }
        rows.push((scheme.name().to_string(), cells));
    }
    println!();
    println!(
        "{:<22} {:<16} {:<16} {:<16} {:<16} {:<16}",
        "scheme", "InOrder(Sodor)", "SimpleOoO-S", "SimpleOoO", "SuperOoO", "BigOoO(BOOM)"
    );
    for (name, cells) in rows {
        print!("{name:<22} ");
        for c in cells {
            print!("{c:<16} ");
        }
        println!();
    }
}

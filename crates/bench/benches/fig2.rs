//! **Figure 2** — verification time vs structure size.
//!
//! Sweeps the register file, data memory, and reorder buffer over
//! {2, 4, 8, 16} entries (one structure at a time, others at the default
//! 4), for (a) NoFwd-futuristic under sandboxing and (b) Delay-spectre
//! under constant-time — the exact design/contract points of the paper's
//! Figure 2.
//!
//! Paper's shape: ROB size dominates (exponential growth, log-scale axis);
//! the register file is negligible; data memory has limited impact on
//! sandboxing and a larger one on constant-time.
//!
//! Because unbounded proofs exceed any sane bench budget even at the
//! smallest sizes on our from-scratch PDR (the paper's own y-axis tops out
//! near 1000 minutes on JasperGold), each point reports the *bounded
//! verification cost*: wall time for the attack search to sweep the design
//! clean to a fixed BMC depth. That cost tracks the same solver effort the
//! paper's proving time measures, completes within bench budgets, and
//! exposes the same structural scaling (ROB explosive, regfile flat,
//! memory mild and contract-dependent).

use csl_bench::{bmc_depth, budget_secs, header, paper_cell, verifier};
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::{CpuConfig, Defense};
use csl_isa::IsaConfig;

#[derive(Clone, Copy, Debug)]
enum Axis {
    Regfile,
    DataMem,
    Rob,
}

fn configure(base: CpuConfig, axis: Axis, n: usize) -> CpuConfig {
    let mut c = base;
    match axis {
        Axis::Regfile => c.isa.nregs = n,
        Axis::DataMem => c.isa.dmem_size = n,
        Axis::Rob => c.rob_size = n,
    }
    c
}

fn sweep(title: &str, defense: Defense, contract: Contract) {
    println!();
    println!("--- {title} ---");
    println!(
        "{:<10} {:>6} {:>10} {:>10}",
        "axis", "size", "verdict", "secs"
    );
    for axis in [Axis::Regfile, Axis::DataMem, Axis::Rob] {
        for n in [2usize, 4, 8, 16] {
            if matches!(axis, Axis::Regfile) && n == 2 && defense == Defense::DomSpectre {
                continue;
            }
            let base = CpuConfig {
                isa: IsaConfig::default(),
                rob_size: 4,
                width: 1,
                defense,
            };
            let cpu = configure(base, axis, n);
            let report = verifier(budget_secs(120), bmc_depth(8), true)
                .design(DesignKind::SimpleOoo(defense))
                .contract(contract)
                .scheme(Scheme::Shadow)
                .cpu_override(cpu)
                .query()
                .expect("design and contract are set")
                .run();
            println!(
                "{:<10} {:>6} {:>10} {:>10.1}",
                format!("{axis:?}"),
                n,
                paper_cell(&report.verdict),
                report.elapsed.as_secs_f64()
            );
        }
    }
}

fn main() {
    header(
        "FIGURE 2: verification time vs structure size",
        "paper Fig. 2 (a) and (b)",
    );
    sweep(
        "(a) NoFwd-futuristic, sandboxing contract",
        Defense::NoFwdFuturistic,
        Contract::Sandboxing,
    );
    sweep(
        "(b) Delay-spectre, constant-time contract",
        Defense::DelaySpectre,
        Contract::ConstantTime,
    );
}

//! **Ablation** — why the two §5.2 requirements matter, and what the
//! scheme's structure buys.
//!
//! 1. *Instruction-inclusion requirement* (§5.2.1): with drain tracking
//!    disabled, the leakage assertion can fire before in-flight
//!    bound-to-commit instructions were contract-checked. Counterexamples
//!    then appear at depths where the sound scheme has none, and extending
//!    their replay shows the program violating the software constraint —
//!    false attacks.
//! 2. *Synchronisation requirement* (§5.2.2): the naive cycle-aligned
//!    record comparison (what LEAVE effectively does) collapses on
//!    out-of-order cores — compare the LEAVE rows of table2 — while the
//!    skid-FIFO + pause machinery keeps the comparison index-aligned; its
//!    overflow assertions stay unreachable with sync on (checked here).
//! 3. Baseline vs shadow head-to-head: same attack found by both (§7.1.2:
//!    "similar performance in finding attacks"), and the two single-cycle
//!    machines the shadow scheme eliminates are visible in the instance
//!    statistics.

use csl_bench::{bmc_depth, budget_secs, header, show, verifier};
use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme, ShadowOptions};
use csl_cpu::Defense;
use csl_mc::{bmc, BmcResult, Sim, SimState, Trace, TransitionSystem, Verdict};
use csl_sat::Budget;
use std::time::{Duration, Instant};

fn assume_violated_extended(aig: &csl_hdl::Aig, trace: &Trace, extra: usize) -> bool {
    let mut sim = Sim::new(aig);
    let mut state = SimState::reset(aig);
    for &(i, v) in &trace.initial_latches {
        state.set_latch(i as usize, v);
    }
    let mut violated = false;
    for cycle in 0..trace.depth() + extra {
        let r = sim.step(&state, |i, _| trace.input(cycle, i as u32).unwrap_or(false));
        violated |= !r.violated_assumes.is_empty();
        state = r.next;
    }
    violated
}

fn main() {
    header(
        "ABLATION: the §5.2 requirements and the scheme structure",
        "paper §5.2 / §4.2 / §7.1.2",
    );
    let budget = Budget::until(Instant::now() + Duration::from_secs(budget_secs(240)));

    println!("-- (1) instruction-inclusion requirement (drain tracking) --");
    let base = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow);
    let sound = base
        .clone()
        .query()
        .expect("design and contract are set")
        .instance();
    let ts = TransitionSystem::shared(sound.aig().clone(), false);
    let genuine = match bmc(&ts, bmc_depth(9), budget.clone()) {
        BmcResult::Cex(t) => {
            let clean = !assume_violated_extended(sound.aig(), &t, 16);
            println!(
                "sound scheme: attack at depth {}, constraint-clean in extension: {clean}",
                t.depth()
            );
            Some(t)
        }
        other => {
            println!("sound scheme: {other:?}");
            None
        }
    };
    let broken = base
        .clone()
        .shadow(ShadowOptions {
            enable_drain: false,
            ..ShadowOptions::default()
        })
        .with_candidates(false)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts2 = TransitionSystem::shared(broken.aig().clone(), false);
    let shallow = genuine.as_ref().map(|t| t.depth() - 1).unwrap_or(5);
    match bmc(&ts2, shallow, budget.clone()) {
        BmcResult::Cex(t) => {
            let violated = assume_violated_extended(broken.aig(), &t, 16);
            let verdict = if violated {
                "FALSE ATTACK (the §5.2.1 failure mode)"
            } else if genuine.as_ref().is_some_and(|g| t.depth() >= g.depth()) {
                "coincides with the genuine attack (failure mode not \
                 expressible at MiniISA commit latency)"
            } else {
                "shallower yet constraint-clean — inspect manually"
            };
            println!(
                "no-drain scheme: cex at depth {}, constraint violated in \
                 extension: {violated} => {verdict}",
                t.depth()
            );
        }
        other => println!("no-drain scheme at depth {shallow}: {other:?}"),
    }

    println!();
    println!("-- (2) synchronisation requirement (skid FIFOs + pause) --");
    println!(
        "see table2's LEAVE rows: the naive cycle-aligned comparison proves \
         the in-order core but collapses on every OoO core."
    );
    // Positive guarantee: with sync on, the FIFO overflow assertions are
    // unreachable within the bound even on the timing-divergent DoM core.
    let task = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::DomSpectre))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts3 = TransitionSystem::shared(task.aig().clone(), false);
    match bmc(&ts3, bmc_depth(10), budget) {
        BmcResult::Cex(t) => println!(
            "DoM cex at depth {}: bad `{}` (a leak, never an overflow)",
            t.depth(),
            t.bad_name
        ),
        other => println!("DoM: {other:?}"),
    }

    println!();
    println!("-- (3) attack finding: baseline vs shadow on insecure SimpleOoO --");
    for scheme in [Scheme::Baseline, Scheme::Shadow] {
        let report = verifier(budget_secs(120), bmc_depth(10), true)
            .design(DesignKind::SimpleOoo(Defense::None))
            .contract(Contract::Sandboxing)
            .scheme(scheme)
            .query()
            .expect("design and contract are set")
            .run();
        show(&format!("{} attack search", scheme.name()), &report);
        if let Verdict::Attack(t) = &report.verdict {
            println!("    attack depth {}", t.depth());
        }
    }

    println!();
    println!("-- (4) instance sizes (machines eliminated by the shadow scheme) --");
    for scheme in [Scheme::Baseline, Scheme::Shadow] {
        let task = Verifier::new()
            .design(DesignKind::SimpleOoo(Defense::None))
            .contract(Contract::Sandboxing)
            .scheme(scheme)
            .query()
            .expect("design and contract are set")
            .instance();
        println!(
            "{:<10} latches={:<5} ands={:<6} machines={}",
            scheme.name(),
            task.aig().num_latches(),
            task.aig().num_ands(),
            if scheme == Scheme::Baseline { 4 } else { 2 },
        );
    }
}

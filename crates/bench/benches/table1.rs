//! **Table 1** — the design inventory: processor configurations and
//! shadow-logic sizes.
//!
//! The paper reports source-code sizes and manual effort; the mechanised
//! equivalents here are netlist statistics per design (latches and AND
//! gates of one processor copy) and the size of the shadow instrumentation
//! (monitor latches), plus the §5.1 observation that shadow complexity
//! tracks the commit width rather than the processor size.

use csl_bench::header;
use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::TransitionSystem;

fn main() {
    header(
        "TABLE 1: processor and shadow-logic inventory",
        "paper Table 1",
    );
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>10} {:>8} {:>7}",
        "design", "width", "rob", "cpu-lat", "shadow-lat", "ands", "COI-lat"
    );
    for design in [
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        DesignKind::SimpleOoo(Defense::DomSpectre),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ] {
        let query = Verifier::new()
            .design(design)
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Shadow)
            .query()
            .expect("design and contract are set");
        let cpu = query.config().cpu_config();
        // Table 1 inventories the instance as *built*; preparation
        // statistics are prepprobe's job.
        let task = query.raw_instance();
        let stats = task.aig.stats_by_prefix(&["cpu1.", "cpu2.", "shadow."]);
        let ts = TransitionSystem::shared(task.aig.clone(), false);
        println!(
            "{:<22} {:>8} {:>9} {:>9} {:>10} {:>8} {:>7}",
            design.name(),
            cpu.width,
            cpu.rob_size,
            stats[0].latches,
            stats[2].latches,
            task.aig.num_ands(),
            ts.active_latches().len(),
        );
    }
    println!();
    println!(
        "note: one shadow-logic implementation serves every design above; \
         only the record width (contract) and FIFO depth (commit width) vary."
    );
}

//! **§7.1.4** — iterative attack discovery on the BOOM stand-in, and the
//! comparison with UPEC's fixed speculation source.
//!
//! Paper's sequence: (1) a misalignment-exception attack (120 min), then
//! after excluding misaligned programs (2) an illegal-access-exception
//! attack (8.7 h), then after excluding those (3) a branch-misprediction
//! attack under constant-time (1.4 h), and finally (4) a timeout once all
//! discovered sources are excluded. UPEC, whose manual invariants assume
//! branch misprediction is the only speculation source, cannot find (1) or
//! (2).

use csl_bench::{bmc_depth, budget_secs, header, show, verifier};
use csl_contracts::Contract;
use csl_core::{DesignKind, ExcludeRule, Scheme};
use csl_mc::Verdict;

fn round(excludes: Vec<ExcludeRule>, scheme: Scheme, label: &str) -> Option<String> {
    let report = verifier(budget_secs(240), bmc_depth(12), true)
        .design(DesignKind::BigOoo)
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .excludes(&excludes)
        .query()
        .expect("design and contract are set")
        .run();
    show(label, &report);
    match &report.verdict {
        Verdict::Attack(t) => Some(t.bad_name.clone()),
        _ => None,
    }
}

fn main() {
    header(
        "§7.1.4: attack discovery on BigOoO (BOOM stand-in), sandboxing",
        "paper §7.1.4 attack sequence",
    );
    println!("-- Contract Shadow Logic: no speculation source specified --");
    round(
        vec![],
        Scheme::Shadow,
        "round 1: unrestricted program space",
    );
    round(
        vec![ExcludeRule::MisalignedAccesses],
        Scheme::Shadow,
        "round 2: misaligned accesses excluded",
    );
    round(
        vec![
            ExcludeRule::MisalignedAccesses,
            ExcludeRule::IllegalAccesses,
        ],
        Scheme::Shadow,
        "round 3: all exception sources excluded",
    );
    round(
        vec![
            ExcludeRule::MisalignedAccesses,
            ExcludeRule::IllegalAccesses,
            ExcludeRule::TakenBranches,
        ],
        Scheme::Shadow,
        "round 4: every discovered source excluded",
    );
    println!();
    println!("-- UPEC approximation: speculation source fixed to branches --");
    round(vec![], Scheme::Upec, "UPEC, unrestricted program space");
    println!(
        "\nUPEC's attack (when found) exploits branch misprediction only; \
         the exception attacks of rounds 1-2 are outside its model."
    );
}

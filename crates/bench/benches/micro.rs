//! Criterion micro-benchmarks for the substrate layers: SAT solving,
//! netlist construction, simulation throughput, and BMC frame encoding.
//! These track the performance of the infrastructure the experiment
//! harnesses sit on.

use criterion::{criterion_group, criterion_main, Criterion};
use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme};
use csl_cpu::{build_standalone, CoreKind, CpuConfig, Defense};
use csl_isa::progen;
use csl_mc::{InitMode, Sim, TransitionSystem, Unroller};
use csl_sat::{Lit, SolveResult, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random 3-SAT near the phase transition.
fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/random3sat_100v", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(42);
            let n = 100;
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            for _ in 0..(42 * n / 10) {
                let cl: Vec<Lit> = (0..3)
                    .map(|_| Var::from_index(rng.gen_range(0..n)).lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&cl);
            }
            let r = s.solve();
            assert!(matches!(r, SolveResult::Sat | SolveResult::Unsat));
        })
    });
}

fn shadow_query() -> csl_core::api::Query {
    Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
}

fn bench_netlist_build(c: &mut Criterion) {
    c.bench_function("hdl/build_shadow_instance", |b| {
        let query = shadow_query();
        b.iter(|| {
            // Raw build only: the preparation pipeline's cost is
            // prepprobe's subject, not this substrate benchmark's.
            let task = query.raw_instance();
            assert!(task.aig.num_ands() > 1000);
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let core = build_standalone(CoreKind::Ooo, &CpuConfig::simple_ooo(Defense::None));
    let mut rng = StdRng::seed_from_u64(7);
    let imem = progen::random_program(&core.cfg.isa, &progen::OpMix::default(), &mut rng);
    let dmem = progen::random_dmem(&core.cfg.isa, &mut rng);
    c.bench_function("sim/simple_ooo_64_cycles", |b| {
        b.iter(|| {
            let events = core.run(&imem, &dmem, 64);
            assert!(!events.is_empty());
        })
    });
}

fn bench_unroll(c: &mut Criterion) {
    let task = shadow_query().instance();
    let ts = TransitionSystem::shared(task.aig().clone(), false);
    c.bench_function("mc/unroll_8_frames", |b| {
        b.iter(|| {
            let mut u = Unroller::new(&ts, InitMode::Reset);
            u.assert_assumes_through(8);
            let _ = u.bad_any_at(8);
            assert!(u.solver.num_clauses() > 1000);
        })
    });
    c.bench_function("sim/replay_throughput", |b| {
        let mut sim = Sim::new(ts.aig());
        let state = csl_mc::SimState::reset(ts.aig());
        b.iter(|| {
            let r = sim.step(&state, |_, _| false);
            assert!(r.values.bit(csl_hdl::Bit::TRUE));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sat, bench_netlist_build, bench_simulation, bench_unroll
}
criterion_main!(benches);

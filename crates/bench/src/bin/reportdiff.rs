//! CI regression gate over two archived campaign reports.
//!
//! `reportdiff <old.json> <new.json>` pairs cells by scheme × design ×
//! contract, prints every verdict change, and exits nonzero when the new
//! run *loses or flips* a decisive verdict (a proof or attack that
//! became a timeout/unknown, or one decisive kind turning into the
//! other) — `CampaignDiff::has_regressions`. UNK ↔ T/O churn and newly
//! decisive cells pass.
//!
//! Exit codes: 0 clean-or-benign-changes, 1 regressions, 2 usage/IO/
//! parse errors.

use csl_core::api::CampaignReport;

fn load(path: &str) -> CampaignReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reportdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    CampaignReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("reportdiff: {path} is not a campaign report: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: reportdiff <old.json> <new.json>");
        std::process::exit(2);
    };
    let old = load(old_path);
    let new = load(new_path);
    let diff = old.diff(&new);
    print!("{}", diff.render());
    if diff.has_regressions() {
        eprintln!("reportdiff: decisive verdicts regressed between {old_path} and {new_path}");
        std::process::exit(1);
    }
}

//! Instance-preparation probe: quantifies the netlist reduction and its
//! effect on solve time.
//!
//! Part 1 builds every Table-2 cell's instance raw and prepared and
//! prints the per-pass node/latch reductions — the evidence that the
//! `csl_hdl::xform` pipeline actually shrinks the two-machine product
//! instances (exit code 1 if no cell shows an AND reduction).
//!
//! Part 2 runs the smoke cells twice — preparation off, then on — and
//! compares verdicts cell by cell plus median wall time, checking the
//! pipeline is behaviour-preserving: a decided raw verdict must be
//! reproduced exactly, while an undecided one may only be *upgraded*
//! (the reduction deciding a cell the raw instance times out on is the
//! point of the pass pipeline). Every attack returned with preparation
//! on is replayed on the *raw* netlist to prove the trace came back in
//! original vocabulary.
//!
//! `--json <path>` / `--csv <path>` dump the preparation-on runs as a
//! structured campaign report (per-pass stats included) for CI to
//! archive. Preparation runs never use the session cache: a cache hit
//! would skip the pipeline and defeat the probe.

use std::time::Duration;

use csl_bench::{
    bmc_depth, budget_secs, median_duration, report_args, show_pass_stats, smoke_cells,
    table2_designs, write_reports,
};
use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, Mode, PrepareConfig, Report, Verifier};
use csl_core::{CampaignCell, Scheme};
use csl_mc::{Sim, Verdict};

fn query_for(
    cell: &CampaignCell,
    prepare: PrepareConfig,
    budget_s: u64,
    depth: usize,
) -> csl_core::api::Query {
    Verifier::new()
        .design(cell.design)
        .contract(cell.contract)
        .scheme(cell.scheme)
        .mode(Mode::Portfolio)
        .prepare(prepare)
        .budget(Budget::wall(Duration::from_secs(budget_s)))
        .bmc_depth(depth)
        .query()
        .expect("cell carries design and contract")
}

fn main() {
    let args = report_args("prepprobe");
    if let Some(dir) = &args.cache {
        println!("note: prepprobe always bypasses the result cache (ignoring {dir})");
    }
    let budget = budget_secs(30);
    let depth = bmc_depth(10);
    let wall = std::time::Instant::now();

    println!("== part 1: netlist reduction on the Table-2 cells ==");
    let mut reduced_cells = 0usize;
    for design in table2_designs() {
        let cell = CampaignCell {
            scheme: Scheme::Shadow,
            design,
            contract: Contract::Sandboxing,
        };
        let q = query_for(&cell, PrepareConfig::on(), budget, depth);
        let raw = q.raw_instance();
        // Prepare the instance we already built instead of letting
        // Query::instance() rebuild the raw netlist a second time.
        let prepared = csl_mc::prepare(&raw, &PrepareConfig::on(), q.options().keep_probes);
        let (ra, rl) = (raw.aig.num_ands(), raw.aig.num_latches());
        let (pa, pl) = (prepared.aig().num_ands(), prepared.aig().num_latches());
        let pct = |before: usize, after: usize| {
            if before == 0 {
                0.0
            } else {
                100.0 * (before - after) as f64 / before as f64
            }
        };
        println!(
            "{:<44} ands {ra:>6} -> {pa:<6} (-{:.1}%)  latches {rl:>5} -> {pl:<5} (-{:.1}%)",
            cell.label(),
            pct(ra, pa),
            pct(rl, pl),
        );
        show_pass_stats(&prepared.stats);
        if pa < ra {
            reduced_cells += 1;
        }
    }

    println!();
    println!("== part 2: preparation on vs off over the smoke cells ==");
    let mut archived: Vec<Report> = Vec::new();
    let mut off_walls = Vec::new();
    let mut on_walls = Vec::new();
    let mut agreed = true;
    let mut lifted_ok = true;
    let decided = |cell: &str| cell == "CEX" || cell == "PROOF";
    for cell in smoke_cells() {
        let off = query_for(&cell, PrepareConfig::off(), budget, depth).run();
        let on_query = query_for(&cell, PrepareConfig::on(), budget, depth);
        let on = on_query.run();
        // Decided verdicts must match; an undecided raw cell may only be
        // upgraded by the reduction, never the other way round.
        let same = off.cell() == on.cell();
        let ok = same || (!decided(off.cell()) && decided(on.cell()));
        agreed &= ok;
        // An attack from the prepared run must be expressed in raw
        // vocabulary: replay it on the raw netlist.
        let replay = match &on.verdict {
            Verdict::Attack(trace) => {
                let raw = on_query.raw_instance();
                let (assumes_ok, bad) = Sim::new(&raw.aig).replay(trace);
                lifted_ok &= assumes_ok && bad;
                if assumes_ok && bad {
                    "  lifted cex replays on raw netlist"
                } else {
                    "  << LIFTED CEX FAILED RAW REPLAY"
                }
            }
            _ => "",
        };
        println!(
            "{:<44} off {:6} [{:.1}s]  on {:6} [{:.1}s]{}{replay}",
            cell.label(),
            off.cell(),
            off.elapsed.as_secs_f64(),
            on.cell(),
            on.elapsed.as_secs_f64(),
            if same {
                ""
            } else if ok {
                "  (prepared instance decided inside the budget)"
            } else {
                "  << VERDICT MISMATCH"
            }
        );
        off_walls.push(off.elapsed);
        on_walls.push(on.elapsed);
        archived.push(on);
    }
    let off_median = median_duration(off_walls);
    let on_median = median_duration(on_walls);
    println!(
        "median wall: off {:.2}s, on {:.2}s ({})",
        off_median.as_secs_f64(),
        on_median.as_secs_f64(),
        if on_median <= off_median + Duration::from_millis(500) {
            "preparation is not a slowdown"
        } else {
            "preparation is slower here"
        }
    );

    let campaign = CampaignReport {
        reports: archived,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);

    let mut failed = false;
    if reduced_cells == 0 {
        println!("FAIL: no Table-2 cell showed an AND reduction");
        failed = true;
    }
    if !agreed {
        println!("FAIL: preparation flipped or downgraded at least one verdict");
        failed = true;
    }
    if !lifted_ok {
        println!("FAIL: a lifted counterexample did not replay on the raw netlist");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: {reduced_cells}/{} cells reduced, verdicts identical, traces lift",
        table2_designs().len()
    );
}

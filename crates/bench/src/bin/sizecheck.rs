use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::TransitionSystem;

fn show(label: &str, scheme: Scheme) {
    let query = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .query()
        .expect("design and contract are set");
    let raw = query.raw_instance();
    // Prepare the already-built raw instance rather than rebuilding it
    // through Query::instance().
    let prepared = csl_mc::prepare(
        &raw,
        &csl_mc::PrepareConfig::on(),
        query.options().keep_probes,
    );
    let ts = TransitionSystem::shared(prepared.aig().clone(), false);
    println!(
        "{label}: raw latches={} ands={} | prepared latches={} ands={} | COI {}",
        raw.aig.num_latches(),
        raw.aig.num_ands(),
        prepared.aig().num_latches(),
        prepared.aig().num_ands(),
        ts.summary()
    );
    csl_bench::show_pass_stats(&prepared.stats);
}

fn main() {
    show("shadow", Scheme::Shadow);
    show("baseline", Scheme::Baseline);
}

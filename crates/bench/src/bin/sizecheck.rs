use csl_contracts::Contract;
use csl_core::{build_baseline_instance, build_shadow_instance, DesignKind, InstanceConfig};
use csl_cpu::Defense;
use csl_mc::TransitionSystem;
fn main() {
    let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    let s = build_shadow_instance(&cfg);
    let b = build_baseline_instance(&cfg);
    let ts_s = TransitionSystem::new(s.aig.clone(), false);
    let ts_b = TransitionSystem::new(b.aig.clone(), false);
    println!(
        "shadow:   latches={} ands={} | COI {}",
        s.aig.num_latches(),
        s.aig.num_ands(),
        ts_s.summary()
    );
    println!(
        "baseline: latches={} ands={} | COI {}",
        b.aig.num_latches(),
        b.aig.num_ands(),
        ts_b.summary()
    );
}

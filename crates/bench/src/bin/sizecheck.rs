use csl_contracts::Contract;
use csl_core::api::Verifier;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::TransitionSystem;

fn main() {
    let base = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing);
    let s = base
        .clone()
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .instance();
    let b = base
        .scheme(Scheme::Baseline)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts_s = TransitionSystem::new(s.aig.clone(), false);
    let ts_b = TransitionSystem::new(b.aig.clone(), false);
    println!(
        "shadow:   latches={} ands={} | COI {}",
        s.aig.num_latches(),
        s.aig.num_ands(),
        ts_s.summary()
    );
    println!(
        "baseline: latches={} ands={} | COI {}",
        b.aig.num_latches(),
        b.aig.num_ands(),
        ts_b.summary()
    );
}

//! CI gate for the certificate subsystem: every decided verdict must be
//! independently auditable, cheaply, and the cache must refuse to serve
//! what it cannot re-audit.
//!
//! Four checks, each fatal (exit 1):
//!
//! 1. **Corpus evidence** — on the Table-2 corpus, every decided cell's
//!    evidence re-checks against the freshly built *raw* instance (an
//!    attack replays, a proof's certificate passes its obligations, a
//!    proof without a certificate fails), and each re-check finishes in
//!    well under the cell's original solve time.
//! 2. **Bin accepts genuine reports** — `csl-certify` exits 0 on an
//!    archived proof report and an archived attack report.
//! 3. **Tampering exits 1** — a stripped certificate, an out-of-range
//!    clause literal, a flipped restored constant / zeroed `k`, and a
//!    truncated attack trace each make `csl-certify` exit 1.
//! 4. **Verify-on-load round-trip** — a genuine report stored in a
//!    `ReportCache` is served on rerun; a forged entry under the same
//!    key is rejected (counted in `CacheStats::rejected`), evicted, and
//!    the cell re-solves; the restored entry serves again.
//!
//! `--json <path>` archives the gate outcome plus per-cell solve/check
//! timings for the CI artifact trail.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use csl_bench::{bmc_depth, budget_secs, table2_matrix, verifier};
use csl_certify::{check_certificate, check_witness, CertKind, Witness};
use csl_contracts::Contract;
use csl_core::api::{Json, Query, Report, ReportCache};
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::Verdict;

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            println!("  FAIL: {what}");
            self.failures.push(what.to_string());
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(format!("target/certprobe/{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// The raw instance a report's identity pins down — same rebuild the
/// `csl-certify` bin and the cache's verify-on-load perform.
fn raw_task(report: &Report) -> csl_mc::SafetyCheck {
    csl_core::api::Verifier::new()
        .design(report.design)
        .contract(report.contract)
        .scheme(report.scheme)
        .query()
        .expect("reports always carry a design and a contract")
        .raw_instance()
}

/// Re-checks one decided report, returning (accepted, check wall time).
fn audit(report: &Report) -> (bool, Duration) {
    let start = Instant::now();
    let ok = match &report.verdict {
        Verdict::Attack(trace) => {
            check_witness(&raw_task(report).aig, &Witness::new((**trace).clone())).is_ok()
        }
        Verdict::Proof(_) => report
            .certificate
            .as_ref()
            .is_some_and(|cert| check_certificate(&raw_task(report), cert).is_ok()),
        _ => true,
    };
    (ok, start.elapsed())
}

/// Runs the `csl-certify` binary (a sibling of this one) on a report
/// file and returns its exit code.
fn certify_bin(bin: &std::path::Path, report_path: &std::path::Path) -> Option<i32> {
    std::process::Command::new(bin)
        .arg(report_path)
        .output()
        .ok()
        .and_then(|out| out.status.code())
}

fn write_report(dir: &std::path::Path, name: &str, report: &Report) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, report.to_json()).expect("write tamper fixture");
    path
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next(),
            // Accepted for CI-invocation symmetry with the other
            // probes; certprobe always bypasses the session cache for
            // the corpus and uses a fresh scratch cache for gate 4.
            "--no-cache" => {}
            other => {
                eprintln!("usage: certprobe [--json <path>] [--no-cache] (got `{other}`)");
                return ExitCode::from(2);
            }
        }
    }

    let mut gate = Gate {
        failures: Vec::new(),
    };

    // -- 1: corpus evidence -----------------------------------------------
    let corpus = table2_matrix(budget_secs(60), bmc_depth(8)).no_cache();
    println!(
        "certprobe: Table-2 corpus, {} cells, budget {}s",
        corpus.cells().len(),
        budget_secs(60)
    );
    let campaign = corpus.run_all();
    let mut rows: Vec<(String, &'static str, i64, i64)> = Vec::new();
    let mut decided = 0usize;
    let mut audited_ok = 0usize;
    let mut fast_enough = 0usize;
    let mut total_solve = Duration::ZERO;
    let mut total_check = Duration::ZERO;
    for report in &campaign.reports {
        if !(report.verdict.is_attack() || report.verdict.is_proof()) {
            continue;
        }
        decided += 1;
        let (ok, check) = audit(report);
        audited_ok += ok as usize;
        // "Well under the solve time", with a floor so trivially fast
        // solves (the whole cell in milliseconds) don't flake the gate.
        let bound = report.elapsed.max(Duration::from_millis(500));
        fast_enough += (check <= bound) as usize;
        total_solve += report.elapsed;
        total_check += check;
        println!(
            "  {:44} {:6} solve {:>7.2}s check {:>6.3}s{}",
            report.label(),
            report.cell(),
            report.elapsed.as_secs_f64(),
            check.as_secs_f64(),
            if ok { "" } else { "  REJECTED" }
        );
        rows.push((
            report.label(),
            report.cell(),
            report.elapsed.as_millis() as i64,
            check.as_millis() as i64,
        ));
    }
    gate.check(
        decided >= 1,
        "the corpus decides at least one cell under this budget",
    );
    gate.check(
        audited_ok == decided,
        &format!("every decided cell's evidence re-checks ({audited_ok}/{decided})"),
    );
    gate.check(
        fast_enough == decided,
        &format!("every re-check runs in well under the solve time ({fast_enough}/{decided})"),
    );
    println!(
        "  corpus totals: solve {:.1}s, check {:.2}s",
        total_solve.as_secs_f64(),
        total_check.as_secs_f64()
    );

    // Tamper fixtures: cells with budget-independent verdicts — LEAVE
    // proves the single-cycle design fast; the undefended SimpleOoO
    // yields a Spectre counterexample fast (the smoke gate relies on
    // both staying stable).
    let proof_query = |certify: bool| -> Query {
        verifier(budget_secs(60), bmc_depth(8), false)
            .certify(certify)
            .design(DesignKind::SingleCycle)
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Leave)
            .query()
            .expect("design and contract are set")
    };
    let proof_report = proof_query(true).run();
    let attack_report = verifier(budget_secs(120), bmc_depth(14), true)
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .run();
    gate.check(
        proof_report.verdict.is_proof() && proof_report.certificate.is_some(),
        "LEAVE proof fixture decides with a certificate",
    );
    gate.check(
        attack_report.verdict.is_attack(),
        "Spectre attack fixture decides",
    );

    // -- 2 & 3: the csl-certify bin on genuine and tampered reports --------
    let bin = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            Some(
                exe.parent()?
                    .join(format!("csl-certify{}", std::env::consts::EXE_SUFFIX)),
            )
        })
        .filter(|p| p.exists());
    match bin {
        None => gate.check(
            false,
            "csl-certify binary found next to certprobe (build with `cargo build --release -p csl-bench --bins`)",
        ),
        Some(bin) => {
            let dir = scratch("reports");
            let genuine = write_report(&dir, "proof.json", &proof_report);
            gate.check(
                certify_bin(&bin, &genuine) == Some(0),
                "csl-certify accepts the genuine proof report (exit 0)",
            );
            let genuine_cex = write_report(&dir, "attack.json", &attack_report);
            gate.check(
                certify_bin(&bin, &genuine_cex) == Some(0),
                "csl-certify accepts the genuine attack report (exit 0)",
            );

            let mut stripped = proof_report.clone();
            stripped.certificate = None;
            let stripped = write_report(&dir, "stripped.json", &stripped);
            gate.check(
                certify_bin(&bin, &stripped) == Some(1),
                "stripped certificate exits 1",
            );

            let mut ranged = proof_report.clone();
            let cert = ranged.certificate.as_mut().expect("checked above");
            match &mut cert.kind {
                CertKind::Inductive { blocked } => blocked.push(vec![(u32::MAX, true)]),
                CertKind::KInduction { k } => *k = 0,
            }
            let ranged = write_report(&dir, "ranged.json", &ranged);
            gate.check(
                certify_bin(&bin, &ranged) == Some(1),
                "out-of-range clause literal / zeroed k exits 1",
            );

            let mut flipped = proof_report.clone();
            let cert = flipped.certificate.as_mut().expect("checked above");
            if let Some(first) = cert.restored.first_mut() {
                first.1 = !first.1;
                let flipped = write_report(&dir, "flipped.json", &flipped);
                gate.check(
                    certify_bin(&bin, &flipped) == Some(1),
                    "flipped restored-constant literal exits 1",
                );
            }

            let mut truncated = attack_report.clone();
            if let Verdict::Attack(trace) = &mut truncated.verdict {
                trace.inputs.clear();
            }
            let truncated = write_report(&dir, "truncated.json", &truncated);
            gate.check(
                certify_bin(&bin, &truncated) == Some(1),
                "truncated attack trace exits 1",
            );
        }
    }

    // -- 4: ReportCache verify-on-load round-trip ---------------------------
    let cache = ReportCache::new(scratch("cache"));
    let query = proof_query(true);
    let served = |r: &Report| r.notes.iter().any(|n| n.starts_with("served from cache"));

    let first = query.run_cached(&cache);
    let second = query.run_cached(&cache);
    gate.check(
        !served(&first) && served(&second) && cache.stats().rejected == 0,
        "genuine entry: miss, then served from cache, no rejections",
    );

    let mut forged = second.clone();
    forged.certificate = None;
    cache
        .store(query.cache_key(), &forged)
        .expect("store forged entry");
    let third = query.run_cached(&cache);
    gate.check(
        !served(&third) && third.verdict.is_proof() && cache.stats().rejected == 1,
        "forged entry: rejected on load, evicted, cell re-solves",
    );
    let fourth = query.run_cached(&cache);
    gate.check(
        served(&fourth) && cache.stats().rejected == 1,
        "re-solved entry serves again",
    );

    // With certification off the same forged entry is served as-is —
    // the knob really is what gates the audit.
    let unaudited = proof_query(false);
    cache
        .store(unaudited.cache_key(), &forged)
        .expect("store forged entry");
    let blind = unaudited.run_cached(&cache);
    gate.check(
        served(&blind) && blind.certificate.is_none(),
        ".certify(false) serves without the audit",
    );

    if let Some(path) = json_path {
        let artifact = Json::obj(vec![
            ("probe", Json::Str("certprobe".into())),
            ("cells", Json::Int(campaign.reports.len() as i64)),
            ("decided", Json::Int(decided as i64)),
            ("pass", Json::Bool(gate.failures.is_empty())),
            (
                "failures",
                Json::Arr(gate.failures.iter().cloned().map(Json::Str).collect()),
            ),
            ("solve_ms", Json::Int(total_solve.as_millis() as i64)),
            ("check_ms", Json::Int(total_check.as_millis() as i64)),
            (
                "checks",
                Json::Arr(
                    rows.into_iter()
                        .map(|(label, cell, solve, check)| {
                            Json::obj(vec![
                                ("cell", Json::Str(label)),
                                ("verdict", Json::Str(cell.into())),
                                ("solve_ms", Json::Int(solve)),
                                ("check_ms", Json::Int(check)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render()) {
            eprintln!("certprobe: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("json report written to {path}");
    }

    if gate.failures.is_empty() {
        println!("certprobe: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("certprobe: {} gate(s) failed", gate.failures.len());
        ExitCode::FAILURE
    }
}

use csl_bench::verifier;
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::{InitMode, TransitionSystem, Unroller};
use csl_sat::SolveResult;
use std::time::Instant;

fn probe(design: DesignKind, contract: Contract, maxd: usize) {
    let task = verifier(240, maxd, true)
        .design(design)
        .contract(contract)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .instance();
    let ts = TransitionSystem::new(task.aig().clone(), false);
    println!(
        "== {} / {}: {}",
        design.name(),
        contract.name(),
        ts.summary()
    );
    let mut u = Unroller::new(&ts, InitMode::Reset);
    let t0 = Instant::now();
    for k in 0..=maxd {
        let t = Instant::now();
        u.assert_assumes_through(k);
        let bad = u.bad_any_at(k);
        let r = u.solve_with(&[bad]);
        println!(
            "  depth {k:2}: {:?} in {:.2}s (cum {:.1}s)",
            r,
            t.elapsed().as_secs_f64(),
            t0.elapsed().as_secs_f64()
        );
        if r == SolveResult::Sat {
            break;
        }
        u.solver.add_clause(&[!bad]);
        if t0.elapsed().as_secs_f64() > 240.0 {
            println!("  (probe budget reached)");
            break;
        }
    }
}

fn main() {
    probe(DesignKind::InOrder, Contract::Sandboxing, 14);
    probe(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::Sandboxing,
        12,
    );
    probe(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::ConstantTime,
        12,
    );
}

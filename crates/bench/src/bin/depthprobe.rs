//! Depth/warm-start probe: quantifies persistent solver sessions.
//!
//! Part 1 drives one shadow instance through an escalating BMC depth
//! schedule twice — a fresh solver per depth versus a single
//! [`BmcSession`] that keeps its unrolling and learnt clauses — and
//! prints the per-depth and cumulative costs side by side. Verdicts must
//! match at every depth.
//!
//! Part 2 is the gate: the repeat-query workload on Table-2 cells. Each
//! cell is checked twice at the same depth — the shape of a CI re-run or
//! an interactive session asking the same question again — once with
//! warm-start off (every query pays the full re-encode/re-solve) and
//! once with warm-start on (the second query resumes the parked session
//! from the process-wide pool). Verdicts must be byte-identical, the
//! warm rerun's report must surface `warm_hits >= 1`, and (release
//! builds only) the median warm speedup across cells must reach the 2x
//! floor. A depth-escalation pass (shallow query, then deeper) is
//! reported as well. `--json <path>` archives the warm reruns, solver
//! blocks included, for CI.

use std::time::{Duration, Instant};

use csl_bench::{bmc_depth, budget_secs, median_duration, report_args, verifier, write_reports};
use csl_contracts::Contract;
use csl_core::api::{CampaignReport, Report, Verifier};
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::exchange::SharedContext;
use csl_mc::{bmc, BmcResult, BmcSession, Lane, TransitionSystem};
use csl_sat::Budget;

fn shadow_instance(design: DesignKind, contract: Contract) -> std::sync::Arc<TransitionSystem> {
    let task = verifier(240, 14, true)
        .design(design)
        .contract(contract)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .instance();
    TransitionSystem::shared(task.aig().clone(), false)
}

fn bmc_key(r: &BmcResult) -> String {
    match r {
        BmcResult::Cex(t) => format!("cex@{}", t.depth()),
        BmcResult::Clean { depth_checked } => format!("clean@{depth_checked}"),
        BmcResult::Timeout { depth_checked } => format!("timeout@{depth_checked:?}"),
    }
}

/// The verdict portion of a report, elapsed time excluded, for the
/// byte-identical warm-vs-cold comparison.
fn verdict_key(r: &Report) -> String {
    format!("{:?}", r.verdict)
}

fn run_cell(design: DesignKind, contract: Contract, depth: usize, warm: bool) -> Report {
    Verifier::new()
        .design(design)
        .contract(contract)
        .scheme(Scheme::Shadow)
        .attack_only(true)
        .bmc_depth(depth)
        .wall(Duration::from_secs(budget_secs(120)))
        .warm(warm)
        .query()
        .expect("design and contract are set")
        .run()
}

fn warm_hits(r: &Report) -> u64 {
    r.solver.iter().map(|s| s.warm_hits).sum()
}

fn main() {
    let args = report_args("depthprobe");
    if args.cache.is_some() {
        println!("note: depthprobe always bypasses the result cache (live solves only)");
    }
    let mut failures: Vec<String> = Vec::new();
    let wall = Instant::now();

    println!("== part 1: progressive depth schedule, fresh solver vs one warm session ==");
    let schedule: Vec<usize> = [2usize, 4, 6, 8]
        .into_iter()
        .map(bmc_depth)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let step_budget = || Budget::until(Instant::now() + Duration::from_secs(budget_secs(30)));
    for (design, contract) in [
        (DesignKind::InOrder, Contract::Sandboxing),
        (
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::Sandboxing,
        ),
    ] {
        let ts = shadow_instance(design, contract);
        println!(
            "-- {} / {}: {}",
            design.name(),
            contract.name(),
            ts.summary()
        );
        let mut session = BmcSession::new(&ts);
        let (mut cum_fresh, mut cum_warm) = (0f64, 0f64);
        for &depth in &schedule {
            let t = Instant::now();
            let fresh = bmc(&ts, depth, step_budget());
            let fresh_s = t.elapsed().as_secs_f64();
            cum_fresh += fresh_s;

            let t = Instant::now();
            let warm = session.run_to(
                depth,
                step_budget(),
                &mut SharedContext::disabled(Lane::Bmc),
            );
            let warm_s = t.elapsed().as_secs_f64();
            cum_warm += warm_s;

            println!(
                "  depth {depth:2}: fresh {fresh_s:7.2}s (cum {cum_fresh:6.1}s)   warm {warm_s:7.2}s (cum {cum_warm:6.1}s)   {}",
                bmc_key(&warm)
            );
            // A step budget keeps the probe bounded on the expensive
            // instances; once either side runs out, deeper steps would
            // only repeat the timeout — stop escalating this design.
            if matches!(fresh, BmcResult::Timeout { .. })
                || matches!(warm, BmcResult::Timeout { .. })
            {
                println!("  (step budget reached; stopping the schedule here)");
                break;
            }
            if bmc_key(&fresh) != bmc_key(&warm) {
                failures.push(format!(
                    "{}/{} depth {depth}: fresh {} vs warm {}",
                    design.name(),
                    contract.name(),
                    bmc_key(&fresh),
                    bmc_key(&warm)
                ));
            }
            if matches!(warm, BmcResult::Cex(_)) {
                break;
            }
        }
    }

    println!();
    println!("== part 2: repeat-query workload, warm vs cold (Table-2 cells) ==");
    let cells = [
        (DesignKind::InOrder, Contract::Sandboxing, bmc_depth(6)),
        (
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::Sandboxing,
            bmc_depth(6),
        ),
        (
            DesignKind::SimpleOoo(Defense::DelaySpectre),
            Contract::ConstantTime,
            bmc_depth(6),
        ),
    ];
    let mut archived: Vec<Report> = Vec::new();
    let mut cold_walls: Vec<Duration> = Vec::new();
    let mut warm_walls: Vec<Duration> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for (design, contract, depth) in cells {
        // Cold pair: every query pays the full cost.
        let cold_first = run_cell(design, contract, depth, false);
        let cold_rerun = run_cell(design, contract, depth, false);
        // Warm pair: the first query parks its session, the rerun
        // resumes it from the pool.
        let warm_first = run_cell(design, contract, depth, true);
        let warm_rerun = run_cell(design, contract, depth, true);

        let speedup = cold_rerun.elapsed.as_secs_f64() / warm_rerun.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{:<32} depth {depth:2}: cold rerun {:6.2}s   warm rerun {:6.2}s   {speedup:6.1}x   warm_hits {}",
            format!("{}/{}", design.name(), contract.name()),
            cold_rerun.elapsed.as_secs_f64(),
            warm_rerun.elapsed.as_secs_f64(),
            warm_hits(&warm_rerun)
        );

        for (label, a, b) in [
            ("cold first vs cold rerun", &cold_first, &cold_rerun),
            ("cold rerun vs warm first", &cold_rerun, &warm_first),
            ("warm first vs warm rerun", &warm_first, &warm_rerun),
        ] {
            if verdict_key(a) != verdict_key(b) {
                failures.push(format!(
                    "{}/{}: {label} verdicts differ: {} vs {}",
                    design.name(),
                    contract.name(),
                    verdict_key(a),
                    verdict_key(b)
                ));
            }
        }
        if warm_hits(&warm_rerun) == 0 {
            failures.push(format!(
                "{}/{}: warm rerun reports no warm hits",
                design.name(),
                contract.name()
            ));
        }
        let json = warm_rerun.to_json();
        if !json.contains("warm_hits") {
            failures.push(format!(
                "{}/{}: warm rerun JSON carries no solver block",
                design.name(),
                contract.name()
            ));
        }

        cold_walls.push(cold_rerun.elapsed);
        warm_walls.push(warm_rerun.elapsed);
        speedups.push(speedup);
        archived.push(warm_rerun);
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = speedups[speedups.len() / 2];
    println!(
        "median: cold rerun {:.2}s vs warm rerun {:.2}s -> {median:.1}x (target >= 2x)",
        median_duration(cold_walls).as_secs_f64(),
        median_duration(warm_walls).as_secs_f64(),
    );
    if median < 2.0 {
        let msg = format!("median warm-start speedup {median:.1}x below the 2x floor");
        if cfg!(debug_assertions) {
            println!("WARNING (debug build, not gating): {msg}");
        } else {
            failures.push(msg);
        }
    }

    println!();
    println!("== part 3: depth escalation, warm vs cold (shallow query, then deeper) ==");
    let (design, contract) = (DesignKind::InOrder, Contract::Sandboxing);
    let (shallow, deep) = (bmc_depth(4), bmc_depth(6));
    let _ = run_cell(design, contract, shallow, false);
    let cold_deep = run_cell(design, contract, deep, false);
    let _ = run_cell(design, contract, shallow, true);
    let warm_deep = run_cell(design, contract, deep, true);
    println!(
        "{}/{} depth {shallow} -> {deep}: cold deep {:.2}s   warm deep {:.2}s   {:.1}x   warm_hits {}",
        design.name(),
        contract.name(),
        cold_deep.elapsed.as_secs_f64(),
        warm_deep.elapsed.as_secs_f64(),
        cold_deep.elapsed.as_secs_f64() / warm_deep.elapsed.as_secs_f64().max(1e-9),
        warm_hits(&warm_deep)
    );
    if verdict_key(&cold_deep) != verdict_key(&warm_deep) {
        failures.push(format!(
            "escalation verdicts differ: cold {} vs warm {}",
            verdict_key(&cold_deep),
            verdict_key(&warm_deep)
        ));
    }

    let campaign = CampaignReport {
        reports: archived,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);

    if !failures.is_empty() {
        println!();
        for f in &failures {
            println!("FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!();
    println!("depthprobe: all checks passed");
}

//! Fast end-to-end smoke run: a handful of representative single cells
//! (insecure designs yield CEX, secure designs stay clean in attack-only
//! mode) followed by the smoke campaign matrix. `--json <path>` /
//! `--csv <path>` dump the campaign as a structured report so CI can
//! archive it and diff verdicts across commits.

use csl_bench::{
    bmc_depth, budget_secs, report_args, show_campaign, smoke_matrix, verifier, write_reports,
};
use csl_contracts::Contract;
use csl_core::api::Report;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::Verdict;

fn run(
    design: DesignKind,
    contract: Contract,
    scheme: Scheme,
    attack_only: bool,
    budget: u64,
    depth: usize,
) -> Report {
    let report = verifier(budget_secs(budget), bmc_depth(depth), attack_only)
        .design(design)
        .contract(contract)
        .scheme(scheme)
        .query()
        .expect("design and contract are set")
        .run();
    let extra = match &report.verdict {
        Verdict::Attack(tr) => format!("depth {} bad `{}`", tr.depth(), tr.bad_name),
        Verdict::Proof(e) => format!("{e:?}"),
        Verdict::Unknown { reason } => reason.to_string(),
        Verdict::Timeout => String::new(),
    };
    println!(
        "{:28} {:14} {:8} -> {:6} [{:.1}s] {}",
        design.name(),
        contract.name(),
        scheme.name(),
        report.cell(),
        report.elapsed.as_secs_f64(),
        extra
    );
    report
}

fn main() {
    use Contract::*;
    use Scheme::*;
    let args = report_args("smoke");
    // Insecure: expect CEX.
    run(
        DesignKind::SimpleOoo(Defense::None),
        Sandboxing,
        Shadow,
        true,
        120,
        14,
    );
    run(
        DesignKind::SimpleOoo(Defense::None),
        ConstantTime,
        Shadow,
        true,
        120,
        14,
    );
    run(
        DesignKind::SimpleOoo(Defense::NoFwdFuturistic),
        ConstantTime,
        Shadow,
        true,
        120,
        14,
    );
    // Secure: expect NO cex within depth 12 (UNK in attack-only mode).
    run(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Sandboxing,
        Shadow,
        true,
        300,
        12,
    );
    run(
        DesignKind::SimpleOoo(Defense::DelayFuturistic),
        Sandboxing,
        Shadow,
        true,
        300,
        12,
    );
    run(DesignKind::InOrder, Sandboxing, Shadow, true, 120, 12);
    // The smoke matrix through the campaign runner: every scheme on the
    // single-cycle design, cells in parallel, engines racing per cell.
    // Decided cells are served from the session cache unless --no-cache.
    let matrix = args.apply_cache(smoke_matrix(budget_secs(60), bmc_depth(8)));
    let report = matrix.run_all();
    show_campaign(&report);
    write_reports(&report, &args);
}

use csl_bench::{bmc_depth, budget_secs, campaign_options, show_campaign, smoke_cells};
use csl_contracts::Contract;
use csl_core::{run_campaign, verify, DesignKind, InstanceConfig, Scheme};
use csl_cpu::Defense;
use csl_mc::{CheckOptions, Verdict};
use std::time::{Duration, Instant};

fn run(
    design: DesignKind,
    contract: Contract,
    scheme: Scheme,
    attack_only: bool,
    budget: u64,
    depth: usize,
) {
    let opts = CheckOptions {
        total_budget: Duration::from_secs(budget),
        bmc_depth: depth,
        attack_only,
        ..Default::default()
    };
    let cfg = InstanceConfig::new(design, contract);
    let t = Instant::now();
    let report = verify(scheme, &cfg, &opts);
    let extra = match &report.verdict {
        Verdict::Attack(tr) => format!("depth {} bad `{}`", tr.depth(), tr.bad_name),
        Verdict::Proof(e) => format!("{e:?}"),
        Verdict::Unknown { reason } => reason.clone(),
        Verdict::Timeout => String::new(),
    };
    println!(
        "{:28} {:14} {:8} -> {:6} [{:.1}s] {}",
        design.name(),
        contract.name(),
        scheme.name(),
        report.verdict.cell(),
        t.elapsed().as_secs_f64(),
        extra
    );
}

fn main() {
    use Contract::*;
    use Scheme::*;
    // Insecure: expect CEX.
    run(
        DesignKind::SimpleOoo(Defense::None),
        Sandboxing,
        Shadow,
        true,
        120,
        14,
    );
    run(
        DesignKind::SimpleOoo(Defense::None),
        ConstantTime,
        Shadow,
        true,
        120,
        14,
    );
    run(
        DesignKind::SimpleOoo(Defense::NoFwdFuturistic),
        ConstantTime,
        Shadow,
        true,
        120,
        14,
    );
    // Secure: expect NO cex within depth 12 (UNK in attack-only mode).
    run(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Sandboxing,
        Shadow,
        true,
        300,
        12,
    );
    run(
        DesignKind::SimpleOoo(Defense::DelayFuturistic),
        Sandboxing,
        Shadow,
        true,
        300,
        12,
    );
    run(DesignKind::InOrder, Sandboxing, Shadow, true, 120, 12);
    // The smoke matrix through the campaign runner: every scheme on the
    // single-cycle design, cells in parallel, engines racing per cell.
    let report = run_campaign(
        &smoke_cells(),
        &campaign_options(budget_secs(60), bmc_depth(8)),
    );
    show_campaign(&report);
}

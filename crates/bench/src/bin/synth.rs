//! Contract-synthesis sweep: run the CEGIS driver over the Table-2
//! designs (plus the single-cycle smoke design) and print each design's
//! synthesized contract next to the hand-written lattice points.
//!
//! Where the paper proves a design secure, the synthesized contract is
//! the *strongest sound* observation set — typically strictly below the
//! hand-written constant-time contract (the hand-written set carries
//! atoms the design never leaks through, e.g. multiplier operands on a
//! core without the extension). Where the paper shows transient leaks,
//! the sweep terminates with **no sound contract**: the final
//! counterexample's retirement streams agree on every atom of the
//! grammar, so no retirement-stream contract can rule the leak out.
//!
//! ```text
//! cargo run --release -p csl-bench --bin csl-synth -- [--json <path>]
//!     [--csv <path>] [--cache <dir> | --no-cache]
//! ```

use csl_bench::{bmc_depth, budget_secs, header, report_args, table2_designs, verifier};
use csl_contracts::{Contract, ObsSet};
use csl_core::api::Json;
use csl_core::DesignKind;
use csl_synth::{SynthOutcome, SynthesisResult, Synthesizer};

/// Where a synthesized set sits relative to a hand-written one.
fn position(set: ObsSet, named: ObsSet) -> &'static str {
    if set == named {
        "="
    } else if set.is_subset(named) {
        "<"
    } else if named.is_subset(set) {
        ">"
    } else {
        "incomparable"
    }
}

fn outcome_name(o: SynthOutcome) -> &'static str {
    match o {
        SynthOutcome::Sound => "SOUND",
        SynthOutcome::NoSoundContract => "NO-CONTRACT",
        SynthOutcome::Inconclusive => "INCONCLUSIVE",
    }
}

fn json_row(r: &SynthesisResult) -> Json {
    Json::obj(vec![
        ("design", Json::Str(r.design.name())),
        ("outcome", Json::Str(outcome_name(r.outcome).into())),
        ("contract", Json::Str(r.synthesized().name())),
        (
            "vs_sandboxing",
            Json::Str(position(r.contract, Contract::sandboxing_set()).into()),
        ),
        (
            "vs_constant_time",
            Json::Str(position(r.contract, Contract::constant_time_set()).into()),
        ),
        ("minimal_confirmed", Json::Bool(r.minimal_confirmed)),
        ("steps", Json::Int(r.steps.len() as i64)),
        ("solved", Json::Int(r.solved as i64)),
        ("cache_hits", Json::Int(r.cache_hits as i64)),
        ("reused", Json::Int(r.reused as i64)),
        ("elapsed_ms", Json::Int(r.elapsed.as_millis() as i64)),
        (
            "path",
            Json::Arr(
                r.refutation_path()
                    .into_iter()
                    .map(|(set, atom)| {
                        Json::obj(vec![
                            ("refuted", Json::Str(set.encode())),
                            ("added", Json::Str(atom.name().into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let args = report_args("csl-synth");
    let budget = budget_secs(120);
    let depth = bmc_depth(12);
    header(
        "Contract synthesis: strongest sound contract per design",
        "the contract-lattice view of Table 2",
    );

    let mut synth =
        Synthesizer::new().verifier(verifier(budget, depth, false).prepare(args.prepare_config()));
    if let Some(dir) = &args.cache {
        synth = synth.cache(dir);
    }

    let mut designs = vec![DesignKind::SingleCycle];
    designs.extend(table2_designs());

    let mut results = Vec::new();
    for design in designs {
        let result = synth.synthesize(design);
        println!("{}", result.render());
        if result.outcome == SynthOutcome::Sound {
            println!(
                "    lattice: {} sandboxing, {} constant-time\n",
                position(result.contract, Contract::sandboxing_set()),
                position(result.contract, Contract::constant_time_set()),
            );
        } else {
            println!();
        }
        results.push(result);
    }

    println!(
        "{:<22} {:<13} {:<34} {:>4} {:>4}",
        "design", "outcome", "synthesized contract", "vs-S", "vs-CT"
    );
    for r in &results {
        let sound = r.outcome == SynthOutcome::Sound;
        println!(
            "{:<22} {:<13} {:<34} {:>4} {:>4}",
            r.design.name(),
            outcome_name(r.outcome),
            if sound {
                r.synthesized().name()
            } else {
                "-".into()
            },
            if sound {
                position(r.contract, Contract::sandboxing_set())
            } else {
                "-"
            },
            if sound {
                position(r.contract, Contract::constant_time_set())
            } else {
                "-"
            },
        );
    }

    if let Some(path) = &args.json {
        let doc = Json::obj(vec![
            ("probe", Json::Str("csl-synth".into())),
            ("budget_secs", Json::Int(budget as i64)),
            ("designs", Json::Arr(results.iter().map(json_row).collect())),
        ]);
        std::fs::write(path, doc.render()).expect("write json report");
        println!("json report written to {path}");
    }
    if let Some(path) = &args.csv {
        let mut csv = String::from(
            "design,outcome,contract,vs_sandboxing,vs_constant_time,steps,solved,cache_hits,reused,elapsed_ms\n",
        );
        for r in &results {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.design.name(),
                outcome_name(r.outcome),
                r.synthesized().name(),
                position(r.contract, Contract::sandboxing_set()),
                position(r.contract, Contract::constant_time_set()),
                r.steps.len(),
                r.solved,
                r.cache_hits,
                r.reused,
                r.elapsed.as_millis(),
            ));
        }
        std::fs::write(path, csv).expect("write csv report");
        println!("csv report written to {path}");
    }
}

//! Diagnostic probe: sequential vs portfolio `check_safety` on the
//! single-cycle design, every scheme, with per-engine notes. Use
//! `CSL_BUDGET_SECS` to widen the per-cell budget when hunting for the
//! point where the proof engines converge.

use std::time::Duration;

use csl_bench::{bmc_depth, budget_secs};
use csl_contracts::Contract;
use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
use csl_mc::{CheckOptions, ExecMode};

fn main() {
    let cfg = InstanceConfig::new(DesignKind::SingleCycle, Contract::Sandboxing);
    for scheme in Scheme::ALL {
        for mode in [ExecMode::Sequential, ExecMode::Portfolio] {
            let opts = CheckOptions {
                total_budget: Duration::from_secs(budget_secs(45)),
                bmc_depth: bmc_depth(6),
                mode,
                ..Default::default()
            };
            let t = std::time::Instant::now();
            let r = verify(scheme, &cfg, &opts);
            println!(
                "{:<22} {:?}: {} in {:.1}s",
                scheme.name(),
                mode,
                r.verdict.cell(),
                t.elapsed().as_secs_f64()
            );
            for n in &r.notes {
                println!("    | {n}");
            }
        }
    }
}

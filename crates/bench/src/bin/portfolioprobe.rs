//! Diagnostic probe: sequential vs portfolio `check_safety` on the
//! single-cycle design, every scheme, with per-engine notes. Use
//! `CSL_BUDGET_SECS` to widen the per-cell budget when hunting for the
//! point where the proof engines converge. `--json <path>` /
//! `--csv <path>` dump the probe results (both modes, all schemes) as a
//! structured campaign report for cross-commit diffing. Decided cells
//! are served from the session cache (the two modes key separately —
//! the mode is part of the cache key) unless `--no-cache`.

use std::time::Duration;

use csl_bench::{bmc_depth, budget_secs, report_args, write_reports};
use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, Mode, ReportCache, Verifier};
use csl_core::{DesignKind, Scheme};

fn main() {
    let args = report_args("portfolioprobe");
    let cache = args
        .cache
        .as_ref()
        .map(|dir| ReportCache::new(dir).with_max_entries_opt(args.cache_max_entries));
    let wall = std::time::Instant::now();
    let mut reports = Vec::new();
    for scheme in Scheme::ALL {
        for mode in [Mode::Sequential, Mode::Portfolio] {
            let query = Verifier::new()
                .design(DesignKind::SingleCycle)
                .contract(Contract::Sandboxing)
                .scheme(scheme)
                .mode(mode)
                .prepare(args.prepare_config())
                .budget(Budget::wall(Duration::from_secs(budget_secs(45))))
                .bmc_depth(bmc_depth(6))
                .query()
                .expect("design and contract are set");
            let report = match &cache {
                Some(cache) => query.run_cached(cache),
                None => query.run(),
            };
            println!(
                "{:<22} {:?}: {} in {:.1}s",
                scheme.name(),
                mode,
                report.cell(),
                report.elapsed.as_secs_f64()
            );
            for n in &report.notes {
                println!("    | {n}");
            }
            // Both modes of a scheme share a cell identity; only the
            // sequential row goes into the diffable report so the cell
            // set stays unique per (scheme, design, contract).
            if mode == Mode::Sequential {
                reports.push(report);
            }
        }
    }
    let campaign = CampaignReport {
        reports,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);
}

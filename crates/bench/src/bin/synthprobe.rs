//! CI gate for the contract-synthesis subsystem.
//!
//! Three checks, each fatal (exit 1):
//!
//! 1. **Lattice position** — on the two fast provably-secure designs
//!    (SingleCycle, InOrder) the CEGIS driver must terminate `Sound`
//!    with a minimality-confirmed contract that is lattice-`<=` the
//!    hand-written constant-time contract (the paper proves both designs
//!    secure under it, so the strongest sound point can be no weaker).
//! 2. **Evidence audit** — every step of every walk re-checks through
//!    `csl-certify` against an independently rebuilt raw instance:
//!    grow/descent attacks replay as witnesses, accepted candidates'
//!    proofs pass their certificate obligations.
//! 3. **Reuse** — a repeated walk over the same lattice (same cache
//!    directory) re-solves nothing: every query is served from the
//!    verify-on-load-audited result cache, and the descent reuses
//!    grow-phase refutations without querying at all. The cache hit-rate
//!    lands in the JSON artifact.
//!
//! ```text
//! cargo run --release -p csl-bench --bin synthprobe -- [--json <path>] [--no-cache]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use csl_bench::{bmc_depth, budget_secs, verifier};
use csl_certify::{check_certificate, check_witness, Witness};
use csl_contracts::Contract;
use csl_core::api::Json;
use csl_core::DesignKind;
use csl_mc::Verdict;
use csl_synth::{SynthOutcome, SynthesisResult, Synthesizer};

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            println!("  FAIL: {what}");
            self.failures.push(what.to_string());
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(format!("target/synthprobe/{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Re-checks every step's evidence against an independently rebuilt raw
/// instance; returns (audited, accepted).
fn audit_steps(synth: &Synthesizer, result: &SynthesisResult) -> (usize, usize) {
    let mut audited = 0usize;
    let mut ok = 0usize;
    for step in &result.steps {
        let task = synth
            .query_for(result.design, step.candidate)
            .raw_instance();
        match &step.report.verdict {
            Verdict::Attack(trace) => {
                audited += 1;
                ok += check_witness(&task.aig, &Witness::new((**trace).clone())).is_ok() as usize;
            }
            Verdict::Proof(_) => {
                audited += 1;
                ok += step
                    .report
                    .certificate
                    .as_ref()
                    .is_some_and(|c| check_certificate(&task, c).is_ok())
                    as usize;
            }
            _ => {}
        }
    }
    (audited, ok)
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next(),
            // Accepted for CI-invocation symmetry: synthprobe always
            // uses a fresh scratch cache (the reuse gate depends on
            // starting cold).
            "--no-cache" => {}
            other => {
                eprintln!("usage: synthprobe [--json <path>] [--no-cache] (got `{other}`)");
                return ExitCode::from(2);
            }
        }
    }

    let mut gate = Gate {
        failures: Vec::new(),
    };
    let budget = budget_secs(120);
    let depth = bmc_depth(12);
    println!("synthprobe: CEGIS gates, budget {budget}s, depth {depth}");

    let cache_dir = scratch("cache");
    let synth = Synthesizer::new()
        .verifier(verifier(budget, depth, false))
        .cache(&cache_dir);

    let ct = Contract::constant_time_set();
    let mut rows: Vec<Json> = Vec::new();
    let mut cold_results = Vec::new();

    // -- 1 & 2: synthesis on the secure designs + per-step audit ----------
    for design in [DesignKind::SingleCycle, DesignKind::InOrder] {
        let result = synth.synthesize(design);
        print!("{}", result.render());
        let name = result.design.name();
        gate.check(
            result.outcome == SynthOutcome::Sound,
            &format!("{name}: synthesis terminates Sound"),
        );
        gate.check(
            result.contract.is_subset(ct),
            &format!(
                "{name}: synthesized {} is lattice-<= constant-time",
                result.contract.encode()
            ),
        );
        gate.check(
            result.minimal_confirmed,
            &format!("{name}: minimality confirmed (every single-atom drop re-attacks)"),
        );
        let (audited, ok) = audit_steps(&synth, &result);
        gate.check(
            audited >= result.steps.len().min(2) && ok == audited,
            &format!("{name}: every step's evidence re-checks via csl-certify ({ok}/{audited})"),
        );
        cold_results.push(result);
    }

    // -- 3: a repeated lattice walk is all cache hits ----------------------
    let mut hit_rates = Vec::new();
    for cold in &cold_results {
        let warm = synth.synthesize(cold.design);
        let name = warm.design.name();
        gate.check(
            warm.outcome == SynthOutcome::Sound && warm.contract == cold.contract,
            &format!("{name}: repeated walk reaches the same contract"),
        );
        gate.check(
            warm.cache_hits == warm.steps.len(),
            &format!(
                "{name}: repeated walk re-solves nothing ({}/{} served from cache)",
                warm.cache_hits,
                warm.steps.len()
            ),
        );
        let rate = warm.cache_hits as f64 / warm.steps.len().max(1) as f64;
        println!(
            "  {name}: warm hit-rate {:.0}%, {} descent drops reused without a query",
            rate * 100.0,
            warm.reused
        );
        hit_rates.push((warm, rate));
    }

    for (cold, (warm, rate)) in cold_results.iter().zip(&hit_rates) {
        rows.push(Json::obj(vec![
            ("design", Json::Str(cold.design.name())),
            ("contract", Json::Str(cold.synthesized().name())),
            (
                "outcome_sound",
                Json::Bool(cold.outcome == SynthOutcome::Sound),
            ),
            ("minimal_confirmed", Json::Bool(cold.minimal_confirmed)),
            ("steps", Json::Int(cold.steps.len() as i64)),
            ("cold_solved", Json::Int(cold.solved as i64)),
            ("warm_cache_hits", Json::Int(warm.cache_hits as i64)),
            ("warm_hit_rate", Json::Str(format!("{:.2}", rate))),
            ("reused_refutations", Json::Int(warm.reused as i64)),
            (
                "cold_elapsed_ms",
                Json::Int(cold.elapsed.as_millis() as i64),
            ),
            (
                "warm_elapsed_ms",
                Json::Int(warm.elapsed.as_millis() as i64),
            ),
        ]));
    }

    if let Some(path) = json_path {
        let artifact = Json::obj(vec![
            ("probe", Json::Str("synthprobe".into())),
            ("budget_secs", Json::Int(budget as i64)),
            ("pass", Json::Bool(gate.failures.is_empty())),
            (
                "failures",
                Json::Arr(gate.failures.iter().cloned().map(Json::Str).collect()),
            ),
            ("designs", Json::Arr(rows)),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render()) {
            eprintln!("synthprobe: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("json report written to {path}");
    }

    if gate.failures.is_empty() {
        println!("synthprobe: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("synthprobe: {} gate(s) failed", gate.failures.len());
        ExitCode::FAILURE
    }
}

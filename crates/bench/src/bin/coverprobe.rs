//! Coverage probe: quantifies the coverage-guided fuzzing engine.
//!
//! Part 1 races blind random fuzzing against the coverage-guided
//! campaign (toggle map + mutation corpus) on the insecure Table-2
//! cells: per seed, each mode reports its trials-to-leak, and the
//! per-cell medians are compared. Coverage guidance must beat the blind
//! median on at least two cells — the engine's reason to exist.
//!
//! Part 2 runs a portfolio race with the exchange bus on and the fuzz
//! lane coverage-guided, on a secure design where the fuzzer cannot
//! leak: its deepest survivors are exported as proof obligations and
//! the PDR lane must consume at least one (counted in the report's
//! per-lane exchange stats, checked after a JSON round-trip so the
//! serialized artifact carries the evidence).
//!
//! Part 3 re-runs portfolio cells with coverage off and on and demands
//! identical verdicts — guidance redistributes trials, it must never
//! change what a campaign concludes.
//!
//! Exits 1 when coverage wins fewer than two cells, when no obligation
//! crosses the bus, when a verdict differs, or when a coverage-on run
//! fails to report coverage stats. `--json <path>` archives the
//! portfolio runs (their `coverage` blocks included) for CI.

use std::time::{Duration, Instant};

use csl_bench::{budget_secs, report_args, write_reports};
use csl_contracts::Contract;
use csl_core::api::{
    Budget as ApiBudget, CampaignReport, ExchangeConfig, FuzzPlan, Mode, Report, Verifier,
};
use csl_core::{run_fuzz, DesignKind, FuzzOutcome, Scheme};
use csl_cpu::Defense;
use csl_isa::IsaConfig;
use csl_mc::SafetyCheck;
use csl_sat::Budget;

/// The raw shadow instance + ISA config for a design (fuzzing needs the
/// stimulus sizes).
fn instance(design: DesignKind) -> (SafetyCheck, IsaConfig) {
    let query = Verifier::new()
        .design(design)
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .with_candidates(false)
        .query()
        .expect("design and contract are set");
    let isa = query.config().cpu_config().isa;
    (query.raw_instance(), isa)
}

/// Trials-to-leak for one campaign; `cap` when the budget ran dry clean.
fn trials_to_leak(aig: &csl_hdl::Aig, isa: &IsaConfig, plan: &FuzzPlan, cap: usize) -> usize {
    let report = run_fuzz(aig, isa, plan, &Budget::unlimited());
    match &report.outcome {
        FuzzOutcome::Leak(f) => f.trials,
        FuzzOutcome::Exhausted { .. } => cap,
    }
}

fn median(mut xs: Vec<usize>) -> usize {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let args = report_args("coverprobe");
    if args.cache.is_some() {
        println!("note: coverprobe always bypasses the result cache (live campaigns only)");
    }
    let mut failures: Vec<String> = Vec::new();
    let wall = Instant::now();

    println!("== part 1: trials-to-leak, blind vs coverage-guided (insecure Table-2 cells) ==");
    let seeds = [7u64, 9, 23, 41, 57];
    let cap = 4096;
    let insecure = [
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ];
    let mut wins = 0;
    for design in insecure {
        let (task, isa) = instance(design);
        let mut blind = Vec::new();
        let mut guided = Vec::new();
        for seed in seeds {
            let base = FuzzPlan::new().trials(cap).cycles(20).seed(seed);
            blind.push(trials_to_leak(&task.aig, &isa, &base, cap));
            guided.push(trials_to_leak(
                &task.aig,
                &isa,
                &base.clone().coverage(true),
                cap,
            ));
        }
        let (bm, gm) = (median(blind.clone()), median(guided.clone()));
        let won = gm < bm;
        wins += won as usize;
        println!(
            "{:<22} blind median {bm:>5} {blind:?}\n{:<22} cover median {gm:>5} {guided:?}  {}",
            design.name(),
            "",
            if won { "<< coverage wins" } else { "" }
        );
    }
    println!(
        "coverage wins {wins}/{} cells (target >= 2)",
        insecure.len()
    );
    if wins < 2 {
        failures.push(format!(
            "coverage guidance beat blind fuzzing on only {wins} insecure cells (need 2)"
        ));
    }

    println!();
    println!("== part 2: fuzz obligations crossing the bus into PDR (secure SimpleOoO-S) ==");
    // Secure design: the fuzzer cannot leak, so it spends the budget
    // banking deep survivors and exporting them as obligations; the PDR
    // lane runs the whole budget and polls the bus.
    let mut archived: Vec<Report> = Vec::new();
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::DelaySpectre))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .with_candidates(false)
        .mode(Mode::Portfolio)
        .exchange(ExchangeConfig::on())
        .budget(ApiBudget::wall(Duration::from_secs(budget_secs(30))))
        .bmc_depth(6)
        .fuzz(
            FuzzPlan::new()
                .trials(1_000_000)
                .cycles(20)
                .seed(7)
                .coverage(true),
        )
        .query()
        .expect("configured")
        .run();
    println!(
        "race   : {} in {:.2}s",
        report.cell(),
        report.elapsed.as_secs_f64()
    );
    // Round-trip through the canonical JSON so the gate checks what the
    // archived artifact actually says, not just the in-memory struct.
    let parsed = Report::from_json(&report.to_json()).expect("own JSON parses");
    let mut obligations = 0;
    for s in &parsed.exchange {
        println!(
            "    | {:<12} imports {:>5}  exports {:>5}  obligations {:>4}",
            s.lane.name(),
            s.imports,
            s.exports,
            s.obligations
        );
        obligations += s.obligations;
    }
    if let Some(cov) = &parsed.coverage {
        println!(
            "    | coverage: {}/{} latches, {} signatures, corpus {}, exported {}, rejected {}",
            cov.latches_toggled,
            cov.latches_total,
            cov.signatures,
            cov.corpus_size,
            cov.obligations_exported,
            cov.stimuli_rejected
        );
    }
    if obligations == 0 {
        failures.push("no fuzz-exported obligation was consumed by a solver lane".into());
    }
    if parsed.coverage.is_none() {
        failures.push("coverage-guided portfolio run carries no coverage stats".into());
    }
    archived.push(report);

    println!();
    println!("== part 3: verdict identity, coverage off vs on ==");
    let cells = [
        (DesignKind::SingleCycle, false),
        (DesignKind::SimpleOoo(Defense::None), true),
    ];
    for (design, attack_only) in cells {
        let run = |coverage: bool| {
            Verifier::new()
                .design(design)
                .contract(Contract::Sandboxing)
                .scheme(Scheme::Shadow)
                .with_candidates(false)
                .mode(Mode::Portfolio)
                .attack_only(attack_only)
                .budget(ApiBudget::wall(Duration::from_secs(budget_secs(30))))
                .bmc_depth(if attack_only { 2 } else { 6 })
                .fuzz(
                    FuzzPlan::new()
                        .trials(100_000)
                        .cycles(20)
                        .seed(7)
                        .coverage(coverage),
                )
                .query()
                .expect("configured")
                .run()
        };
        let off = run(false);
        let on = run(true);
        let same = off.cell() == on.cell();
        println!(
            "{:<22} off {:6} [{:.1}s]  on {:6} [{:.1}s]{}",
            design.name(),
            off.cell(),
            off.elapsed.as_secs_f64(),
            on.cell(),
            on.elapsed.as_secs_f64(),
            if same { "" } else { "  << VERDICT MISMATCH" }
        );
        if !same {
            failures.push(format!(
                "{}: coverage flipped the verdict {} -> {}",
                design.name(),
                off.cell(),
                on.cell()
            ));
        }
        if on.coverage.is_none() {
            failures.push(format!(
                "{}: coverage-on portfolio run carries no coverage stats",
                design.name()
            ));
        }
        archived.push(on);
    }

    let campaign = CampaignReport {
        reports: archived,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);

    if !failures.is_empty() {
        println!();
        for f in &failures {
            println!("FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!();
    println!("coverprobe: all checks passed");
}

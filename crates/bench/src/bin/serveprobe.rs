//! CI gate for the `csl-serve` campaign daemon: the service path must
//! be a *transparent* wrapper around the in-process pipeline.
//!
//! Four checks, each fatal (exit 1):
//!
//! 1. **Transparency** — the smoke matrix submitted over the socket
//!    assembles to a campaign whose normalized JSON (wall-clock fields
//!    zeroed) is byte-identical to an in-process
//!    `Matrix::run_all` of the same cells in sequential mode.
//! 2. **Crash isolation** — a poisoned cell aborts its worker process;
//!    the campaign still completes, the cell reports `WorkerCrashed`,
//!    and exactly one retry was attempted.
//! 3. **Dedup** — two concurrent identical submissions record a dedup
//!    hit, solve once, and receive byte-identical reports.
//! 4. **Resume** — a restarted daemon on the same journal serves every
//!    decided cell from the journal and still assembles the identical
//!    normalized campaign.
//!
//! `--json <path>` archives the gate outcome plus the daemon-assembled
//! campaign for the CI artifact trail.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use csl_bench::{bmc_depth, budget_secs, smoke_cells};
use csl_core::api::{Json, Verifier};
use csl_core::{DesignKind, Scheme};
use csl_mc::{InconclusiveReason, Verdict};
use csl_serve::{
    normalized_campaign, normalized_report, Bind, CellSpec, Client, Daemon, DaemonConfig,
    ServeOptions,
};

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            println!("  FAIL: {what}");
            self.failures.push(what.to_string());
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(format!("target/serveprobe/{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> ExitCode {
    // This binary doubles as its daemons' worker executable.
    csl_serve::serve_worker_if_flagged();

    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next(),
            // Accepted for CI-invocation symmetry with the other
            // probes; serveprobe always uses a fresh scratch cache.
            "--no-cache" => {}
            other => {
                eprintln!("usage: serveprobe [--json <path>] [--no-cache] (got `{other}`)");
                return ExitCode::from(2);
            }
        }
    }

    let options = ServeOptions {
        budget: Duration::from_secs(budget_secs(20)),
        bmc_depth: bmc_depth(4),
        portfolio: false, // sequential: verdicts and traces deterministic
        ..ServeOptions::default()
    };
    let cells: Vec<CellSpec> = smoke_cells().into_iter().map(CellSpec::from).collect();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    println!(
        "serveprobe: {} smoke cells, budget {:?}",
        cells.len(),
        options.budget
    );

    // Reference: the same queries, in process, through the campaign API.
    let reference = options
        .apply(Verifier::new())
        .into_matrix(
            &Scheme::ALL,
            &[DesignKind::SingleCycle],
            &[csl_contracts::Contract::Sandboxing],
        )
        .run_all();
    let reference_json = normalized_campaign(&reference).to_json();

    let journal = scratch("journal").join("campaign.journal");
    let config = || DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".into()),
        workers: 2,
        cache_dir: Some(scratch("cache")),
        cache_max_entries: None,
        journal: Some(journal.clone()),
        worker_cmd: None, // current_exe: this binary, hook above
    };

    // -- 1: transparency --------------------------------------------------
    let daemon = match Daemon::start(config()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serveprobe: cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("daemon listening on {}", daemon.addr());
    let run = |what: &str, f: &mut dyn FnMut() -> std::io::Result<bool>, gate: &mut Gate| match f()
    {
        Ok(ok) => gate.check(ok, what),
        Err(e) => gate.check(false, &format!("{what} ({e})")),
    };

    let mut served_json = String::new();
    run(
        "daemon campaign is byte-identical to in-process Matrix::run_all",
        &mut || {
            let mut client = Client::connect(&daemon.addr())?;
            let done = client.run("serveprobe-smoke", &cells, &options)?;
            served_json = normalized_campaign(&done.campaign).to_json();
            Ok(served_json == reference_json)
        },
        &mut gate,
    );

    // -- 2: crash isolation -----------------------------------------------
    run(
        "killed worker costs one cell (WorkerCrashed), one retry, campaign completes",
        &mut || {
            let mut client = Client::connect(&daemon.addr())?;
            let poisoned = CellSpec {
                poison: true,
                ..cells[0].clone()
            };
            let done = client.run("serveprobe-crash", &[poisoned, cells[0].clone()], &options)?;
            let crashed = matches!(
                done.campaign.reports[0].verdict,
                Verdict::Unknown {
                    reason: InconclusiveReason::WorkerCrashed { .. }
                }
            );
            let healthy_ok = normalized_report(&done.campaign.reports[1]).to_json()
                == normalized_report(&reference.reports[0]).to_json();
            Ok(crashed && healthy_ok && done.stats.retries == 1 && done.stats.crashes == 2)
        },
        &mut gate,
    );

    // -- 3: dedup ----------------------------------------------------------
    run(
        "concurrent duplicate submissions solve once and record a dedup hit",
        &mut || {
            let delayed = CellSpec {
                delay_ms: 600,
                ..cells[0].clone()
            };
            let mut a = Client::connect(&daemon.addr())?;
            let mut b = Client::connect(&daemon.addr())?;
            let ja = a.submit("serveprobe-dup-a", std::slice::from_ref(&delayed), &options)?;
            let jb = b.submit("serveprobe-dup-b", std::slice::from_ref(&delayed), &options)?;
            let da = a.wait_done(ja)?;
            let db = b.wait_done(jb)?;
            Ok(da.stats.solved + db.stats.solved == 1
                && da.stats.dedup_hits + db.stats.dedup_hits == 1
                && da.campaign.reports[0].to_json() == db.campaign.reports[0].to_json())
        },
        &mut gate,
    );

    match Client::connect(&daemon.addr()).map(Client::shutdown) {
        Ok(Ok(())) => {}
        Ok(Err(e)) | Err(e) => {
            gate.check(false, &format!("clean daemon shutdown ({e})"));
        }
    }
    daemon.join();

    // -- 4: resume ----------------------------------------------------------
    let mut journal_hits = 0;
    run(
        "restarted daemon replays journaled cells and matches the reference",
        &mut || {
            let daemon = Daemon::start(config())?; // same journal, fresh session
            let mut client = Client::connect(&daemon.addr())?;
            let done = client.run("serveprobe-resume", &cells, &options)?;
            journal_hits = done.stats.journal_hits;
            let decided = reference
                .reports
                .iter()
                .filter(|r| r.verdict.is_attack() || r.verdict.is_proof())
                .count() as u64;
            let replayed = normalized_campaign(&done.campaign).to_json() == reference_json;
            client.shutdown()?;
            daemon.stop();
            Ok(replayed && journal_hits == decided && decided >= 1)
        },
        &mut gate,
    );

    if let Some(path) = json_path {
        let artifact = Json::obj(vec![
            ("probe", Json::Str("serveprobe".into())),
            ("cells", Json::Int(cells.len() as i64)),
            ("pass", Json::Bool(gate.failures.is_empty())),
            (
                "failures",
                Json::Arr(gate.failures.iter().cloned().map(Json::Str).collect()),
            ),
            ("journal_hits", Json::Int(journal_hits as i64)),
            ("campaign", Json::parse(&served_json).unwrap_or(Json::Null)),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render()) {
            eprintln!("serveprobe: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("json report written to {path}");
    }

    if gate.failures.is_empty() {
        println!("serveprobe: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("serveprobe: {} gate(s) failed", gate.failures.len());
        ExitCode::FAILURE
    }
}

//! Fuzzing probe: quantifies the 64-way bit-parallel fuzzing backend.
//!
//! Part 1 measures trials/second of the batched simulator against the
//! scalar path — on the smoke cell for a clean throughput ratio (no
//! early exit: the SingleCycle machine never leaks) and on the insecure
//! Table-2 cells for the findings check: per seed, batched and scalar
//! campaigns must report the identical leak/no-leak outcome, leaking
//! trial and leaking cycle.
//!
//! Part 2 contrasts fuzzing and formal time-to-attack on the insecure
//! SimpleOoO core, then runs the fuzzing lane *inside* the portfolio
//! race with BMC capped below the leak depth — the fuzz lane is the only
//! engine that can decide, so the attack verdict demonstrates a fuzz
//! leak cancelling the solver lanes.
//!
//! Exits 1 when the batch/scalar findings disagree, when the throughput
//! ratio misses the 8x floor (release builds), or when the portfolio
//! fuzz lane fails to find the attack. `--json <path>` archives the
//! portfolio runs (their `fuzz` blocks included) for CI.

use std::time::{Duration, Instant};

use csl_bench::{bmc_depth, budget_secs, report_args, write_reports};
use csl_contracts::Contract;
use csl_core::api::{Budget as ApiBudget, CampaignReport, FuzzPlan, Mode, Report, Verifier};
use csl_core::{run_fuzz, DesignKind, FuzzOutcome, FuzzReport, Scheme};
use csl_cpu::Defense;
use csl_isa::IsaConfig;
use csl_mc::SafetyCheck;
use csl_sat::Budget;

/// The raw shadow instance + ISA config for a design (fuzzing needs the
/// stimulus sizes).
fn instance(design: DesignKind) -> (SafetyCheck, IsaConfig) {
    let query = Verifier::new()
        .design(design)
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .with_candidates(false)
        .query()
        .expect("design and contract are set");
    let isa = query.config().cpu_config().isa;
    (query.raw_instance(), isa)
}

fn outcome_key(r: &FuzzReport) -> String {
    match &r.outcome {
        FuzzOutcome::Leak(f) => format!("leak@trial {} cycle {}", f.trials, f.cycle),
        FuzzOutcome::Exhausted { trials, .. } => format!("clean after {trials}"),
    }
}

fn main() {
    let args = report_args("fuzzprobe");
    if args.cache.is_some() {
        println!("note: fuzzprobe always bypasses the result cache (live campaigns only)");
    }
    let mut failures: Vec<String> = Vec::new();
    let wall = Instant::now();

    println!("== part 1a: trials/sec, scalar vs 64-way batched (smoke cell) ==");
    // The SingleCycle machine never leaks, so both paths run the full
    // trial budget and the wall ratio is a clean throughput comparison.
    let (task, isa) = instance(DesignKind::SingleCycle);
    let trials = if budget_secs(30) < 30 { 2048 } else { 4096 };
    let base = FuzzPlan::new().trials(trials).cycles(20).seed(0xF0_55);
    let batched = run_fuzz(&task.aig, &isa, &base, &Budget::unlimited());
    let scalar = run_fuzz(
        &task.aig,
        &isa,
        &base.clone().scalar(),
        &Budget::unlimited(),
    );
    let speedup = batched.stats.trials_per_sec() / scalar.stats.trials_per_sec().max(1e-9);
    println!(
        "scalar : {:>10.0} trials/s ({} trials in {:.2}s)",
        scalar.stats.trials_per_sec(),
        scalar.stats.trials,
        scalar.stats.wall.as_secs_f64()
    );
    println!(
        "batched: {:>10.0} trials/s ({} trials in {:.2}s, {} lanes)",
        batched.stats.trials_per_sec(),
        batched.stats.trials,
        batched.stats.wall.as_secs_f64(),
        batched.stats.lanes
    );
    println!("speedup: {speedup:.1}x (target >= 8x)");
    if outcome_key(&batched) != outcome_key(&scalar) {
        failures.push(format!(
            "smoke cell findings diverge: batched {} vs scalar {}",
            outcome_key(&batched),
            outcome_key(&scalar)
        ));
    }
    if speedup < 8.0 {
        let msg = format!("batch speedup {speedup:.1}x below the 8x floor");
        if cfg!(debug_assertions) {
            println!("WARNING (debug build, not gating): {msg}");
        } else {
            failures.push(msg);
        }
    }

    println!();
    println!("== part 1b: per-seed findings, batched vs scalar (insecure Table-2 cells) ==");
    let insecure = [
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ];
    for design in insecure {
        let (task, isa) = instance(design);
        for seed in [7u64, 0xF0_55] {
            let plan = FuzzPlan::new().trials(768).cycles(20).seed(seed);
            let b = run_fuzz(&task.aig, &isa, &plan, &Budget::unlimited());
            let s = run_fuzz(
                &task.aig,
                &isa,
                &plan.clone().scalar(),
                &Budget::unlimited(),
            );
            let agree = outcome_key(&b) == outcome_key(&s);
            println!(
                "{:<22} seed {seed:>6}: batched {:<22} scalar {:<22}{}",
                design.name(),
                outcome_key(&b),
                outcome_key(&s),
                if agree { "" } else { "  << MISMATCH" }
            );
            if !agree {
                failures.push(format!(
                    "{} seed {seed}: batched {} vs scalar {}",
                    design.name(),
                    outcome_key(&b),
                    outcome_key(&s)
                ));
            }
        }
    }

    println!();
    println!("== part 2: fuzz vs formal time-to-attack (insecure SimpleOoO) ==");
    let (task, isa) = instance(DesignKind::SimpleOoo(Defense::None));
    let fuzz = run_fuzz(
        &task.aig,
        &isa,
        &FuzzPlan::new().trials(100_000).cycles(20).seed(7),
        &Budget::until(Instant::now() + Duration::from_secs(budget_secs(60))),
    );
    match &fuzz.outcome {
        FuzzOutcome::Leak(f) => println!(
            "fuzz   : attack after {} trials in {:.2}s ({:.0} trials/s)",
            f.trials,
            fuzz.stats.wall.as_secs_f64(),
            fuzz.stats.trials_per_sec()
        ),
        FuzzOutcome::Exhausted { trials, .. } => {
            println!("fuzz   : no leak in {trials} trials (unlucky seed)")
        }
    }
    let t = Instant::now();
    let formal = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .attack_only(true)
        .bmc_depth(bmc_depth(12))
        .wall(Duration::from_secs(budget_secs(120)))
        .query()
        .expect("configured")
        .run();
    println!(
        "formal : {} in {:.2}s (BMC, exhaustive to the bound)",
        formal.cell(),
        t.elapsed().as_secs_f64()
    );

    println!();
    println!("== part 3: fuzz lane inside the portfolio race ==");
    // BMC capped far below the leak depth: only the fuzz lane can decide
    // the race, so CEX here means a fuzz leak cancelled the solvers.
    let mut archived: Vec<Report> = Vec::new();
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .with_candidates(false)
        .mode(Mode::Portfolio)
        .attack_only(true)
        .bmc_depth(2)
        .budget(ApiBudget::wall(Duration::from_secs(budget_secs(120))))
        .fuzz(FuzzPlan::new().trials(100_000).cycles(20).seed(7))
        .query()
        .expect("configured")
        .run();
    println!(
        "race   : {} in {:.2}s",
        report.cell(),
        report.elapsed.as_secs_f64()
    );
    for note in report
        .notes
        .iter()
        .filter(|n| n.starts_with("fuzz") || n.starts_with("bmc") || n.starts_with("portfolio"))
    {
        println!("    | {note}");
    }
    if let Some(stats) = &report.fuzz {
        println!(
            "    | fuzz lane: {} trials, {:.0} trials/s, leak cycle {:?}",
            stats.trials,
            stats.trials_per_sec(),
            stats.leak_cycle
        );
    }
    if !report.verdict.is_attack() {
        failures.push(format!(
            "portfolio fuzz lane failed to find the SimpleOoO attack: {}",
            report.cell()
        ));
    }
    if report.fuzz.is_none() {
        failures.push("portfolio report carries no fuzz stats".into());
    }
    archived.push(report);

    let campaign = CampaignReport {
        reports: archived,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);

    if !failures.is_empty() {
        println!();
        for f in &failures {
            println!("FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!();
    println!("fuzzprobe: all checks passed");
}

use csl_contracts::Contract;
use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
use csl_cpu::Defense;
use csl_mc::CheckOptions;
use std::time::Duration;

fn main() {
    for design in [
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        DesignKind::SimpleOoo(Defense::None),
    ] {
        let cfg = InstanceConfig::new(design, Contract::Sandboxing);
        let opts = CheckOptions {
            total_budget: Duration::from_secs(180),
            ..Default::default()
        };
        let report = verify(Scheme::Leave, &cfg, &opts);
        println!(
            "LEAVE {:24} -> {:8} [{:.1}s]",
            design.name(),
            report.verdict.cell(),
            report.elapsed.as_secs_f64()
        );
        for n in &report.notes {
            println!("   | {n}");
        }
    }
}

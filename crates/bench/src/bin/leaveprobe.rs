use csl_bench::verifier;
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;

fn main() {
    for design in [
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        DesignKind::SimpleOoo(Defense::None),
    ] {
        let report = verifier(180, 20, false)
            .design(design)
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Leave)
            .query()
            .expect("design and contract are set")
            .run();
        println!(
            "LEAVE {:24} -> {:8} [{:.1}s]",
            design.name(),
            report.cell(),
            report.elapsed.as_secs_f64()
        );
        for n in &report.notes {
            println!("   | {n}");
        }
    }
}

//! Independent audit of an archived verification report.
//!
//! `certify <report.json>` rebuilds the *raw* (unprepared) instance
//! from the report's scheme × design × contract identity and re-checks
//! the evidence the report carries: a proof's certificate must pass its
//! three obligations (init ⊆ inv, consecution, inv ⊆ safe) with fresh
//! SAT calls, an attack's witness must replay to the bad state with
//! every assume held. A proof without a certificate fails — the tool
//! only trusts what it can audit. Undecided verdicts carry no claim and
//! pass vacuously.
//!
//! Exit codes: 0 evidence validates (or nothing to audit), 1 evidence
//! rejected, 2 usage/IO/parse errors.

use csl_certify::{check_certificate, check_witness, Witness};
use csl_core::api::{Report, Verifier};
use csl_mc::Verdict;

fn load(path: &str) -> Report {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("certify: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Report::from_json(&text).unwrap_or_else(|e| {
        eprintln!("certify: {path} is not a report: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: certify <report.json>");
        std::process::exit(2);
    };
    let report = load(path);
    let label = report.label();

    // The report's identity pins the instance; rebuilding it from
    // scratch (rather than trusting anything else in the document) is
    // what makes the audit independent.
    let task = || {
        Verifier::new()
            .design(report.design)
            .contract(report.contract)
            .scheme(report.scheme)
            .query()
            .expect("reports always carry a design and a contract")
            .raw_instance()
    };

    match &report.verdict {
        Verdict::Attack(trace) => {
            match check_witness(&task().aig, &Witness::new((**trace).clone())) {
                Ok(check) => println!(
                    "{label}: attack witness replays to `{}` in {} cycles [{:.3}s]",
                    trace.bad_name,
                    check.cycles,
                    check.elapsed.as_secs_f64()
                ),
                Err(why) => {
                    eprintln!("certify: {label}: witness rejected: {why:?}");
                    std::process::exit(1);
                }
            }
        }
        Verdict::Proof(engine) => {
            let Some(cert) = &report.certificate else {
                eprintln!("certify: {label}: proof ({engine:?}) carries no certificate");
                std::process::exit(1);
            };
            match check_certificate(&task(), cert) {
                Ok(check) => println!(
                    "{label}: certificate validates against the raw netlist \
                     ({} conjuncts, {} SAT calls) [{:.3}s]",
                    check.conjuncts,
                    check.sat_calls,
                    check.elapsed.as_secs_f64()
                ),
                Err(why) => {
                    eprintln!("certify: {label}: certificate rejected: {why:?}");
                    std::process::exit(1);
                }
            }
        }
        verdict => println!("{label}: {verdict:?} — nothing to audit"),
    }
}

//! Exchange-bus probe: quantifies cross-lane clause/lemma sharing.
//!
//! Part 1 runs Table-2 cells in portfolio mode with the exchange bus on
//! and prints each lane's import/export counts — the demonstration that
//! knowledge actually crosses lanes on real instances (BMC's learnt
//! clauses seeding the k-induction base, Houdini survivors streaming
//! into the running proof engines).
//!
//! Part 2 runs the smoke cells twice — exchange off, then on — and
//! compares verdicts cell by cell plus the median wall time, checking
//! the bus is behaviour-preserving and not a slowdown.
//!
//! `--json <path>` / `--csv <path>` dump the exchange-on runs as a
//! structured campaign report (per-lane traffic included) for CI to
//! archive. Exchange runs never use the session cache: a cache hit
//! would report zero traffic and defeat the probe.

use std::time::Duration;

use csl_bench::{
    bmc_depth, budget_secs, median_duration, report_args, smoke_cells, table2_designs,
    write_reports,
};
use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, ExchangeConfig, Mode, Report, Verifier};
use csl_core::{CampaignCell, DesignKind, Scheme};
use csl_cpu::Defense;

fn run_cell(
    cell: &CampaignCell,
    exchange: ExchangeConfig,
    prepare: csl_core::api::PrepareConfig,
    budget_s: u64,
    depth: usize,
) -> Report {
    Verifier::new()
        .design(cell.design)
        .contract(cell.contract)
        .scheme(cell.scheme)
        .mode(Mode::Portfolio)
        .exchange(exchange)
        .prepare(prepare)
        .budget(Budget::wall(Duration::from_secs(budget_s)))
        .bmc_depth(depth)
        .query()
        .expect("cell carries design and contract")
        .run()
}

fn show_traffic(report: &Report) -> (usize, usize) {
    let mut imports = 0;
    let mut exports = 0;
    for s in &report.exchange {
        println!(
            "    | {:<12} imports {:>6}  exports {:>6}",
            s.lane.name(),
            s.imports,
            s.exports
        );
        imports += s.imports;
        exports += s.exports;
    }
    (imports, exports)
}

fn main() {
    let args = report_args("exchangeprobe");
    if let Some(dir) = &args.cache {
        // The parser defaults the cache on; this bin must measure live
        // bus traffic, and a cached report would show zero imports.
        println!("note: exchangeprobe always bypasses the result cache (ignoring {dir})");
    }
    let budget = budget_secs(30);
    let depth = bmc_depth(10);
    let mut archived: Vec<Report> = Vec::new();
    let wall = std::time::Instant::now();

    println!("== part 1: cross-lane traffic on Table-2 cells ==");
    // The secure SimpleOoO variant plus the in-order core: both make the
    // attack lane grind (conflicts => exported clauses) while the proof
    // lanes run long enough to import.
    let probes: Vec<CampaignCell> = table2_designs()
        .into_iter()
        .filter(|d| {
            matches!(
                d,
                DesignKind::SimpleOoo(Defense::DelaySpectre) | DesignKind::InOrder
            )
        })
        .map(|design| CampaignCell {
            scheme: Scheme::Shadow,
            design,
            contract: Contract::Sandboxing,
        })
        .collect();
    let mut total_imports = 0;
    for cell in &probes {
        let report = run_cell(
            cell,
            ExchangeConfig::on(),
            args.prepare_config(),
            budget,
            depth,
        );
        println!(
            "{:<44} -> {:6} [{:.1}s]",
            cell.label(),
            report.cell(),
            report.elapsed.as_secs_f64()
        );
        let (imports, exports) = show_traffic(&report);
        total_imports += imports;
        let _ = exports;
        archived.push(report);
    }
    println!("cross-lane imports across probes: {total_imports}");

    println!();
    println!("== part 2: exchange on vs off over the smoke cells ==");
    let mut off_walls = Vec::new();
    let mut on_walls = Vec::new();
    let mut agreed = true;
    for cell in smoke_cells() {
        let off = run_cell(
            &cell,
            ExchangeConfig::off(),
            args.prepare_config(),
            budget,
            depth,
        );
        let on = run_cell(
            &cell,
            ExchangeConfig::on(),
            args.prepare_config(),
            budget,
            depth,
        );
        let same = off.cell() == on.cell();
        agreed &= same;
        println!(
            "{:<44} off {:6} [{:.1}s]  on {:6} [{:.1}s]{}",
            cell.label(),
            off.cell(),
            off.elapsed.as_secs_f64(),
            on.cell(),
            on.elapsed.as_secs_f64(),
            if same { "" } else { "  << VERDICT MISMATCH" }
        );
        off_walls.push(off.elapsed);
        on_walls.push(on.elapsed);
        archived.push(on);
    }
    let off_median = median_duration(off_walls);
    let on_median = median_duration(on_walls);
    println!(
        "median wall: off {:.2}s, on {:.2}s ({})",
        off_median.as_secs_f64(),
        on_median.as_secs_f64(),
        if on_median <= off_median + Duration::from_millis(500) {
            "exchange is not a slowdown"
        } else {
            "exchange is slower here"
        }
    );
    if !agreed {
        println!("WARNING: exchange changed at least one verdict");
    }

    let campaign = CampaignReport {
        reports: archived,
        wall: wall.elapsed(),
    };
    write_reports(&campaign, &args);
}

use csl_bench::verifier;
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::Verdict;

fn run(design: DesignKind, contract: Contract, budget: u64, depth: usize) {
    let report = verifier(budget, depth, false)
        .kind_max_k(4)
        .design(design)
        .contract(contract)
        .scheme(Scheme::Shadow)
        .query()
        .expect("design and contract are set")
        .run();
    let extra = match &report.verdict {
        Verdict::Proof(e) => format!("{e:?}"),
        Verdict::Unknown { reason } => reason.to_string(),
        _ => String::new(),
    };
    println!(
        "{:28} {:14} -> {:6} [{:.1}s] {}",
        design.name(),
        contract.name(),
        report.cell(),
        report.elapsed.as_secs_f64(),
        extra
    );
    for n in &report.notes {
        println!("   | {n}");
    }
}

fn main() {
    run(DesignKind::InOrder, Contract::Sandboxing, 600, 4);
    run(
        DesignKind::SimpleOoo(Defense::DelayFuturistic),
        Contract::Sandboxing,
        900,
        4,
    );
    run(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::Sandboxing,
        900,
        4,
    );
}

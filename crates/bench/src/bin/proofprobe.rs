use csl_contracts::Contract;
use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
use csl_cpu::Defense;
use csl_mc::{CheckOptions, Verdict};
use std::time::{Duration, Instant};

fn run(design: DesignKind, contract: Contract, budget: u64, depth: usize) {
    let opts = CheckOptions {
        total_budget: Duration::from_secs(budget),
        bmc_depth: depth,
        attack_only: false,
        kind_max_k: 4,
        ..Default::default()
    };
    let cfg = InstanceConfig::new(design, contract);
    let t = Instant::now();
    let report = verify(Scheme::Shadow, &cfg, &opts);
    let extra = match &report.verdict {
        Verdict::Proof(e) => format!("{e:?}"),
        Verdict::Unknown { reason } => reason.clone(),
        _ => String::new(),
    };
    println!(
        "{:28} {:14} -> {:6} [{:.1}s] {}",
        design.name(),
        contract.name(),
        report.verdict.cell(),
        t.elapsed().as_secs_f64(),
        extra
    );
    for n in &report.notes {
        println!("   | {n}");
    }
}

fn main() {
    run(DesignKind::InOrder, Contract::Sandboxing, 600, 4);
    run(
        DesignKind::SimpleOoo(Defense::DelayFuturistic),
        Contract::Sandboxing,
        900,
        4,
    );
    run(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::Sandboxing,
        900,
        4,
    );
}

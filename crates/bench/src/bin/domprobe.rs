use csl_bench::verifier;
use csl_contracts::Contract;
use csl_core::{DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::Verdict;

fn main() {
    for contract in Contract::ALL {
        let report = verifier(360, 16, true)
            .design(DesignKind::SimpleOoo(Defense::DomSpectre))
            .contract(contract)
            .scheme(Scheme::Shadow)
            .query()
            .expect("design and contract are set")
            .run();
        match &report.verdict {
            Verdict::Attack(t) => println!(
                "DoM-spectre / {:<14} ATTACK at depth {} in {:.1}s (bad `{}`)",
                contract.name(),
                t.depth(),
                report.elapsed.as_secs_f64(),
                t.bad_name
            ),
            other => println!(
                "DoM-spectre / {:<14} {} in {:.1}s",
                contract.name(),
                other.cell(),
                report.elapsed.as_secs_f64()
            ),
        }
    }
}

use csl_contracts::Contract;
use csl_core::{verify, DesignKind, InstanceConfig, Scheme};
use csl_cpu::Defense;
use csl_mc::{CheckOptions, Verdict};
use std::time::Duration;

fn main() {
    for contract in Contract::ALL {
        let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::DomSpectre), contract);
        let opts = CheckOptions {
            total_budget: Duration::from_secs(360),
            bmc_depth: 16,
            attack_only: true,
            ..Default::default()
        };
        let report = verify(Scheme::Shadow, &cfg, &opts);
        match &report.verdict {
            Verdict::Attack(t) => println!(
                "DoM-spectre / {:<14} ATTACK at depth {} in {:.1}s (bad `{}`)",
                contract.name(),
                t.depth(),
                report.elapsed.as_secs_f64(),
                t.bad_name
            ),
            other => println!(
                "DoM-spectre / {:<14} {} in {:.1}s",
                contract.name(),
                other.cell(),
                report.elapsed.as_secs_f64()
            ),
        }
    }
}

//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Budgets: every verification task runs under a wall-clock budget standing
//! in for the paper's 7-day timeout. Defaults are chosen so a full
//! `cargo bench` pass finishes in tens of minutes; set `CSL_BUDGET_SECS`
//! to raise or lower them uniformly, and `CSL_FAST=1` to shrink everything
//! for smoke runs.
//!
//! All harnesses drive the session API: [`verifier`] pre-configures a
//! `csl_core::api::Verifier` with the standard budget/depth knobs, and
//! [`smoke_matrix`]/[`table2_matrix`] build the standard campaigns. The
//! `--json <path>` / `--csv <path>` flags the bins accept are parsed by
//! [`report_args`] and written by [`write_reports`], so CI can archive a
//! run and diff it against another commit's.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::api::{Budget, CampaignReport, Matrix, Mode, Report, Verifier};
use csl_core::{CampaignCell, DesignKind, Scheme};
use csl_cpu::Defense;

/// Default on-disk location for the session result cache used by the
/// bins (under `target/` so it is ignored and `cargo clean` clears it).
pub const DEFAULT_CACHE_DIR: &str = "target/csl-report-cache";

/// Per-task budget in seconds, honouring `CSL_BUDGET_SECS` / `CSL_FAST`.
pub fn budget_secs(default: u64) -> u64 {
    if let Ok(v) = std::env::var("CSL_BUDGET_SECS") {
        if let Ok(n) = v.parse::<u64>() {
            return n;
        }
    }
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        (default / 10).max(5)
    } else {
        default
    }
}

/// BMC depth, honouring `CSL_FAST`.
pub fn bmc_depth(default: usize) -> usize {
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        default.min(8)
    } else {
        default
    }
}

/// A session builder with the standard budget/depth/attack knobs set.
/// Chain `.design(..).contract(..).scheme(..)` and run.
pub fn verifier(budget_s: u64, depth: usize, attack_only: bool) -> Verifier {
    Verifier::new()
        .budget(Budget::wall(Duration::from_secs(budget_s)))
        .bmc_depth(depth)
        .attack_only(attack_only)
}

/// Table cell text matching the paper's symbols: attacks (their lightning
/// bolt), proofs (smiley), timeouts (clock), and LEAVE's false
/// counterexamples (warning triangle).
pub fn paper_cell(v: &csl_mc::Verdict) -> &'static str {
    match v {
        csl_mc::Verdict::Attack(_) => "ATTACK",
        csl_mc::Verdict::Proof(_) => "PROOF",
        csl_mc::Verdict::Timeout => "T/O",
        csl_mc::Verdict::Unknown { .. } => "UNKNOWN",
    }
}

/// One formatted result line.
pub fn show(label: &str, report: &Report) {
    println!(
        "{label:<52} {:<8} {:>8.1}s",
        paper_cell(&report.verdict),
        report.elapsed.as_secs_f64()
    );
    if std::env::var("CSL_VERBOSE").is_ok() {
        for n in &report.notes {
            println!("    | {n}");
        }
    }
}

/// Median wall time, for the probes' on/off speed comparisons.
///
/// # Panics
/// Panics on an empty set.
pub fn median_duration(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Prints the per-pass reduction table of a preparation run (shared by
/// `prepprobe` and `sizecheck`).
pub fn show_pass_stats(stats: &csl_core::api::PrepareStats) {
    for p in &stats.passes {
        println!(
            "    | {:<12} ands {:>6} -> {:<6} latches {:>5} -> {:<5}",
            p.pass, p.before.ands, p.after.ands, p.before.latches, p.after.latches
        );
    }
}

/// Prints a benchmark header.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; shapes matter, absolute times do not)");
    println!("==============================================================");
}

/// The five processor designs of Table 2, in column order.
pub fn table2_designs() -> Vec<DesignKind> {
    vec![
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::DelaySpectre), // SimpleOoO-S
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ]
}

/// The Table-2 cell list (every scheme × every Table-2 design under
/// sandboxing), for callers that iterate cells themselves.
pub fn table2_cells() -> Vec<CampaignCell> {
    csl_core::matrix(&Scheme::ALL, &table2_designs(), &[Contract::Sandboxing])
}

/// The smoke cell list: every scheme on the smallest design.
pub fn smoke_cells() -> Vec<CampaignCell> {
    csl_core::matrix(
        &Scheme::ALL,
        &[DesignKind::SingleCycle],
        &[Contract::Sandboxing],
    )
}

/// The full Table-2 campaign: every scheme × every design, sandboxing,
/// cells in parallel on the worker pool, engines racing per cell.
pub fn table2_matrix(budget_s: u64, depth: usize) -> Matrix {
    campaign(&table2_designs(), budget_s, depth)
}

/// The smoke campaign: every scheme on the smallest design (LEAVE proves
/// it fast; the other schemes spend their full per-cell budget, so total
/// wall clock scales with the budget). Exercised by `cargo run --bin
/// smoke` and the campaign tests.
pub fn smoke_matrix(budget_s: u64, depth: usize) -> Matrix {
    campaign(&[DesignKind::SingleCycle], budget_s, depth)
}

fn campaign(designs: &[DesignKind], budget_s: u64, depth: usize) -> Matrix {
    Verifier::new()
        .budget(Budget::wall(Duration::from_secs(budget_s)))
        .bmc_depth(depth)
        .mode(Mode::Portfolio)
        .into_matrix(&Scheme::ALL, designs, &[Contract::Sandboxing])
}

/// Prints a finished campaign in the paper's table shape.
pub fn show_campaign(report: &CampaignReport) {
    println!();
    print!("{}", report.render_table());
    println!(
        "(thread-pool speedup: {:.1}x)",
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
    );
}

/// The standard bin arguments: report dump paths plus the session-cache
/// and instance-preparation controls.
pub struct BinArgs {
    pub json: Option<String>,
    pub csv: Option<String>,
    /// Cache directory for campaign runs; defaults to
    /// [`DEFAULT_CACHE_DIR`], `None` after `--no-cache`.
    pub cache: Option<String>,
    /// Size cap for the on-disk cache (`--max-entries <n>`): stores
    /// prune the least-recently-used reports down to this count.
    pub cache_max_entries: Option<usize>,
    /// Instance preparation (`--no-prepare` turns the reduction pipeline
    /// off; default on).
    pub prepare: bool,
}

impl BinArgs {
    /// Applies the cache and preparation settings to a campaign matrix.
    pub fn apply_cache(&self, matrix: Matrix) -> Matrix {
        let matrix = match &self.cache {
            Some(dir) => {
                let m = matrix.cache(dir);
                match self.cache_max_entries {
                    Some(n) => m.cache_max_entries(n),
                    None => m,
                }
            }
            None => matrix.no_cache(),
        };
        matrix.prepare(self.prepare_config())
    }

    /// The preparation pipeline these arguments select.
    pub fn prepare_config(&self) -> csl_core::api::PrepareConfig {
        if self.prepare {
            csl_core::api::PrepareConfig::on()
        } else {
            csl_core::api::PrepareConfig::off()
        }
    }
}

/// Parses the standard `--json <path>` / `--csv <path>` /
/// `--cache <dir>` / `--no-cache` / `--max-entries <n>` /
/// `--no-prepare` bin arguments; unknown arguments abort with usage.
pub fn report_args(bin: &str) -> BinArgs {
    let usage = format!(
        "usage: {bin} [--json <path>] [--csv <path>] \
         [--cache <dir> | --no-cache] [--max-entries <n>] [--no-prepare]"
    );
    let mut parsed = BinArgs {
        json: None,
        csv: None,
        cache: Some(DEFAULT_CACHE_DIR.to_string()),
        cache_max_entries: None,
        prepare: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--json" => parsed.json = Some(value(&mut args)),
            "--csv" => parsed.csv = Some(value(&mut args)),
            "--cache" => parsed.cache = Some(value(&mut args)),
            "--no-cache" => parsed.cache = None,
            "--max-entries" => {
                let n = value(&mut args);
                parsed.cache_max_entries = Some(n.parse().unwrap_or_else(|_| {
                    eprintln!("--max-entries takes a number; {usage}");
                    std::process::exit(2);
                }));
            }
            "--no-prepare" => parsed.prepare = false,
            _ => {
                eprintln!("unknown argument `{arg}`; {usage}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Writes the serialized campaign to the paths `report_args` collected.
pub fn write_reports(report: &CampaignReport, args: &BinArgs) {
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json()).expect("write json report");
        println!("json report written to {path}");
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, report.to_csv()).expect("write csv report");
        println!("csv report written to {path}");
    }
}

//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Budgets: every verification task runs under a wall-clock budget standing
//! in for the paper's 7-day timeout. Defaults are chosen so a full
//! `cargo bench` pass finishes in tens of minutes; set `CSL_BUDGET_SECS`
//! to raise or lower them uniformly, and `CSL_FAST=1` to shrink everything
//! for smoke runs.

use std::time::Duration;

use csl_mc::{CheckOptions, CheckReport, Verdict};

/// Per-task budget in seconds, honouring `CSL_BUDGET_SECS` / `CSL_FAST`.
pub fn budget_secs(default: u64) -> u64 {
    if let Ok(v) = std::env::var("CSL_BUDGET_SECS") {
        if let Ok(n) = v.parse::<u64>() {
            return n;
        }
    }
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        (default / 10).max(5)
    } else {
        default
    }
}

/// BMC depth, honouring `CSL_FAST`.
pub fn bmc_depth(default: usize) -> usize {
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        default.min(8)
    } else {
        default
    }
}

/// Standard options for an attack-or-proof task.
pub fn task_options(budget_s: u64, depth: usize, attack_only: bool) -> CheckOptions {
    CheckOptions {
        total_budget: Duration::from_secs(budget_s),
        bmc_depth: depth,
        attack_only,
        ..Default::default()
    }
}

/// Table cell text matching the paper's symbols: attacks (their lightning
/// bolt), proofs (smiley), timeouts (clock), and LEAVE's false
/// counterexamples (warning triangle).
pub fn paper_cell(v: &Verdict) -> &'static str {
    match v {
        Verdict::Attack(_) => "ATTACK",
        Verdict::Proof(_) => "PROOF",
        Verdict::Timeout => "T/O",
        Verdict::Unknown { .. } => "UNKNOWN",
    }
}

/// One formatted result line.
pub fn show(label: &str, report: &CheckReport) {
    println!(
        "{label:<52} {:<8} {:>8.1}s",
        paper_cell(&report.verdict),
        report.elapsed.as_secs_f64()
    );
    if std::env::var("CSL_VERBOSE").is_ok() {
        for n in &report.notes {
            println!("    | {n}");
        }
    }
}

/// Prints a benchmark header.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; shapes matter, absolute times do not)");
    println!("==============================================================");
}

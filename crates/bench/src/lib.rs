//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Budgets: every verification task runs under a wall-clock budget standing
//! in for the paper's 7-day timeout. Defaults are chosen so a full
//! `cargo bench` pass finishes in tens of minutes; set `CSL_BUDGET_SECS`
//! to raise or lower them uniformly, and `CSL_FAST=1` to shrink everything
//! for smoke runs.

use std::time::Duration;

use csl_contracts::Contract;
use csl_core::{matrix, CampaignCell, CampaignOptions, CampaignReport, DesignKind, Scheme};
use csl_cpu::Defense;
use csl_mc::{CheckOptions, CheckReport, ExecMode, Verdict};

/// Per-task budget in seconds, honouring `CSL_BUDGET_SECS` / `CSL_FAST`.
pub fn budget_secs(default: u64) -> u64 {
    if let Ok(v) = std::env::var("CSL_BUDGET_SECS") {
        if let Ok(n) = v.parse::<u64>() {
            return n;
        }
    }
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        (default / 10).max(5)
    } else {
        default
    }
}

/// BMC depth, honouring `CSL_FAST`.
pub fn bmc_depth(default: usize) -> usize {
    if std::env::var("CSL_FAST").is_ok_and(|v| v == "1") {
        default.min(8)
    } else {
        default
    }
}

/// Standard options for an attack-or-proof task.
pub fn task_options(budget_s: u64, depth: usize, attack_only: bool) -> CheckOptions {
    CheckOptions {
        total_budget: Duration::from_secs(budget_s),
        bmc_depth: depth,
        attack_only,
        ..Default::default()
    }
}

/// Table cell text matching the paper's symbols: attacks (their lightning
/// bolt), proofs (smiley), timeouts (clock), and LEAVE's false
/// counterexamples (warning triangle).
pub fn paper_cell(v: &Verdict) -> &'static str {
    match v {
        Verdict::Attack(_) => "ATTACK",
        Verdict::Proof(_) => "PROOF",
        Verdict::Timeout => "T/O",
        Verdict::Unknown { .. } => "UNKNOWN",
    }
}

/// One formatted result line.
pub fn show(label: &str, report: &CheckReport) {
    println!(
        "{label:<52} {:<8} {:>8.1}s",
        paper_cell(&report.verdict),
        report.elapsed.as_secs_f64()
    );
    if std::env::var("CSL_VERBOSE").is_ok() {
        for n in &report.notes {
            println!("    | {n}");
        }
    }
}

/// Prints a benchmark header.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; shapes matter, absolute times do not)");
    println!("==============================================================");
}

/// The five processor designs of Table 2, in column order.
pub fn table2_designs() -> Vec<DesignKind> {
    vec![
        DesignKind::InOrder,
        DesignKind::SimpleOoo(Defense::DelaySpectre), // SimpleOoO-S
        DesignKind::SimpleOoo(Defense::None),
        DesignKind::SuperOoo,
        DesignKind::BigOoo,
    ]
}

/// The full Table-2 matrix: every scheme × every design, sandboxing.
pub fn table2_cells() -> Vec<CampaignCell> {
    matrix(&Scheme::ALL, &table2_designs(), &[Contract::Sandboxing])
}

/// The smoke matrix: every scheme on the smallest design (LEAVE proves
/// it fast; the other schemes spend their full per-cell budget, so total
/// wall clock scales with the budget). Exercised by `cargo run --bin
/// smoke` and the campaign tests.
pub fn smoke_cells() -> Vec<CampaignCell> {
    matrix(
        &Scheme::ALL,
        &[DesignKind::SingleCycle],
        &[Contract::Sandboxing],
    )
}

/// Standard campaign options: per-cell portfolio execution (each cell
/// races its engines) across the worker pool. Callers pass the budget
/// and depth through [`budget_secs`]/[`bmc_depth`] when they want the
/// `CSL_BUDGET_SECS`/`CSL_FAST` overrides to apply.
pub fn campaign_options(budget_s: u64, depth: usize) -> CampaignOptions {
    CampaignOptions {
        threads: 0,
        cell: CheckOptions {
            mode: ExecMode::Portfolio,
            ..task_options(budget_s, depth, false)
        },
    }
}

/// Prints a finished campaign in the paper's table shape.
pub fn show_campaign(report: &CampaignReport) {
    println!();
    print!("{}", report.render_table());
    println!(
        "(thread-pool speedup: {:.1}x)",
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
    );
}

//! Exchange on/off equivalence over the smoke cells.
//!
//! The clause/lemma bus only ships facts implied by the shared instance,
//! so switching it on must never change a verdict — only (at best) how
//! fast one arrives. The smoke cells' verdict landscape is stable across
//! budgets (see `crates/core/tests/portfolio_equiv.rs`), which makes
//! this check deterministic rather than budget-racy.

use std::time::Duration;

use csl_bench::smoke_cells;
use csl_core::api::{Budget, ExchangeConfig, Mode, Report, Verifier};
use csl_core::CampaignCell;

fn run(cell: &CampaignCell, exchange: ExchangeConfig) -> Report {
    Verifier::new()
        .design(cell.design)
        .contract(cell.contract)
        .scheme(cell.scheme)
        .mode(Mode::Portfolio)
        .exchange(exchange)
        .budget(Budget::wall(Duration::from_secs(10)))
        .bmc_depth(4)
        .query()
        .expect("cell carries design and contract")
        .run()
}

#[test]
fn exchange_on_is_verdict_identical_to_off_across_smoke_cells() {
    let mut on_total = Duration::ZERO;
    let mut off_total = Duration::ZERO;
    for cell in smoke_cells() {
        let off = run(&cell, ExchangeConfig::off());
        let on = run(&cell, ExchangeConfig::on());
        assert_eq!(
            off.cell(),
            on.cell(),
            "{}: exchange off {:?} vs on {:?}\non notes: {:?}",
            cell.label(),
            off.verdict,
            on.verdict,
            on.notes
        );
        assert!(
            off.exchange.is_empty(),
            "exchange-off reports must carry no traffic stats"
        );
        // The LEAVE/UPEC schemes bypass the portfolio entirely; only the
        // check_safety schemes record lane traffic.
        if matches!(
            cell.scheme,
            csl_core::Scheme::Shadow | csl_core::Scheme::Baseline
        ) {
            assert!(
                !on.exchange.is_empty(),
                "{}: exchange-on portfolio must record per-lane stats",
                cell.label()
            );
        }
        off_total += off.elapsed;
        on_total += on.elapsed;
    }
    // Generous slack: the bus must not be a structural slowdown. (The
    // timeout-bound cells dominate both sums identically, so this only
    // trips if exchange overhead is pathological.)
    let limit = off_total.mul_f64(1.5) + Duration::from_secs(5);
    assert!(
        on_total <= limit,
        "exchange-on total {on_total:?} exceeds {limit:?} (off {off_total:?})"
    );
}

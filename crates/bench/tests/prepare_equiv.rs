//! Preparation on/off equivalence over the smoke cells.
//!
//! The `csl_hdl::xform` pipeline is behaviour-preserving on the cone of
//! influence, so preparation can never flip a decided verdict: an
//! attack exists on the reduced netlist iff it exists on the raw one,
//! and a proof of the reduced netlist implies the raw one safe. What
//! preparation *can* do is decide cells the raw instance times out on —
//! the SingleCycle shadow cell proves in under a second prepared versus
//! ~2 minutes raw — so the contract checked here is monotone: decided
//! verdicts must agree, upgrades (T/O or UNK → decided) are the
//! feature, and downgrades are failures. Run as its own CI step (like
//! `exchange_equiv`) so a pipeline regression is legible on its own
//! line. Also checks the acceptance criteria end to end: a measurable
//! AND-node reduction on the instances, and every SAT counterexample
//! expressed in raw-netlist vocabulary (replayable on the unprepared
//! netlist).

use std::time::Duration;

use csl_bench::smoke_cells;
use csl_core::api::{Budget, Mode, PrepareConfig, Query, Report, Verifier};
use csl_core::CampaignCell;
use csl_mc::{Sim, Verdict};

fn query(cell: &CampaignCell, prepare: PrepareConfig) -> Query {
    Verifier::new()
        .design(cell.design)
        .contract(cell.contract)
        .scheme(cell.scheme)
        .mode(Mode::Portfolio)
        .prepare(prepare)
        .budget(Budget::wall(Duration::from_secs(10)))
        .bmc_depth(4)
        .query()
        .expect("cell carries design and contract")
}

#[test]
fn prepare_on_never_downgrades_or_flips_a_smoke_verdict() {
    let decided = |cell: &str| cell == "CEX" || cell == "PROOF";
    let mut upgrades = 0usize;
    for cell in smoke_cells() {
        let off = query(&cell, PrepareConfig::off()).run();
        let on_query = query(&cell, PrepareConfig::on());
        let on = on_query.run();
        if decided(off.cell()) {
            // A decided raw verdict must be reproduced exactly — a
            // CEX↔PROOF flip or a decided→undecided downgrade would be
            // a soundness bug in the pipeline.
            assert_eq!(
                off.cell(),
                on.cell(),
                "{}: prepare off {:?} vs on {:?}\non notes: {:?}",
                cell.label(),
                off.verdict,
                on.verdict,
                on.notes
            );
        } else if decided(on.cell()) {
            upgrades += 1;
        }
        assert!(
            off.prepare.is_empty(),
            "prepare-off reports must carry no pass stats"
        );
        assert!(
            !on.prepare.is_empty(),
            "{}: prepare-on reports must record per-pass stats",
            cell.label()
        );
        check_attack_lifts(&on_query, &on);
    }
    // At the 10 s test budget the SingleCycle shadow/baseline proofs are
    // only reachable on the reduced instances — the run must witness the
    // speedup, or preparation quietly stopped reducing anything.
    assert!(
        upgrades > 0,
        "no cell was decided only with preparation on; the reduction lost its teeth"
    );
}

/// A prepared run's attack must be expressed in raw-netlist vocabulary:
/// replaying it on the unprepared netlist satisfies the assumes and
/// hits a bad state.
fn check_attack_lifts(on_query: &Query, on: &Report) {
    if let Verdict::Attack(trace) = &on.verdict {
        let raw = on_query.raw_instance();
        let (assumes_ok, bad) = Sim::new(&raw.aig).replay(trace);
        assert!(
            assumes_ok && bad,
            "{}: lifted cex failed raw replay (assumes_ok={assumes_ok}, bad={bad})",
            on.label()
        );
    }
}

/// The acceptance criterion on instance size: preparation reduces the
/// AND-node count of every smoke instance by a measurable margin, and
/// the report stats prove it.
#[test]
fn preparation_measurably_reduces_smoke_instances() {
    for cell in smoke_cells() {
        let q = query(&cell, PrepareConfig::on());
        let raw = q.raw_instance();
        let prepared = q.instance();
        assert!(
            prepared.aig().num_ands() < raw.aig.num_ands(),
            "{}: ands {} -> {} is not a reduction",
            cell.label(),
            raw.aig.num_ands(),
            prepared.aig().num_ands()
        );
        let stats = &prepared.stats;
        assert_eq!(
            stats.ands_removed(),
            raw.aig.num_ands() - prepared.aig().num_ands(),
            "pass stats must account for the whole reduction"
        );
        assert_eq!(stats.passes.len(), 4, "standard pipeline runs four passes");
    }
}

//! Randomised co-simulation: every processor generator, over hundreds of
//! random programs and memories, must commit exactly the instruction
//! stream the ISA interpreter retires (the §5.4 functional-correctness
//! assumption, tested rather than assumed).

use csl_cpu::{build_standalone, check_against_reference, CoreKind, CpuConfig, Defense};
use csl_isa::{progen, IsaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fuzz(kind: CoreKind, cfg: CpuConfig, programs: usize, cycles: usize, seed: u64) {
    let core = build_standalone(kind, &cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_commits = 0;
    for _ in 0..programs {
        // Mix raw bit soup (covers undefined opcodes) and well-formed
        // programs (denser interesting behaviour).
        let imem = if total_commits % 3 == 0 {
            progen::random_imem(&cfg.isa, &mut rng)
        } else {
            progen::random_program(&cfg.isa, &progen::OpMix::default(), &mut rng)
        };
        let dmem = progen::random_dmem(&cfg.isa, &mut rng);
        total_commits += check_against_reference(&core, &imem, &dmem, cycles);
    }
    assert!(
        total_commits > programs,
        "suspiciously few commits: {total_commits}"
    );
}

#[test]
fn single_cycle_matches_reference() {
    fuzz(
        CoreKind::SingleCycle,
        CpuConfig::simple_ooo(Defense::None),
        40,
        48,
        11,
    );
}

#[test]
fn single_cycle_with_exceptions() {
    let mut cfg = CpuConfig::simple_ooo(Defense::None);
    cfg.isa.exceptions = true;
    fuzz(CoreKind::SingleCycle, cfg, 40, 48, 12);
}

#[test]
fn inorder_matches_reference() {
    fuzz(
        CoreKind::InOrder,
        CpuConfig::simple_ooo(Defense::None),
        40,
        48,
        13,
    );
}

#[test]
fn simple_ooo_insecure_matches_reference() {
    fuzz(
        CoreKind::Ooo,
        CpuConfig::simple_ooo(Defense::None),
        60,
        64,
        14,
    );
}

#[test]
fn simple_ooo_nofwd_futuristic_matches_reference() {
    fuzz(
        CoreKind::Ooo,
        CpuConfig::simple_ooo(Defense::NoFwdFuturistic),
        40,
        64,
        15,
    );
}

#[test]
fn simple_ooo_nofwd_spectre_matches_reference() {
    fuzz(
        CoreKind::Ooo,
        CpuConfig::simple_ooo(Defense::NoFwdSpectre),
        40,
        64,
        16,
    );
}

#[test]
fn simple_ooo_delay_futuristic_matches_reference() {
    fuzz(
        CoreKind::Ooo,
        CpuConfig::simple_ooo(Defense::DelayFuturistic),
        40,
        64,
        17,
    );
}

#[test]
fn simple_ooo_delay_spectre_matches_reference() {
    fuzz(
        CoreKind::Ooo,
        CpuConfig::simple_ooo(Defense::DelaySpectre),
        40,
        64,
        18,
    );
}

#[test]
fn simple_ooo_dom_matches_reference() {
    // The paper's DoM experiments use an 8-entry ROB (§7.2 footnote).
    let mut cfg = CpuConfig::simple_ooo(Defense::DomSpectre);
    cfg.rob_size = 8;
    fuzz(CoreKind::Ooo, cfg, 40, 80, 19);
}

#[test]
fn super_ooo_matches_reference() {
    fuzz(CoreKind::Ooo, CpuConfig::super_ooo(), 60, 64, 20);
}

#[test]
fn big_ooo_matches_reference() {
    fuzz(CoreKind::Ooo, CpuConfig::big_ooo(), 60, 64, 21);
}

#[test]
fn rob_size_sweep_matches_reference() {
    for rob in [2usize, 4, 8, 16] {
        let mut cfg = CpuConfig::simple_ooo(Defense::None);
        cfg.rob_size = rob;
        fuzz(CoreKind::Ooo, cfg, 12, 48, 22 + rob as u64);
    }
}

#[test]
fn structure_sweep_matches_reference() {
    for (nregs, dmem) in [(2usize, 4usize), (8, 8), (4, 16)] {
        let cfg = CpuConfig {
            isa: IsaConfig {
                nregs,
                dmem_size: dmem,
                ..IsaConfig::default()
            },
            ..CpuConfig::simple_ooo(Defense::None)
        };
        fuzz(CoreKind::Ooo, cfg, 12, 48, 40 + nregs as u64);
    }
}

#[test]
fn mul_extension_matches_reference() {
    let cfg = CpuConfig {
        isa: IsaConfig {
            enable_mul: true,
            ..IsaConfig::default()
        },
        ..CpuConfig::simple_ooo(Defense::None)
    };
    let core = build_standalone(CoreKind::Ooo, &cfg);
    let mut rng = StdRng::seed_from_u64(55);
    let mix = progen::OpMix {
        mul: 5,
        ..progen::OpMix::default()
    };
    for _ in 0..25 {
        let imem = progen::random_program(&cfg.isa, &mix, &mut rng);
        let dmem = progen::random_dmem(&cfg.isa, &mut rng);
        check_against_reference(&core, &imem, &dmem, 64);
    }
}

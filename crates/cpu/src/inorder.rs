//! The 2-stage in-order pipeline (Sodor stand-in).
//!
//! Stage IF fetches into an instruction register; stage EXE executes,
//! accesses memory, and retires — one instruction per cycle apart from the
//! single bubble after every taken branch (and trap). The only
//! "speculation" is the not-yet-killed fetch during a branch's EXE cycle,
//! and the killed instruction never touches memory, so the core is secure
//! for both contracts — the configuration in which both the paper's scheme
//! and LEAVE find proofs (Table 2, column "Sodor").

use csl_hdl::{Bit, Design, Init, Word};
use csl_isa::IsaConfig;

use crate::decode::decode;
use crate::memsys::{read_dmem, read_imem, SecretMem, SharedMem};
use crate::ports::{CommitPort, CpuPorts};
use crate::single_cycle::resolve_load_hdl;

/// Builds the in-order core under the scope `name`.
///
/// `stall_fetch` suppresses new fetches (shadow logic drain support);
/// in-flight work still completes.
pub fn build_inorder(
    d: &mut Design,
    cfg: &IsaConfig,
    name: &str,
    shared: &SharedMem,
    secret: &SecretMem,
    enable: Bit,
    stall_fetch: Bit,
) -> CpuPorts {
    cfg.validate();
    d.push_scope(name);
    let mark = d.reg_mark();
    let pc = d.reg("pc", cfg.pc_bits(), Init::Zero);
    let if_valid = d.reg("if_valid", 1, Init::Zero);
    let if_inst = d.reg("if_inst", cfg.inst_bits(), Init::Zero);
    let if_pc = d.reg("if_pc", cfg.pc_bits(), Init::Zero);
    let rf: Vec<_> = (0..cfg.nregs)
        .map(|r| d.reg(&format!("rf[{r}]"), cfg.xlen, Init::Zero))
        .collect();

    // ---- EXE stage ---------------------------------------------------------
    let exe_valid = if_valid.q().bit(0);
    let dec = decode(d, cfg, &if_inst.q());
    let rf_words: Vec<Word> = rf.iter().map(|r| r.q()).collect();
    let v1 = d.select(&dec.rs1, &rf_words);
    let v2 = d.select(&dec.rs2, &rf_words);

    let (mem_word, exc) = resolve_load_hdl(d, cfg, &v1);
    let faulted = {
        let z = d.is_zero(&exc);
        z.not()
    };
    let load_fault = d.all(&[exe_valid, dec.is_ld, faulted]);
    let load_ok = d.all(&[exe_valid, dec.is_ld, faulted.not()]);
    let load_data = read_dmem(d, shared, secret, &mem_word);

    let imm_x = d.resize(&dec.imm, cfg.xlen);
    let sum = d.add(&v1, &v2);
    let zero_x = d.lit(cfg.xlen, 0);
    let mut value = d.mux(dec.is_li, &imm_x, &zero_x);
    value = d.mux(dec.is_add, &sum, &value);
    if cfg.enable_mul {
        let prod = d.mul(&v1, &v2);
        value = d.mux(dec.is_mul, &prod, &value);
    }
    value = d.mux(load_ok, &load_data, &value);

    let taken_raw = {
        let z = d.is_zero(&v1);
        z.not()
    };
    let taken = d.all(&[exe_valid, dec.is_bnz, taken_raw]);

    let writes = d.all(&[exe_valid, dec.has_rd, load_fault.not()]);
    for (r, reg) in rf.iter().enumerate() {
        let here = d.eq_const(&dec.rd, r as u64);
        let we = d.and_bit(writes, here);
        let nxt = d.mux(we, &value, &reg.q());
        d.set_next(reg, nxt);
    }

    // Redirect: taken branch to target, fault to the trap vector. Either
    // way the instruction currently being fetched is killed (bubble).
    let redirect = d.or_bit(taken, load_fault);
    let target = d.resize(&dec.imm, cfg.pc_bits());
    let trap = d.lit(cfg.pc_bits(), 0);
    let redirect_pc = d.mux(load_fault, &trap, &target);

    // ---- IF stage ----------------------------------------------------------
    let fetch_now = d.and_bit(stall_fetch.not(), redirect.not());
    let fetched = read_imem(d, shared, &pc.q());
    let next_if_valid = Word::from_bit(fetch_now);
    d.set_next(&if_valid, next_if_valid);
    let held_inst = d.mux(fetch_now, &fetched, &if_inst.q());
    d.set_next(&if_inst, held_inst);
    let held_pc = d.mux(fetch_now, &pc.q(), &if_pc.q());
    d.set_next(&if_pc, held_pc);

    let pc1 = d.add_const(&pc.q(), 1);
    let mut next_pc = d.mux(fetch_now, &pc1, &pc.q());
    next_pc = d.mux(redirect, &redirect_pc, &next_pc);
    d.set_next(&pc, next_pc);

    d.gate_regs_since(mark, enable);

    // ---- observation ports --------------------------------------------------
    let commit_valid = d.and_bit(exe_valid, enable);
    let zero_a = d.lit(cfg.dmem_bits(), 0);
    let zero_e = d.lit(2, 0);
    let commit = CommitPort {
        valid: commit_valid,
        pc: if_pc.q(),
        writes_reg: d.and_bit(writes, enable),
        value: d.mux(writes, &value, &zero_x),
        is_load: load_ok,
        mem_word: d.mux(load_ok, &mem_word, &zero_a),
        is_branch: d.and_bit(exe_valid, dec.is_bnz),
        taken,
        exception: {
            let ld_exc = d.and_bit(exe_valid, dec.is_ld);
            d.mux(ld_exc, &exc, &zero_e)
        },
        is_mul: d.and_bit(exe_valid, dec.is_mul),
        mul_a: {
            let m = d.and_bit(exe_valid, dec.is_mul);
            d.mux(m, &v1, &zero_x)
        },
        mul_b: {
            let m = d.and_bit(exe_valid, dec.is_mul);
            d.mux(m, &v2, &zero_x)
        },
    };
    let bus_valid = d.and_bit(load_ok, enable);
    let ports = CpuPorts {
        bus_addr: d.mux(bus_valid, &mem_word, &zero_a),
        bus_valid,
        commits: vec![commit],
        inflight: Word::from_bit(exe_valid),
        resolved: Word::from_bit(commit_valid),
        exec_fault: {
            let zero_e = d.lit(2, 0);
            let ld_exec = d.and_bit(exe_valid, dec.is_ld);
            let gated = d.and_bit(ld_exec, enable);
            d.mux(gated, &exc, &zero_e)
        },
        secret_words: secret.words.clone(),
    };
    ports.add_probes(d);
    d.pop_scope();
    ports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_seals() {
        let cfg = IsaConfig::default();
        let mut d = Design::new("t");
        let shared = SharedMem::new(&mut d, &cfg);
        let secret = SecretMem::new(&mut d, &cfg);
        let ports = build_inorder(&mut d, &cfg, "ino", &shared, &secret, Bit::TRUE, Bit::FALSE);
        shared.seal(&mut d);
        d.assert_always("dummy", Bit::TRUE);
        let aig = d.finish();
        // pc + if_valid + if_inst + if_pc + regfile + secret.
        let expect = 3 + 1 + 11 + 3 + 16 + 8;
        assert_eq!(aig.num_latches(), 88 + 8 + expect);
        assert_eq!(ports.commits.len(), 1);
    }
}

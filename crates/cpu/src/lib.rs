//! `csl-cpu` — processor generators for the Contract Shadow Logic
//! reproduction.
//!
//! Four machines, mirroring the paper's Table 1:
//!
//! | paper design | here | builder |
//! |--------------|------|---------|
//! | Sodor (2-stage in-order, RV32I) | `InOrder` over MiniISA | [`build_inorder`] |
//! | SimpleOoO (4-entry ROB + 5 defences) | [`build_ooo`] with [`CpuConfig::simple_ooo`] | [`build_ooo`] |
//! | Ridecore (8-entry ROB, 2-wide) | [`build_ooo`] with [`CpuConfig::super_ooo`] | [`build_ooo`] |
//! | BOOM (SmallBoom, exceptions) | [`build_ooo`] with [`CpuConfig::big_ooo`] | [`build_ooo`] |
//!
//! plus the single-cycle ISA machine ([`build_single_cycle`]) that the
//! baseline verification scheme instantiates twice (paper Fig. 1a) and the
//! Contract Shadow Logic scheme eliminates.
//!
//! All generators emit gates into a shared [`csl_hdl::Design`], read the
//! shared symbolic program/public memory ([`memsys::SharedMem`]), own a
//! private symbolic secret region, and expose the uniform observation
//! ports ([`ports::CpuPorts`]) the schemes consume. The [`cosim`] module
//! checks every generator against the ISA interpreter.

pub mod config;
pub mod cosim;
pub mod decode;
pub mod inorder;
pub mod memsys;
pub mod ooo;
pub mod pick;
pub mod ports;
pub mod single_cycle;

pub use config::{CpuConfig, Defense};
pub use cosim::{build_standalone, check_against_reference, CoreKind, Standalone};
pub use inorder::build_inorder;
pub use memsys::{read_dmem, read_imem, SecretMem, SharedMem};
pub use ooo::build_ooo;
pub use ports::{CommitPort, CpuPorts};
pub use single_cycle::build_single_cycle;

//! RTL-side instruction decode: the hardware twin of [`csl_isa::decode`].
//!
//! The bit layout must match the software encoder exactly; the
//! `decode_matches_software` test sweeps every bit pattern of the default
//! configuration to enforce that.

use csl_hdl::{Bit, Design, Word};
use csl_isa::{opcode, IsaConfig};

/// Decoded instruction fields and opcode-class flags, as netlist signals.
#[derive(Clone, Debug)]
pub struct Decoded {
    /// Raw 3-bit opcode field.
    pub op: Word,
    pub rd: Word,
    pub rs1: Word,
    pub rs2: Word,
    /// Raw immediate field (`imm_bits` wide).
    pub imm: Word,
    pub is_li: Bit,
    pub is_add: Bit,
    pub is_ld: Bit,
    pub is_bnz: Bit,
    pub is_mul: Bit,
    /// Writes a destination register.
    pub has_rd: Bit,
    /// Executes on the ALU (everything but loads, including NOPs).
    pub is_alu_class: Bit,
    pub uses_rs1: Bit,
    pub uses_rs2: Bit,
}

/// Splits an encoded instruction word into fields and class flags.
pub fn decode(d: &mut Design, cfg: &IsaConfig, inst: &Word) -> Decoded {
    let rb = cfg.reg_bits();
    let ib = cfg.imm_bits();
    assert_eq!(inst.width(), cfg.inst_bits(), "instruction width mismatch");
    let imm = inst.slice(0, ib);
    let rs1 = inst.slice(ib, ib + rb);
    let rd = inst.slice(ib + rb, ib + 2 * rb);
    let op = inst.slice(ib + 2 * rb, ib + 2 * rb + 3);
    let rs2 = imm.slice(0, rb);

    let is_li = d.eq_const(&op, opcode::LI as u64);
    let is_add = d.eq_const(&op, opcode::ADD as u64);
    let is_ld = d.eq_const(&op, opcode::LD as u64);
    let is_bnz = d.eq_const(&op, opcode::BNZ as u64);
    let is_mul = if cfg.enable_mul {
        d.eq_const(&op, opcode::MUL as u64)
    } else {
        Bit::FALSE
    };
    let has_rd = d.any(&[is_li, is_add, is_ld, is_mul]);
    let is_alu_class = is_ld.not();
    let uses_rs1 = d.any(&[is_add, is_ld, is_bnz, is_mul]);
    let uses_rs2 = d.or_bit(is_add, is_mul);

    Decoded {
        op,
        rd,
        rs1,
        rs2,
        imm,
        is_li,
        is_add,
        is_ld,
        is_bnz,
        is_mul,
        has_rd,
        is_alu_class,
        uses_rs1,
        uses_rs2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_isa::Inst;

    /// Sweep every bit pattern and compare the HDL decode (evaluated on
    /// constants, which fold in the AIG) with the software decoder.
    #[test]
    fn decode_matches_software() {
        let cfg = IsaConfig::default();
        for bits in 0..(1u64 << cfg.inst_bits()) {
            let mut d = Design::new("t");
            let w = d.lit(cfg.inst_bits(), bits);
            let dec = decode(&mut d, &cfg, &w);
            let sw = csl_isa::decode(&cfg, bits as u32);
            let expect_class = |b: Bit, want: bool| {
                assert_eq!(
                    b,
                    if want { Bit::TRUE } else { Bit::FALSE },
                    "bits {bits:#x} -> {sw:?}"
                );
            };
            expect_class(dec.is_li, matches!(sw, Inst::Li { .. }));
            expect_class(dec.is_add, matches!(sw, Inst::Add { .. }));
            expect_class(dec.is_ld, matches!(sw, Inst::Ld { .. }));
            expect_class(dec.is_bnz, matches!(sw, Inst::Bnz { .. }));
            expect_class(dec.has_rd, sw.rd().is_some());
        }
    }

    #[test]
    fn field_extraction_on_known_encoding() {
        let cfg = IsaConfig::default();
        let enc = csl_isa::encode(
            &cfg,
            Inst::Add {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
        );
        let mut d = Design::new("t");
        let w = d.lit(cfg.inst_bits(), enc as u64);
        let dec = decode(&mut d, &cfg, &w);
        assert_eq!(dec.rd, d.lit(2, 3));
        assert_eq!(dec.rs1, d.lit(2, 1));
        assert_eq!(dec.rs2, d.lit(2, 2));
    }

    #[test]
    fn mul_flag_respects_extension() {
        let mut cfg = IsaConfig {
            enable_mul: true,
            ..Default::default()
        };
        let enc = csl_isa::encode(
            &cfg,
            Inst::Mul {
                rd: 1,
                rs1: 1,
                rs2: 1,
            },
        );
        let mut d = Design::new("t");
        let w = d.lit(cfg.inst_bits(), enc as u64);
        let dec = decode(&mut d, &cfg, &w);
        assert_eq!(dec.is_mul, Bit::TRUE);
        cfg.enable_mul = false;
        let dec2 = decode(&mut d, &cfg, &w);
        assert_eq!(dec2.is_mul, Bit::FALSE);
        assert_eq!(dec2.has_rd, Bit::FALSE, "disabled MUL is a NOP");
    }
}

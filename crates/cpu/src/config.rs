//! Processor configuration: microarchitectural knobs layered on an
//! [`IsaConfig`].

use csl_isa::IsaConfig;

/// The defence mechanisms of the paper's §7.2, applied to the out-of-order
/// generator. `None` is the insecure baseline core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Defense {
    /// Insecure baseline: loads issue and forward speculatively.
    None,
    /// Do not forward load data to younger instructions until commit
    /// (all loads) — NDA/STT-futuristic flavour.
    NoFwdFuturistic,
    /// As above, but only for loads dispatched with a branch ahead in the
    /// ROB — spectre flavour.
    NoFwdSpectre,
    /// Delay load issue until the load is the oldest in-flight instruction
    /// (all loads).
    DelayFuturistic,
    /// As above, but only for loads dispatched with a branch ahead in the
    /// ROB. This is the paper's secure core "SimpleOoO-S".
    DelaySpectre,
    /// Delay-on-Miss (simplified, §7.2): loads always probe the single-entry
    /// cache; hits complete speculatively, misses of tainted loads are held
    /// at the (blocking) memory port until the load is oldest.
    DomSpectre,
}

impl Defense {
    /// All defences, in the paper's Table 3 order.
    pub const TABLE3: [Defense; 5] = [
        Defense::NoFwdFuturistic,
        Defense::NoFwdSpectre,
        Defense::DelayFuturistic,
        Defense::DelaySpectre,
        Defense::DomSpectre,
    ];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::NoFwdFuturistic => "NoFwd-futuristic",
            Defense::NoFwdSpectre => "NoFwd-spectre",
            Defense::DelayFuturistic => "Delay-futuristic",
            Defense::DelaySpectre => "Delay-spectre",
            Defense::DomSpectre => "DoM-spectre",
        }
    }

    /// Inverse of [`Defense::name`] (used when reading persisted
    /// reports).
    pub fn from_name(name: &str) -> Option<Defense> {
        let all = [
            Defense::None,
            Defense::NoFwdFuturistic,
            Defense::NoFwdSpectre,
            Defense::DelayFuturistic,
            Defense::DelaySpectre,
            Defense::DomSpectre,
        ];
        all.into_iter().find(|d| d.name() == name)
    }

    /// Whether this defence is secure on the exception-free SimpleOoO for
    /// the given contract (the paper's ground truth for Table 3).
    pub fn expected_secure(self, constant_time: bool) -> bool {
        match self {
            Defense::None | Defense::DomSpectre => false,
            Defense::DelayFuturistic | Defense::DelaySpectre => true,
            // NoFwd protects load *data*, not transient loads from using
            // architecturally-present secrets as addresses: secure for
            // sandboxing, insecure for constant-time.
            Defense::NoFwdFuturistic | Defense::NoFwdSpectre => !constant_time,
        }
    }
}

/// Configuration of the out-of-order generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    pub isa: IsaConfig,
    /// Reorder-buffer entries (power of two, >= 2).
    pub rob_size: usize,
    /// Instructions fetched/committed per cycle (1 or 2).
    pub width: usize,
    pub defense: Defense,
}

impl CpuConfig {
    /// The paper's SimpleOoO: 4-entry ROB, 1-wide, chosen defence.
    pub fn simple_ooo(defense: Defense) -> CpuConfig {
        CpuConfig {
            isa: IsaConfig::default(),
            rob_size: 4,
            width: 1,
            defense,
        }
    }

    /// The Ridecore stand-in: 8-entry ROB, 2-wide commit, insecure.
    pub fn super_ooo() -> CpuConfig {
        CpuConfig {
            isa: IsaConfig::default(),
            rob_size: 8,
            width: 2,
            defense: Defense::None,
        }
    }

    /// The BOOM stand-in: exception semantics enabled, 8-entry ROB by
    /// default (configurable towards SmallBoom's 32), insecure.
    pub fn big_ooo() -> CpuConfig {
        CpuConfig {
            isa: IsaConfig {
                exceptions: true,
                ..IsaConfig::default()
            },
            rob_size: 8,
            width: 1,
            defense: Defense::None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn validate(&self) {
        self.isa.validate();
        assert!(self.rob_size.is_power_of_two() && self.rob_size >= 2);
        assert!(self.width == 1 || self.width == 2, "width must be 1 or 2");
        assert!(
            self.width < self.rob_size,
            "ROB must be larger than the commit width"
        );
        if self.defense == Defense::DomSpectre {
            assert!(
                !self.isa.exceptions,
                "DoM model is defined for the exception-free core"
            );
        }
    }

    /// Bits in a ROB index.
    pub fn rob_bits(&self) -> usize {
        self.rob_size.trailing_zeros() as usize
    }

    /// Bits in the ROB occupancy counter (0..=rob_size).
    pub fn count_bits(&self) -> usize {
        self.rob_bits() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CpuConfig::simple_ooo(Defense::None).validate();
        CpuConfig::simple_ooo(Defense::DelaySpectre).validate();
        CpuConfig::super_ooo().validate();
        CpuConfig::big_ooo().validate();
    }

    #[test]
    fn expected_security_matches_paper() {
        use Defense::*;
        assert!(NoFwdFuturistic.expected_secure(false));
        assert!(!NoFwdFuturistic.expected_secure(true));
        assert!(NoFwdSpectre.expected_secure(false));
        assert!(!NoFwdSpectre.expected_secure(true));
        assert!(DelayFuturistic.expected_secure(false));
        assert!(DelayFuturistic.expected_secure(true));
        assert!(DelaySpectre.expected_secure(true));
        assert!(!DomSpectre.expected_secure(false));
        assert!(!DomSpectre.expected_secure(true));
        assert!(!None.expected_secure(false));
    }

    #[test]
    fn rob_bits() {
        let c = CpuConfig::simple_ooo(Defense::None);
        assert_eq!(c.rob_bits(), 2);
        assert_eq!(c.count_bits(), 3);
    }

    #[test]
    #[should_panic]
    fn dom_with_exceptions_rejected() {
        let mut c = CpuConfig::simple_ooo(Defense::DomSpectre);
        c.isa.exceptions = true;
        c.validate();
    }
}

//! Processor observation ports.
//!
//! Every generator exposes the same port bundle so the shadow logic, the
//! baseline scheme, and the co-simulation harness are generator-agnostic —
//! the reusability property the paper claims for its methodology (§5.1):
//! swapping the design under verification swaps only the generator call.

use csl_hdl::{Bit, Design, Word};

/// One commit slot's worth of retired-instruction information — the raw
/// material for both `O_uarch` (the `valid` bit is the commit-timing
/// observation) and the contract's `O_ISA` record (the shadow metadata of
/// §5.1, recorded at dispatch/execute and read out here at commit).
#[derive(Clone, Debug)]
pub struct CommitPort {
    /// An instruction retires this cycle through this slot.
    pub valid: Bit,
    /// Retiring instruction's PC (probe/debug; not part of any contract).
    pub pc: Word,
    /// Writes a destination register this cycle.
    pub writes_reg: Bit,
    /// Writeback value (zero when `writes_reg` is false).
    pub value: Word,
    /// Retiring instruction is a non-faulting load.
    pub is_load: Bit,
    /// Word address of the load (zero otherwise).
    pub mem_word: Word,
    /// Retiring instruction is a branch.
    pub is_branch: Bit,
    /// Branch outcome.
    pub taken: Bit,
    /// Exception code (0 none, 1 misaligned, 2 illegal).
    pub exception: Word,
    /// Retiring instruction is a multiply (always false without the
    /// extension).
    pub is_mul: Bit,
    /// Multiplier operands (constant-time contract observations; zero
    /// without the extension).
    pub mul_a: Word,
    pub mul_b: Word,
}

/// The full observation bundle of one processor instance.
#[derive(Clone, Debug)]
pub struct CpuPorts {
    /// Commit slots, oldest first (`width` entries).
    pub commits: Vec<CommitPort>,
    /// A memory-bus transaction is visible this cycle (`O_uarch`).
    pub bus_valid: Bit,
    /// Word address on the memory bus (`O_uarch`).
    pub bus_addr: Word,
    /// Number of in-flight bound-or-squash instructions (ROB occupancy
    /// plus the commit stage) — consumed by the shadow logic's drain
    /// tracker (instruction-inclusion requirement, §5.2.1).
    pub inflight: Word,
    /// Instructions leaving the machine this cycle: commits plus squash
    /// drops.
    pub resolved: Word,
    /// Exception code raised by a load *executing* this cycle (including
    /// transient loads that will squash) — the hook for the §7.1.4
    /// exclusion assumptions.
    pub exec_fault: Word,
    /// This machine's private secret words (for "secrets differ" assumes).
    pub secret_words: Vec<Word>,
}

impl CpuPorts {
    /// Registers waveform probes for every port signal under the current
    /// scope, so counterexample listings show the attack.
    pub fn add_probes(&self, d: &mut Design) {
        for (i, c) in self.commits.iter().enumerate() {
            let p = format!("c{i}");
            d.probe(&format!("{p}.valid"), &Word::from_bit(c.valid));
            d.probe(&format!("{p}.pc"), &c.pc);
            d.probe(&format!("{p}.value"), &c.value);
            d.probe(&format!("{p}.is_load"), &Word::from_bit(c.is_load));
            d.probe(&format!("{p}.mem_word"), &c.mem_word);
            d.probe(&format!("{p}.is_branch"), &Word::from_bit(c.is_branch));
            d.probe(&format!("{p}.taken"), &Word::from_bit(c.taken));
            d.probe(&format!("{p}.exception"), &c.exception);
            d.probe(&format!("{p}.writes_reg"), &Word::from_bit(c.writes_reg));
            d.probe(&format!("{p}.is_mul"), &Word::from_bit(c.is_mul));
            // Multiplier operands: contract observations under the MUL
            // extension, read back by counterexample analysis (csl-synth)
            // when diffing retirement streams.
            d.probe(&format!("{p}.mul_a"), &c.mul_a);
            d.probe(&format!("{p}.mul_b"), &c.mul_b);
        }
        d.probe("bus.valid", &Word::from_bit(self.bus_valid));
        d.probe("bus.addr", &self.bus_addr);
        d.probe("inflight", &self.inflight);
    }
}

//! Co-simulation of processor generators against the reference interpreter.
//!
//! The paper's methodology *assumes* the processor is functionally correct
//! (§5.4) because security verification is deliberately decoupled from
//! functional verification. This harness is where that assumption is
//! earned in this reproduction: each generator runs cycle-by-cycle on the
//! netlist simulator over concrete memories, and its committed-instruction
//! stream must equal the ISA interpreter's retirement stream.

use std::collections::HashMap;

use csl_hdl::{Aig, Bit, Design};
use csl_isa::{interp, ArchState, IsaConfig};
use csl_mc::{Sim, SimState};

use crate::config::CpuConfig;
use crate::inorder::build_inorder;
use crate::memsys::{SecretMem, SharedMem};
use crate::ooo::build_ooo;
use crate::single_cycle::build_single_cycle;

/// Which generator to co-simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreKind {
    SingleCycle,
    InOrder,
    Ooo,
}

/// One committed instruction, as observed at a commit port or derived from
/// an interpreter step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitEvent {
    pub pc: u64,
    pub writes_reg: bool,
    pub value: u64,
    pub is_load: bool,
    pub mem_word: u64,
    pub is_branch: bool,
    pub taken: bool,
    pub exception: u64,
}

/// A built standalone core ready for simulation.
pub struct Standalone {
    pub aig: Aig,
    pub cfg: CpuConfig,
    pub width: usize,
    probes: HashMap<String, Vec<csl_hdl::Bit>>,
}

/// Builds one processor instance (scope `cpu`) with always-on enable and
/// no fetch stall, for functional testing.
pub fn build_standalone(kind: CoreKind, cfg: &CpuConfig) -> Standalone {
    let mut d = Design::new("cosim");
    let shared = SharedMem::new(&mut d, &cfg.isa);
    d.push_scope("cpu");
    let secret = SecretMem::new(&mut d, &cfg.isa);
    d.pop_scope();
    let width = match kind {
        CoreKind::Ooo => {
            build_ooo(&mut d, cfg, "cpu", &shared, &secret, Bit::TRUE, Bit::FALSE);
            cfg.width
        }
        CoreKind::InOrder => {
            build_inorder(
                &mut d,
                &cfg.isa,
                "cpu",
                &shared,
                &secret,
                Bit::TRUE,
                Bit::FALSE,
            );
            1
        }
        CoreKind::SingleCycle => {
            build_single_cycle(&mut d, &cfg.isa, "cpu", &shared, &secret, Bit::TRUE);
            1
        }
    };
    shared.seal(&mut d);
    let aig = d.finish();
    let probes = aig
        .probes()
        .iter()
        .map(|p| (p.name.clone(), p.bits.clone()))
        .collect();
    Standalone {
        aig,
        cfg: *cfg,
        width,
        probes,
    }
}

/// Parses a memory-latch name of the form `prefix[word][bit]`.
fn parse_mem_latch(name: &str) -> Option<(&str, usize, usize)> {
    let open = name.rfind("][")?;
    let bit: usize = name[open + 2..name.len() - 1].parse().ok()?;
    let head = &name[..open + 1]; // "prefix[word]"
    let open2 = head.rfind('[')?;
    let word: usize = head[open2 + 1..head.len() - 1].parse().ok()?;
    Some((&head[..open2], word, bit))
}

/// Initial simulator state with the given memory images. `secret` fills
/// every region whose latch name ends with `dmem_sec`.
pub fn initial_state(aig: &Aig, cfg: &IsaConfig, imem: &[u32], dmem: &[u32]) -> SimState {
    assert_eq!(imem.len(), cfg.imem_size);
    assert_eq!(dmem.len(), cfg.dmem_size);
    let half = cfg.dmem_size / 2;
    SimState::reset_with(aig, |_, name| {
        let Some((prefix, word, bit)) = parse_mem_latch(name) else {
            return false;
        };
        let value = if prefix == "imem" {
            imem[word]
        } else if prefix == "dmem_pub" {
            dmem[word]
        } else if prefix.ends_with("dmem_sec") {
            dmem[half + word]
        } else {
            return false;
        };
        (value >> bit) & 1 == 1
    })
}

impl Standalone {
    fn probe(&self, name: &str) -> &[csl_hdl::Bit] {
        self.probes
            .get(name)
            .unwrap_or_else(|| panic!("missing probe {name}"))
    }

    /// Runs `cycles` cycles and collects the commit-event stream.
    pub fn run(&self, imem: &[u32], dmem: &[u32], cycles: usize) -> Vec<CommitEvent> {
        let mut sim = Sim::new(&self.aig);
        let mut state = initial_state(&self.aig, &self.cfg.isa, imem, dmem);
        let mut events = Vec::new();
        for _ in 0..cycles {
            let r = sim.step(&state, |_, _| false);
            for slot in 0..self.width {
                let p = |f: &str| format!("cpu.c{slot}.{f}");
                if r.values.word(self.probe(&p("valid"))) == 1 {
                    events.push(CommitEvent {
                        pc: r.values.word(self.probe(&p("pc"))),
                        writes_reg: r.values.word(self.probe(&p("writes_reg"))) == 1,
                        value: r.values.word(self.probe(&p("value"))),
                        is_load: r.values.word(self.probe(&p("is_load"))) == 1,
                        mem_word: r.values.word(self.probe(&p("mem_word"))),
                        is_branch: r.values.word(self.probe(&p("is_branch"))) == 1,
                        taken: r.values.word(self.probe(&p("taken"))) == 1,
                        exception: r.values.word(self.probe(&p("exception"))),
                    });
                }
            }
            state = r.next;
        }
        events
    }
}

/// The interpreter's view of the same program, as commit events.
pub fn reference_events(cfg: &IsaConfig, imem: &[u32], dmem: &[u32], n: usize) -> Vec<CommitEvent> {
    let mut st = ArchState::reset(cfg);
    let dmem_v = dmem.to_vec();
    interp::run(cfg, &mut st, imem, &dmem_v, n)
        .into_iter()
        .map(|info| CommitEvent {
            pc: info.pc as u64,
            writes_reg: info.writeback.is_some(),
            value: info.writeback.map(|(_, v)| v as u64).unwrap_or(0),
            is_load: info.mem_word.is_some(),
            mem_word: info.mem_word.unwrap_or(0) as u64,
            is_branch: info.branch_taken.is_some(),
            taken: info.branch_taken.unwrap_or(false),
            exception: csl_contracts::exception_code(info.exception) as u64,
        })
        .collect()
}

/// Asserts that the core's commit stream is a prefix-match of the
/// reference stream. Returns the number of commits compared.
///
/// # Panics
/// Panics (with context) on the first mismatching commit.
pub fn check_against_reference(
    core: &Standalone,
    imem: &[u32],
    dmem: &[u32],
    cycles: usize,
) -> usize {
    let got = core.run(imem, dmem, cycles);
    let want = reference_events(&core.cfg.isa, imem, dmem, got.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g,
            w,
            "commit #{i} mismatch\n  hardware: {g:?}\n  reference: {w:?}\n  program: {}",
            render_program(&core.cfg.isa, imem)
        );
    }
    got.len()
}

fn render_program(cfg: &IsaConfig, imem: &[u32]) -> String {
    imem.iter()
        .enumerate()
        .map(|(i, &w)| format!("{i}: {}", csl_isa::mnemonic(csl_isa::decode(cfg, w))))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_latch_names() {
        assert_eq!(parse_mem_latch("imem[3][10]"), Some(("imem", 3, 10)));
        assert_eq!(
            parse_mem_latch("cpu.dmem_sec[1][0]"),
            Some(("cpu.dmem_sec", 1, 0))
        );
        assert_eq!(parse_mem_latch("cpu.pc[0]"), None);
    }
}

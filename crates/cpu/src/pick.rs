//! Age-ordered arbitration over a circular reorder buffer.
//!
//! The execute stage must grant the *oldest* ready instruction (program
//! order = age from the ROB head). [`pick_oldest`] rotates the request
//! vector by the dynamic head pointer, applies a priority chain, and
//! un-rotates the grant back to entry space; [`pick_oldest2`] grants the
//! two oldest for the 2-wide core.

use csl_hdl::{Bit, Design, Word};

/// Result of an arbitration: a one-hot grant vector and its validity.
#[derive(Clone, Debug)]
pub struct Grant {
    /// One-hot over ROB entries.
    pub onehot: Vec<Bit>,
    /// Some request was granted.
    pub any: Bit,
}

/// Rotates `requests` so offset 0 is the head entry.
fn rotate_by_head(d: &mut Design, requests: &[Bit], head: &Word) -> Vec<Bit> {
    let n = requests.len();
    (0..n)
        .map(|offset| {
            // rotated[offset] = requests[(head + offset) % n]
            let options: Vec<Word> = (0..n)
                .map(|h| Word::from_bit(requests[(h + offset) % n]))
                .collect();
            d.select(head, &options).bit(0)
        })
        .collect()
}

/// Un-rotates a one-hot grant from head-relative space to entry space.
fn unrotate(d: &mut Design, grant_rot: &[Bit], head: &Word) -> Vec<Bit> {
    let n = grant_rot.len();
    (0..n)
        .map(|entry| {
            // onehot[entry] = OR_h (head == h && grant_rot[(entry - h) mod n])
            let mut acc = Bit::FALSE;
            for h in 0..n {
                let offset = (entry + n - h) % n;
                let head_is = d.eq_const(head, h as u64);
                let term = d.and_bit(head_is, grant_rot[offset]);
                acc = d.or_bit(acc, term);
            }
            acc
        })
        .collect()
}

/// Priority chain in rotated space: grant the first request.
fn priority(d: &mut Design, requests_rot: &[Bit]) -> Vec<Bit> {
    let mut taken = Bit::FALSE;
    let mut grants = Vec::with_capacity(requests_rot.len());
    for &r in requests_rot {
        grants.push(d.and_bit(r, taken.not()));
        taken = d.or_bit(taken, r);
    }
    grants
}

/// Grants the oldest requester (relative to `head`).
pub fn pick_oldest(d: &mut Design, requests: &[Bit], head: &Word) -> Grant {
    let rot = rotate_by_head(d, requests, head);
    let grant_rot = priority(d, &rot);
    let any = d.any(&rot);
    let onehot = unrotate(d, &grant_rot, head);
    Grant { onehot, any }
}

/// Grants the two oldest requesters. The second grant excludes the first.
pub fn pick_oldest2(d: &mut Design, requests: &[Bit], head: &Word) -> (Grant, Grant) {
    let rot = rotate_by_head(d, requests, head);
    let first_rot = priority(d, &rot);
    let any1 = d.any(&rot);
    // Mask out the first grant, re-arbitrate.
    let rest: Vec<Bit> = rot
        .iter()
        .zip(&first_rot)
        .map(|(&r, &g)| d.and_bit(r, g.not()))
        .collect();
    let second_rot = priority(d, &rest);
    let any2 = d.any(&rest);
    let g1 = Grant {
        onehot: unrotate(d, &first_rot, head),
        any: any1,
    };
    let g2 = Grant {
        onehot: unrotate(d, &second_rot, head),
        any: any2,
    };
    (g1, g2)
}

/// One-hot multiplexer: returns `words[i]` where `onehot[i]` is set
/// (all-zero word when nothing is granted).
pub fn onehot_mux(d: &mut Design, onehot: &[Bit], words: &[Word]) -> Word {
    assert_eq!(onehot.len(), words.len());
    let width = words[0].width();
    let mut acc = d.lit(width, 0);
    for (g, w) in onehot.iter().zip(words) {
        let masked = Word::from_bits(w.bits().iter().map(|&b| d.and_bit(b, *g)).collect());
        acc = d.or(&acc, &masked);
    }
    acc
}

/// Encodes a one-hot vector into a binary index word of `width` bits.
pub fn onehot_encode(d: &mut Design, onehot: &[Bit], width: usize) -> Word {
    let words: Vec<Word> = (0..onehot.len()).map(|i| d.lit(width, i as u64)).collect();
    onehot_mux(d, onehot, &words)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant-fold the arbiter for every head/request combination and
    /// compare against a software model.
    #[test]
    fn matches_software_model() {
        let n = 4usize;
        for head in 0..n {
            for req_mask in 0..(1u32 << n) {
                let mut d = Design::new("t");
                let reqs: Vec<Bit> = (0..n)
                    .map(|i| {
                        if (req_mask >> i) & 1 == 1 {
                            Bit::TRUE
                        } else {
                            Bit::FALSE
                        }
                    })
                    .collect();
                let head_w = d.lit(2, head as u64);
                let g = pick_oldest(&mut d, &reqs, &head_w);
                // Software model: first set bit scanning from head.
                let expected = (0..n)
                    .map(|o| (head + o) % n)
                    .find(|&e| (req_mask >> e) & 1 == 1);
                assert_eq!(
                    g.any,
                    if expected.is_some() {
                        Bit::TRUE
                    } else {
                        Bit::FALSE
                    },
                    "head={head} mask={req_mask:#b}"
                );
                for (e, &bit) in g.onehot.iter().enumerate() {
                    let want = expected == Some(e);
                    assert_eq!(
                        bit,
                        if want { Bit::TRUE } else { Bit::FALSE },
                        "head={head} mask={req_mask:#b} entry={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_oldest() {
        let n = 4usize;
        for head in 0..n {
            for req_mask in 0..(1u32 << n) {
                let mut d = Design::new("t");
                let reqs: Vec<Bit> = (0..n)
                    .map(|i| {
                        if (req_mask >> i) & 1 == 1 {
                            Bit::TRUE
                        } else {
                            Bit::FALSE
                        }
                    })
                    .collect();
                let head_w = d.lit(2, head as u64);
                let (g1, g2) = pick_oldest2(&mut d, &reqs, &head_w);
                let order: Vec<usize> = (0..n)
                    .map(|o| (head + o) % n)
                    .filter(|&e| (req_mask >> e) & 1 == 1)
                    .collect();
                let want1 = order.first().copied();
                let want2 = order.get(1).copied();
                for (e, &bit) in g1.onehot.iter().enumerate() {
                    assert_eq!(bit == Bit::TRUE, want1 == Some(e));
                }
                for (e, &bit) in g2.onehot.iter().enumerate() {
                    assert_eq!(bit == Bit::TRUE, want2 == Some(e), "h{head} m{req_mask:#b}");
                }
                assert_eq!(g2.any == Bit::TRUE, want2.is_some());
            }
        }
    }

    #[test]
    fn onehot_mux_and_encode() {
        let mut d = Design::new("t");
        let words: Vec<Word> = (0..4).map(|i| d.lit(8, 10 + i)).collect();
        let onehot = vec![Bit::FALSE, Bit::FALSE, Bit::TRUE, Bit::FALSE];
        assert_eq!(onehot_mux(&mut d, &onehot, &words), d.lit(8, 12));
        assert_eq!(onehot_encode(&mut d, &onehot, 2), d.lit(2, 2));
    }
}

//! The single-cycle (ISA) machine.
//!
//! Executes exactly one instruction per cycle — the hardware form of the
//! reference interpreter, and the machine the baseline scheme duplicates
//! to run the contract constraint check (paper §4.1, Fig. 1a). The
//! Contract Shadow Logic scheme's whole point is to *eliminate* this
//! machine; having it lets the benchmarks measure what that elimination
//! buys.

use csl_hdl::{Bit, Design, Init, Word};
use csl_isa::IsaConfig;

use crate::decode::decode;
use crate::memsys::{read_dmem, read_imem, SecretMem, SharedMem};
use crate::ports::{CommitPort, CpuPorts};

/// Builds a single-cycle machine under the scope `name`.
///
/// `enable` gates every register (the pause mechanism); the machine has no
/// speculation, so there is no fetch-stall input.
pub fn build_single_cycle(
    d: &mut Design,
    cfg: &IsaConfig,
    name: &str,
    shared: &SharedMem,
    secret: &SecretMem,
    enable: Bit,
) -> CpuPorts {
    cfg.validate();
    d.push_scope(name);
    let mark = d.reg_mark();
    let pc = d.reg("pc", cfg.pc_bits(), Init::Zero);
    let rf: Vec<_> = (0..cfg.nregs)
        .map(|r| d.reg(&format!("rf[{r}]"), cfg.xlen, Init::Zero))
        .collect();

    let inst = read_imem(d, shared, &pc.q());
    let dec = decode(d, cfg, &inst);

    // Source operands.
    let rf_words: Vec<Word> = rf.iter().map(|r| r.q()).collect();
    let v1 = d.select(&dec.rs1, &rf_words);
    let v2 = d.select(&dec.rs2, &rf_words);

    // Load address resolution (+ faults in the exceptions model).
    let (mem_word, exc) = resolve_load_hdl(d, cfg, &v1);
    let faulted = {
        let z = d.is_zero(&exc);
        z.not()
    };
    let load_fault = d.and_bit(dec.is_ld, faulted);
    let load_data = read_dmem(d, shared, secret, &mem_word);

    // ALU.
    let imm_x = d.resize(&dec.imm, cfg.xlen);
    let sum = d.add(&v1, &v2);
    let zero_x = d.lit(cfg.xlen, 0);
    let mut value = d.mux(dec.is_li, &imm_x, &zero_x);
    value = d.mux(dec.is_add, &sum, &value);
    if cfg.enable_mul {
        let prod = d.mul(&v1, &v2);
        value = d.mux(dec.is_mul, &prod, &value);
    }
    let load_ok = d.and_bit(dec.is_ld, faulted.not());
    value = d.mux(load_ok, &load_data, &value);

    // Branch.
    let taken_raw = {
        let z = d.is_zero(&v1);
        z.not()
    };
    let taken = d.and_bit(dec.is_bnz, taken_raw);

    // Writeback.
    let writes = d.and_bit(dec.has_rd, load_fault.not());
    for (r, reg) in rf.iter().enumerate() {
        let here = d.eq_const(&dec.rd, r as u64);
        let we = d.and_bit(writes, here);
        let nxt = d.mux(we, &value, &reg.q());
        d.set_next(reg, nxt);
    }

    // Next PC: taken branch -> target; fault -> trap vector 0; else +1.
    let pc1 = d.add_const(&pc.q(), 1);
    let target = d.resize(&dec.imm, cfg.pc_bits());
    let trap = d.lit(cfg.pc_bits(), 0);
    let mut next_pc = d.mux(taken, &target, &pc1);
    next_pc = d.mux(load_fault, &trap, &next_pc);
    d.set_next(&pc, next_pc);

    d.gate_regs_since(mark, enable);

    let commit = CommitPort {
        valid: enable,
        pc: pc.q(),
        writes_reg: d.and_bit(writes, enable),
        value: d.mux(writes, &value, &zero_x),
        is_load: load_ok,
        mem_word: {
            let zero_a = d.lit(cfg.dmem_bits(), 0);
            d.mux(load_ok, &mem_word, &zero_a)
        },
        is_branch: dec.is_bnz,
        taken,
        exception: {
            let zero_e = d.lit(2, 0);
            d.mux(dec.is_ld, &exc, &zero_e)
        },
        is_mul: dec.is_mul,
        mul_a: d.mux(dec.is_mul, &v1, &zero_x),
        mul_b: d.mux(dec.is_mul, &v2, &zero_x),
    };
    let bus_valid = d.and_bit(load_ok, enable);
    let ports = CpuPorts {
        bus_addr: {
            let zero_a = d.lit(cfg.dmem_bits(), 0);
            d.mux(bus_valid, &mem_word, &zero_a)
        },
        bus_valid,
        commits: vec![commit],
        inflight: d.lit(1, 0),
        resolved: d.lit(1, 0),
        exec_fault: {
            let zero_e = d.lit(2, 0);
            let ld_exec = d.and_bit(dec.is_ld, enable);
            d.mux(ld_exec, &exc, &zero_e)
        },
        secret_words: secret.words.clone(),
    };
    ports.add_probes(d);
    d.pop_scope();
    ports
}

/// Shared by all generators: resolves a load's register operand to a word
/// index and a 2-bit exception code, per the configuration's addressing
/// model. Insecure implementations still read `word` on a fault (wrap
/// addressing), which is exactly the Meltdown-style behaviour the BigOoO
/// core exploits.
pub fn resolve_load_hdl(d: &mut Design, cfg: &IsaConfig, reg_value: &Word) -> (Word, Word) {
    if cfg.exceptions {
        let misaligned = reg_value.bit(0);
        let word_full = reg_value.slice(1, cfg.xlen);
        let db = cfg.dmem_bits();
        let above = if word_full.width() > db {
            let hi = word_full.slice(db, word_full.width());
            d.reduce_or(&hi)
        } else {
            Bit::FALSE
        };
        let illegal = d.and_bit(misaligned.not(), above);
        let word = d.resize(&word_full, db);
        let one = d.lit(2, 1);
        let two = d.lit(2, 2);
        let zero = d.lit(2, 0);
        let mut exc = d.mux(illegal, &two, &zero);
        exc = d.mux(misaligned, &one, &exc);
        (word, exc)
    } else {
        (d.resize(reg_value, cfg.dmem_bits()), d.lit(2, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_seals() {
        let cfg = IsaConfig::default();
        let mut d = Design::new("t");
        let shared = SharedMem::new(&mut d, &cfg);
        let secret = SecretMem::new(&mut d, &cfg);
        let ports = build_single_cycle(&mut d, &cfg, "isa1", &shared, &secret, Bit::TRUE);
        shared.seal(&mut d);
        d.assert_always("dummy", Bit::TRUE);
        let aig = d.finish();
        assert!(aig.num_latches() > 0);
        assert_eq!(ports.commits.len(), 1);
    }

    #[test]
    fn fault_codes_fold_on_constants() {
        let cfg = IsaConfig {
            exceptions: true,
            ..IsaConfig::default()
        };
        let mut d = Design::new("t");
        // 5 = 0b0101: misaligned.
        let v = d.lit(4, 5);
        let (_, exc) = resolve_load_hdl(&mut d, &cfg, &v);
        assert_eq!(exc, d.lit(2, 1));
        // 12 = 0b1100: word 6 >= 4: illegal.
        let v = d.lit(4, 12);
        let (word, exc) = resolve_load_hdl(&mut d, &cfg, &v);
        assert_eq!(exc, d.lit(2, 2));
        // Transiently-touched word wraps to 2 (the secret region).
        assert_eq!(word, d.lit(2, 2));
        // 4 = 0b0100: word 2, legal.
        let v = d.lit(4, 4);
        let (word, exc) = resolve_load_hdl(&mut d, &cfg, &v);
        assert_eq!(exc, d.lit(2, 0));
        assert_eq!(word, d.lit(2, 2));
    }

    #[test]
    fn wrap_addressing_without_exceptions() {
        let cfg = IsaConfig::default();
        let mut d = Design::new("t");
        let v = d.lit(4, 13);
        let (word, exc) = resolve_load_hdl(&mut d, &cfg, &v);
        assert_eq!(word, d.lit(2, 1));
        assert_eq!(exc, d.lit(2, 0));
    }
}
